//! Array configuration.

use serde::{Deserialize, Serialize};
use sprinkler_ssd::SsdConfig;

use crate::placement::{PlacementMap, RebalanceConfig};
use crate::stripe::StripeMap;

/// Upper bound on array width: each device replays on its own scoped thread,
/// so the width is also the replay's thread fan-out.
pub const MAX_DEVICES: usize = 64;

/// Configuration of a striped array of Sprinkler SSDs.
///
/// Devices carry their own [`SsdConfig`] each, so arrays may be heterogeneous
/// — mixed chip counts, queue depths, or flash timing profiles.  Placement
/// starts as chunked round-robin ([`StripeMap`]); setting a
/// [`RebalanceConfig`] turns on the adaptive placement layer that migrates
/// hot stripes between devices during replay.
///
/// # Example
///
/// ```
/// use sprinkler_array::ArrayConfig;
/// use sprinkler_ssd::SsdConfig;
///
/// let config = ArrayConfig::new(SsdConfig::paper_default())
///     .with_devices(4)
///     .with_stripe_kb(256);
/// config.validate().unwrap();
/// assert_eq!(config.stripe_map().devices(), 4);
///
/// // Heterogeneous: a big device fronting two small ones.
/// let hetero = ArrayConfig::heterogeneous(vec![
///     SsdConfig::paper_default().with_chip_count(32),
///     SsdConfig::paper_default().with_chip_count(16),
///     SsdConfig::paper_default().with_chip_count(16),
/// ])
/// .with_stripe_kb(256);
/// hetero.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Per-device configurations; the array's width is this list's length.
    pub devices: Vec<SsdConfig>,
    /// Stripe size in bytes; must be a multiple of every device's page size.
    pub stripe_bytes: u64,
    /// When set, replay runs the adaptive placement layer with this tuning;
    /// when `None`, placement stays static round-robin for the whole run.
    pub rebalance: Option<RebalanceConfig>,
}

impl ArrayConfig {
    /// Creates a single-device array with a 1 MiB stripe over `device`.
    pub fn new(device: SsdConfig) -> Self {
        ArrayConfig {
            devices: vec![device],
            stripe_bytes: 1024 * 1024,
            rebalance: None,
        }
    }

    /// Creates an array over explicitly listed (possibly heterogeneous)
    /// device configurations, with a 1 MiB stripe.
    pub fn heterogeneous(devices: Vec<SsdConfig>) -> Self {
        ArrayConfig {
            devices,
            stripe_bytes: 1024 * 1024,
            rebalance: None,
        }
    }

    /// Sets the array width by replicating the first device's configuration.
    ///
    /// # Panics
    ///
    /// Panics when the device list is empty (no template to replicate).
    pub fn with_devices(mut self, devices: usize) -> Self {
        assert!(
            !self.devices.is_empty(),
            "with_devices needs a first device to replicate"
        );
        let template = self.devices[0].clone();
        self.devices = vec![template; devices];
        self
    }

    /// Sets the stripe size in KiB.
    pub fn with_stripe_kb(mut self, kb: u64) -> Self {
        self.stripe_bytes = kb * 1024;
        self
    }

    /// Turns on adaptive placement with the given rebalancer tuning.
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = Some(rebalance);
        self
    }

    /// The array width (number of devices).
    pub fn width(&self) -> usize {
        self.devices.len()
    }

    /// The configuration of device `index`.
    pub fn device(&self, index: usize) -> &SsdConfig {
        &self.devices[index]
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices.is_empty() {
            return Err("an array needs at least one device".to_string());
        }
        if self.width() > MAX_DEVICES {
            return Err(format!(
                "array width {} exceeds the {MAX_DEVICES}-device replay fan-out limit",
                self.width()
            ));
        }
        for (index, device) in self.devices.iter().enumerate() {
            device
                .validate()
                .map_err(|e| format!("invalid config for device {index}: {e}"))?;
            let page = device.page_size() as u64;
            if self.stripe_bytes < page {
                return Err(format!(
                    "stripe of {} bytes is smaller than device {index}'s {page}-byte flash \
                     page; raise the stripe size to at least one page on every device",
                    self.stripe_bytes
                ));
            }
            if !self.stripe_bytes.is_multiple_of(page) {
                return Err(format!(
                    "stripe of {} bytes is not a multiple of device {index}'s {page}-byte \
                     flash page, so the LPN map would not be a bijection; use a stripe size \
                     divisible by every device's page size",
                    self.stripe_bytes
                ));
            }
            if self.stripes_per_device(index) == 0 {
                return Err(format!(
                    "device {index} cannot hold a single {}-byte stripe within its logical \
                     capacity of {} bytes; shrink the stripe or drop the device from the \
                     array",
                    self.stripe_bytes,
                    device.geometry.capacity_bytes()
                ));
            }
        }
        if let Some(rebalance) = &self.rebalance {
            rebalance
                .validate()
                .map_err(|e| format!("rebalance: {e}"))?;
        }
        Ok(())
    }

    /// Whole stripes device `device` can hold within its logical capacity —
    /// the device's slot capacity for placement.
    pub fn stripes_per_device(&self, device: usize) -> u64 {
        self.devices[device].geometry.capacity_bytes() / self.stripe_bytes
    }

    /// Per-device whole-stripe slot capacities.
    pub fn slot_caps(&self) -> Vec<u64> {
        (0..self.width())
            .map(|d| self.stripes_per_device(d))
            .collect()
    }

    /// Per-device service weights for load normalization: total flash chips,
    /// so a 32-chip device is expected to absorb twice a 16-chip device's
    /// traffic before either counts as overloaded.
    pub fn device_weights(&self) -> Vec<f64> {
        self.devices
            .iter()
            .map(|d| d.geometry.total_chips() as f64)
            .collect()
    }

    /// The array's usable logical capacity in bytes: the largest footprint
    /// whose round-robin image keeps every device within its own
    /// whole-stripe slot capacity.  For `T` total stripes, device `d` owns
    /// `ceil((T - d) / n)` of them, so the bound is
    /// `min over d of (slots(d) * n + d)` stripes — which reduces to
    /// `n * slots * stripe_bytes` for homogeneous arrays, today's formula.
    /// Migrations only ever move stripes into free slots below the same
    /// caps, so the bound holds for adaptive placement too.
    pub fn logical_capacity_bytes(&self) -> u64 {
        let n = self.width() as u64;
        (0..self.width())
            .map(|d| (self.stripes_per_device(d).saturating_mul(n)).saturating_add(d as u64))
            .min()
            .unwrap_or(0)
            .saturating_mul(self.stripe_bytes)
    }

    /// The static striping map this configuration induces.
    pub fn stripe_map(&self) -> StripeMap {
        StripeMap::new(self.width(), self.stripe_bytes)
    }

    /// The initial (round-robin identity) placement map covering a global
    /// footprint of `footprint_bytes`, with this configuration's per-device
    /// slot capacities.
    pub fn placement_map(&self, footprint_bytes: u64) -> PlacementMap {
        let total_stripes = footprint_bytes.div_ceil(self.stripe_bytes);
        PlacementMap::round_robin(
            self.width(),
            self.stripe_bytes,
            total_stripes,
            self.slot_caps(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_a_valid_single_device_array() {
        let config = ArrayConfig::new(SsdConfig::paper_default());
        config.validate().unwrap();
        assert_eq!(config.width(), 1);
        assert!(config.logical_capacity_bytes() <= config.device(0).geometry.capacity_bytes());
        assert!(config.logical_capacity_bytes() > 0);
    }

    #[test]
    fn capacity_scales_with_width_and_floors_to_whole_stripes() {
        let device = SsdConfig::paper_default();
        let one = ArrayConfig::new(device.clone()).with_stripe_kb(1024);
        let four = one.clone().with_devices(4);
        assert_eq!(
            four.logical_capacity_bytes(),
            4 * one.logical_capacity_bytes()
        );
        // Whole-stripe flooring keeps every device's share within its own
        // capacity by construction.
        assert!(one.stripes_per_device(0) * one.stripe_bytes <= device.geometry.capacity_bytes());
    }

    #[test]
    fn heterogeneous_capacity_is_limited_by_the_smallest_device() {
        let big = SsdConfig::paper_default().with_chip_count(32);
        let small = SsdConfig::paper_default().with_chip_count(8);
        let config =
            ArrayConfig::heterogeneous(vec![big.clone(), small.clone()]).with_stripe_kb(1024);
        config.validate().unwrap();
        // Device 1 (small) owns stripes 1, 3, 5, ...: the capacity bound is
        // its slot count, not the big device's.
        let small_slots = config.stripes_per_device(1);
        assert_eq!(
            config.logical_capacity_bytes(),
            (small_slots * 2 + 1) * config.stripe_bytes
        );
        // And a uniform array of small devices holds strictly less.
        let uniform_small = ArrayConfig::new(small).with_devices(2).with_stripe_kb(1024);
        assert!(config.logical_capacity_bytes() > uniform_small.logical_capacity_bytes());
        assert!(
            config.logical_capacity_bytes()
                < ArrayConfig::new(big)
                    .with_devices(2)
                    .with_stripe_kb(1024)
                    .logical_capacity_bytes()
        );
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let device = SsdConfig::small_test();
        assert!(ArrayConfig::new(device.clone())
            .with_devices(0)
            .validate()
            .is_err());
        assert!(ArrayConfig::new(device.clone())
            .with_devices(MAX_DEVICES + 1)
            .validate()
            .is_err());
        // Not a page multiple.
        let mut config = ArrayConfig::new(device.clone());
        config.stripe_bytes = 3000;
        assert!(config.validate().is_err());
        // Smaller than a page.
        let mut config = ArrayConfig::new(device.clone());
        config.stripe_bytes = 512;
        assert!(config.validate().is_err());
        // Bigger than the device.
        let capacity = device.geometry.capacity_bytes();
        let mut config = ArrayConfig::new(device);
        config.stripe_bytes = capacity * 2;
        assert!(config.validate().is_err());
    }

    #[test]
    fn validation_names_the_offending_heterogeneous_device() {
        // Device 1's pages are larger than device 0's: a stripe sized to
        // device 0's pages alone must be rejected *naming device 1*.
        let small_page = SsdConfig::small_test();
        let mut big_page = SsdConfig::small_test();
        big_page.geometry.page_size = small_page.geometry.page_size * 4;
        let page = small_page.page_size() as u64;
        let mut config = ArrayConfig::heterogeneous(vec![small_page.clone(), big_page]);
        config.stripe_bytes = page * 2; // multiple of device 0's page only
        let err = config.validate().unwrap_err();
        assert!(
            err.contains("device 1"),
            "error must name the offending device: {err}"
        );

        // A zero-capacity (stripe larger than the whole device) member is
        // rejected with the device named, even when its peers are fine.
        let tiny = SsdConfig::small_test();
        let capacity = tiny.geometry.capacity_bytes();
        let big = SsdConfig::paper_default();
        assert!(big.geometry.capacity_bytes() >= capacity * 2);
        let mut config = ArrayConfig::heterogeneous(vec![big, tiny]);
        config.stripe_bytes = capacity * 2;
        let err = config.validate().unwrap_err();
        assert!(
            err.contains("device 1") && err.contains("cannot hold"),
            "error must flag the zero-capacity device: {err}"
        );
    }

    #[test]
    fn validation_covers_the_rebalance_tuning() {
        let mut config = ArrayConfig::new(SsdConfig::small_test())
            .with_devices(2)
            .with_rebalance(RebalanceConfig::default());
        config.validate().unwrap();
        config.rebalance.as_mut().unwrap().decay = 1.5;
        let err = config.validate().unwrap_err();
        assert!(err.contains("decay"), "{err}");
    }

    #[test]
    fn placement_map_matches_the_static_capacity_contract() {
        let config = ArrayConfig::new(SsdConfig::small_test())
            .with_devices(3)
            .with_stripe_kb(64);
        config.validate().unwrap();
        let placement = config.placement_map(config.logical_capacity_bytes());
        // The full-capacity image fits the slot caps (round_robin would have
        // panicked otherwise) and routes like the closed-form map.
        let map = config.stripe_map();
        for offset in [0, 1, 65_535, 65_536, 400_000] {
            assert_eq!(placement.locate(offset), map.locate(offset));
        }
    }
}
