//! Array configuration.

use serde::{Deserialize, Serialize};
use sprinkler_ssd::SsdConfig;

use crate::stripe::StripeMap;

/// Upper bound on array width: each device replays on its own scoped thread,
/// so the width is also the replay's thread fan-out.
pub const MAX_DEVICES: usize = 64;

/// Configuration of a striped array of identical Sprinkler SSDs.
///
/// # Example
///
/// ```
/// use sprinkler_array::ArrayConfig;
/// use sprinkler_ssd::SsdConfig;
///
/// let config = ArrayConfig::new(SsdConfig::paper_default())
///     .with_devices(4)
///     .with_stripe_kb(256);
/// config.validate().unwrap();
/// assert_eq!(config.stripe_map().devices(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Configuration every device of the array runs with.
    pub device: SsdConfig,
    /// Number of devices (array width).
    pub devices: usize,
    /// Stripe size in bytes; must be a multiple of the device page size.
    pub stripe_bytes: u64,
}

impl ArrayConfig {
    /// Creates a single-device array with a 1 MiB stripe over `device`.
    pub fn new(device: SsdConfig) -> Self {
        ArrayConfig {
            device,
            devices: 1,
            stripe_bytes: 1024 * 1024,
        }
    }

    /// Sets the array width.
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// Sets the stripe size in KiB.
    pub fn with_stripe_kb(mut self, kb: u64) -> Self {
        self.stripe_bytes = kb * 1024;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.device
            .validate()
            .map_err(|e| format!("invalid device config: {e}"))?;
        if self.devices == 0 {
            return Err("an array needs at least one device".to_string());
        }
        if self.devices > MAX_DEVICES {
            return Err(format!(
                "array width {} exceeds the {MAX_DEVICES}-device replay fan-out limit",
                self.devices
            ));
        }
        let page = self.device.page_size() as u64;
        if self.stripe_bytes < page {
            return Err(format!(
                "stripe of {} bytes is smaller than the {page}-byte flash page",
                self.stripe_bytes
            ));
        }
        if !self.stripe_bytes.is_multiple_of(page) {
            return Err(format!(
                "stripe of {} bytes is not a multiple of the {page}-byte flash page, so the \
                 LPN map would not be a bijection",
                self.stripe_bytes
            ));
        }
        if self.stripes_per_device() == 0 {
            return Err(format!(
                "stripe of {} bytes exceeds the device's logical capacity of {} bytes",
                self.stripe_bytes,
                self.device.geometry.capacity_bytes()
            ));
        }
        Ok(())
    }

    /// Whole stripes each device can hold within its logical capacity.
    pub fn stripes_per_device(&self) -> u64 {
        self.device.geometry.capacity_bytes() / self.stripe_bytes
    }

    /// The array's usable logical capacity in bytes: whole stripes only, so a
    /// source whose footprint fits this bound is guaranteed to map every
    /// device's share within that device's own logical capacity.
    pub fn logical_capacity_bytes(&self) -> u64 {
        self.devices as u64 * self.stripes_per_device() * self.stripe_bytes
    }

    /// The striping map this configuration induces.
    pub fn stripe_map(&self) -> StripeMap {
        StripeMap::new(self.devices, self.stripe_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_a_valid_single_device_array() {
        let config = ArrayConfig::new(SsdConfig::paper_default());
        config.validate().unwrap();
        assert_eq!(config.devices, 1);
        assert!(config.logical_capacity_bytes() <= config.device.geometry.capacity_bytes());
        assert!(config.logical_capacity_bytes() > 0);
    }

    #[test]
    fn capacity_scales_with_width_and_floors_to_whole_stripes() {
        let device = SsdConfig::paper_default();
        let one = ArrayConfig::new(device.clone()).with_stripe_kb(1024);
        let four = one.clone().with_devices(4);
        assert_eq!(
            four.logical_capacity_bytes(),
            4 * one.logical_capacity_bytes()
        );
        // Whole-stripe flooring keeps every device's share within its own
        // capacity by construction.
        assert!(one.stripes_per_device() * one.stripe_bytes <= device.geometry.capacity_bytes());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let device = SsdConfig::small_test();
        assert!(ArrayConfig::new(device.clone())
            .with_devices(0)
            .validate()
            .is_err());
        assert!(ArrayConfig::new(device.clone())
            .with_devices(MAX_DEVICES + 1)
            .validate()
            .is_err());
        // Not a page multiple.
        let mut config = ArrayConfig::new(device.clone());
        config.stripe_bytes = 3000;
        assert!(config.validate().is_err());
        // Smaller than a page.
        let mut config = ArrayConfig::new(device.clone());
        config.stripe_bytes = 512;
        assert!(config.validate().is_err());
        // Bigger than the device.
        let capacity = device.geometry.capacity_bytes();
        let mut config = ArrayConfig::new(device);
        config.stripe_bytes = capacity * 2;
        assert!(config.validate().is_err());
    }
}
