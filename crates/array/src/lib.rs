//! Multi-SSD array frontend for the Sprinkler reproduction.
//!
//! The paper scales one Sprinkler device to 1024 chips; a production system
//! serving millions of users runs *many* such devices behind a host-level
//! sharding layer.  This crate is that layer, kept deliberately simple and
//! deterministic so scheduler comparisons stay attributable:
//!
//! * [`StripeMap`] — chunked round-robin striping of one logical byte address
//!   space over N devices, with an exact LPN ↔ (device, local LPN) bijection
//!   and loss-free splitting of requests that straddle stripe boundaries;
//! * [`PlacementMap`] / [`Rebalancer`] — the adaptive layer: a remappable
//!   stripe → (device, slot) indirection that starts round-robin-identical,
//!   per-stripe heat tracking, and hot-stripe migration between replay
//!   windows with the copy cost charged as injected device traffic
//!   (enabled per-array via [`RebalanceConfig`]);
//! * [`StripedFanout`] / [`DeviceSource`](splitter::DeviceSource) — splits one
//!   streaming [`TraceSource`](sprinkler_workloads::TraceSource) into
//!   per-device sub-sources that each preserve nondecreasing arrival order;
//! * [`run_array`] — parallel per-device replay: every device runs
//!   `Ssd::run_stream` under its own bounded admission on its own scoped
//!   thread;
//! * [`ArrayMetrics`] — the merged host-level view (summed totals, slowest
//!   device elapsed, weighted mean + exactly merged p99 latency) plus
//!   per-device breakdown and [`DeviceSkew`] imbalance statistics.
//!
//! # Example
//!
//! ```
//! use sprinkler_array::{run_array, ArrayConfig};
//! use sprinkler_core::SchedulerKind;
//! use sprinkler_ssd::SsdConfig;
//! use sprinkler_workloads::SyntheticSpec;
//!
//! let config = ArrayConfig::new(SsdConfig::paper_default().with_blocks_per_plane(16))
//!     .with_devices(4)
//!     .with_stripe_kb(256);
//! let spec = SyntheticSpec::new("demo").with_footprint_mb(64);
//! let metrics = run_array(&config, SchedulerKind::Spk3, &mut spec.stream(100, 7)).unwrap();
//! assert_eq!(metrics.device_count, 4);
//! assert!(metrics.bandwidth_kb_per_sec > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod metrics;
pub mod placement;
pub mod replay;
pub mod splitter;
pub mod stripe;

pub use config::{ArrayConfig, MAX_DEVICES};
pub use metrics::{ArrayMetrics, DeviceSkew};
pub use placement::{Migration, PlacementMap, PlacementStats, RebalanceConfig, Rebalancer};
pub use replay::{run_array, ArrayError};
pub use splitter::StripedFanout;
pub use stripe::{Fragment, StripeMap};
