//! Merged array metrics: the host's view of a striped replay.

use serde::{Deserialize, Serialize};
use sprinkler_sim::TelemetrySnapshot;
use sprinkler_ssd::{merged_latency_quantile, weighted_mean_latency_ns, RunMetrics};

use crate::placement::PlacementStats;

/// Per-device imbalance statistics: how evenly the striping map spread the
/// workload, and how much the slowest device dragged the array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceSkew {
    /// Fewest bytes any device moved.
    pub min_device_bytes: u64,
    /// Most bytes any device moved.
    pub max_device_bytes: u64,
    /// Mean bytes per device.
    pub mean_device_bytes: f64,
    /// `max_device_bytes / mean_device_bytes`; 1.0 is perfectly balanced, the
    /// array width is the worst case (everything on one device).
    pub byte_imbalance: f64,
    /// Fewest I/Os any device served.
    pub min_device_ios: u64,
    /// Most I/Os any device served.
    pub max_device_ios: u64,
    /// `max_device_ios / mean ios per device`.
    pub io_imbalance: f64,
    /// Slowest device elapsed over mean device elapsed — how long the array
    /// waits on its hottest shard.
    pub elapsed_imbalance: f64,
    /// `io_imbalance` normalized by per-device service weights (chip counts):
    /// `max(ios[d] / w[d]) / (Σ ios / Σ w)`.  Equals `io_imbalance` on
    /// homogeneous arrays; on heterogeneous ones it reports overload relative
    /// to each device's capability — a 32-chip device serving twice a 16-chip
    /// device's I/Os is *balanced* here.
    pub weighted_io_imbalance: f64,
    /// `byte_imbalance` under the same per-device weight normalization.
    pub weighted_byte_imbalance: f64,
}

impl DeviceSkew {
    fn from_devices(devices: &[RunMetrics], weights: &[f64]) -> Self {
        let n = devices.len().max(1) as f64;
        let bytes: Vec<u64> = devices
            .iter()
            .map(|m| m.bytes_read + m.bytes_written)
            .collect();
        let ios: Vec<u64> = devices.iter().map(|m| m.io_count).collect();
        let mean_bytes = bytes.iter().sum::<u64>() as f64 / n;
        let mean_ios = ios.iter().sum::<u64>() as f64 / n;
        let mean_elapsed = devices.iter().map(|m| m.elapsed_ns).sum::<u64>() as f64 / n;
        let max_elapsed = devices.iter().map(|m| m.elapsed_ns).max().unwrap_or(0);
        let ratio = |max: u64, mean: f64| if mean > 0.0 { max as f64 / mean } else { 1.0 };
        let uniform = vec![1.0; devices.len()];
        let weights = if weights.len() == devices.len() {
            weights
        } else {
            &uniform
        };
        // Weighted imbalance: each device's share over the share its weight
        // entitles it to; 1.0 means every device is loaded exactly to its
        // capability.
        let weighted = |values: &[u64]| {
            let total: f64 = values.iter().map(|&v| v as f64).sum();
            let weight_total: f64 = weights.iter().sum();
            if total <= 0.0 || weight_total <= 0.0 {
                return 1.0;
            }
            let fair = total / weight_total;
            values
                .iter()
                .zip(weights)
                .map(|(&v, &w)| v as f64 / w / fair)
                .fold(1.0f64, f64::max)
        };
        DeviceSkew {
            min_device_bytes: bytes.iter().copied().min().unwrap_or(0),
            max_device_bytes: bytes.iter().copied().max().unwrap_or(0),
            mean_device_bytes: mean_bytes,
            byte_imbalance: ratio(bytes.iter().copied().max().unwrap_or(0), mean_bytes),
            min_device_ios: ios.iter().copied().min().unwrap_or(0),
            max_device_ios: ios.iter().copied().max().unwrap_or(0),
            io_imbalance: ratio(ios.iter().copied().max().unwrap_or(0), mean_ios),
            elapsed_imbalance: ratio(max_elapsed, mean_elapsed),
            weighted_io_imbalance: weighted(&ios),
            weighted_byte_imbalance: weighted(&bytes),
        }
    }
}

/// Everything a striped array replay measures: host-level aggregates merged
/// from the per-device [`RunMetrics`], imbalance statistics, and the full
/// per-device breakdown for drill-down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayMetrics {
    /// Scheduler every device ran.
    pub scheduler: String,
    /// Array width.
    pub device_count: usize,
    /// Stripe size in bytes.
    pub stripe_bytes: u64,
    /// Device-level I/Os completed, summed (a host record straddling a stripe
    /// boundary counts once per fragment).
    pub io_count: u64,
    /// Completed reads, summed.
    pub read_ios: u64,
    /// Completed writes, summed.
    pub write_ios: u64,
    /// Bytes returned to the host by reads, summed.
    pub bytes_read: u64,
    /// Bytes accepted from the host by writes, summed.
    pub bytes_written: u64,
    /// Wall-clock of the array replay: the slowest device's elapsed ns.
    pub elapsed_ns: u64,
    /// Aggregate bandwidth in KB/s: total bytes over the slowest device's
    /// elapsed time — what the host actually observes end to end.
    pub bandwidth_kb_per_sec: f64,
    /// Aggregate I/Os per second over the slowest device's elapsed time.
    pub iops: f64,
    /// I/O-count-weighted mean device-level latency in ns.
    pub avg_latency_ns: f64,
    /// 99th-percentile latency over the union of every device's samples
    /// (exact merge of the shared-bound latency histograms).
    pub p99_latency_ns: u64,
    /// Maximum latency over all devices, ns.
    pub max_latency_ns: u64,
    /// Total queue-stall time, summed over devices, ns.
    pub queue_stall_ns: u64,
    /// Per-device imbalance statistics.
    pub skew: DeviceSkew,
    /// High-water mark of fragments buffered in the fanout while devices
    /// replayed at different positions.
    ///
    /// This is a *host-side* measurement: it depends on how the OS
    /// interleaves the pump and device threads, so it varies between
    /// otherwise identical runs.  Every other field in this struct is
    /// deterministic simulated output (`tests/determinism.rs` enforces
    /// this by full-struct equality with only this field normalized).
    pub peak_fanout_buffered: u64,
    /// Stripes the adaptive placement layer migrated between devices (0 with
    /// the rebalancer off).
    pub stripes_migrated: u64,
    /// Bytes of stripe payload migrated; the devices served twice this much
    /// injected copy traffic (a read on the source, a write on the target),
    /// which the goodput figures below exclude.
    pub migration_bytes: u64,
    /// Heat-EWMA decay passes the rebalancer applied (one per window).
    pub heat_decays: u64,
    /// The per-device metrics, in device order.
    pub devices: Vec<RunMetrics>,
}

impl ArrayMetrics {
    /// Merges per-device run metrics into the host-level array view, with no
    /// adaptive-placement activity (static striping).
    ///
    /// A single-device merge is the identity on every shared field, so a
    /// 1-device array reports exactly what the bare device run reported.
    pub fn merge(stripe_bytes: u64, devices: Vec<RunMetrics>, peak_fanout_buffered: u64) -> Self {
        Self::merge_with(
            stripe_bytes,
            devices,
            peak_fanout_buffered,
            PlacementStats::default(),
            &[],
        )
    }

    /// Merges per-device run metrics into the host-level array view,
    /// accounting for the placement layer's activity and the devices' service
    /// weights.
    ///
    /// `placement`'s migration traffic is *excluded* from the goodput figures
    /// (`bandwidth_kb_per_sec`, `iops`): each migration injected one
    /// stripe-sized read and one stripe-sized write that served no host
    /// payload, while its service time still stretches the elapsed window —
    /// so a rebalancer only wins on these figures when the improved balance
    /// outweighs what the copies cost.  Raw totals (`io_count`, byte
    /// counters) keep counting everything the devices served.  `weights`
    /// (one per device, or empty for uniform) feed the weighted skew figures.
    pub fn merge_with(
        stripe_bytes: u64,
        devices: Vec<RunMetrics>,
        peak_fanout_buffered: u64,
        placement: PlacementStats,
        weights: &[f64],
    ) -> Self {
        assert!(!devices.is_empty(), "an array has at least one device");
        let scheduler = devices[0].scheduler.clone();
        // The array's wall-clock is the *union* of the devices' activity
        // windows on the shared simulation clock — not the longest per-device
        // span, which would overstate aggregate bandwidth whenever shards are
        // active at different times (e.g. a hot shard touched only late).
        // Devices that served nothing carry no window and are skipped.
        let active = || devices.iter().filter(|m| m.io_count > 0);
        let union_start = active().map(|m| m.run_start_ns).min().unwrap_or(0);
        let union_end = active().map(|m| m.run_end_ns).max().unwrap_or(0);
        let elapsed_ns = union_end.saturating_sub(union_start);
        let io_count: u64 = devices.iter().map(|m| m.io_count).sum();
        let bytes_read: u64 = devices.iter().map(|m| m.bytes_read).sum();
        let bytes_written: u64 = devices.iter().map(|m| m.bytes_written).sum();
        let (bandwidth_kb_per_sec, iops, avg_latency_ns, p99_latency_ns) = if devices.len() == 1 {
            // Identity merge: copy the derived floats verbatim rather than
            // recomputing them, so a 1-device array is bit-identical to the
            // bare device run.
            let only = &devices[0];
            (
                only.bandwidth_kb_per_sec,
                only.iops,
                only.avg_latency_ns,
                only.p99_latency_ns,
            )
        } else {
            let elapsed_secs = (elapsed_ns as f64 / 1e9).max(1e-12);
            // Goodput: host payload only.  Each migration injected a
            // stripe-sized read plus a stripe-sized write of copy traffic.
            let payload_bytes =
                (bytes_read + bytes_written).saturating_sub(2 * placement.migration_bytes);
            let payload_ios = io_count.saturating_sub(2 * placement.stripes_migrated);
            (
                payload_bytes as f64 / 1024.0 / elapsed_secs,
                payload_ios as f64 / elapsed_secs,
                weighted_mean_latency_ns(devices.iter()),
                merged_latency_quantile(devices.iter(), 0.99),
            )
        };
        ArrayMetrics {
            scheduler,
            device_count: devices.len(),
            stripe_bytes,
            io_count,
            read_ios: devices.iter().map(|m| m.read_ios).sum(),
            write_ios: devices.iter().map(|m| m.write_ios).sum(),
            bytes_read,
            bytes_written,
            elapsed_ns,
            bandwidth_kb_per_sec,
            iops,
            avg_latency_ns,
            p99_latency_ns,
            max_latency_ns: devices.iter().map(|m| m.max_latency_ns).max().unwrap_or(0),
            queue_stall_ns: devices.iter().map(|m| m.queue_stall_ns).sum(),
            skew: DeviceSkew::from_devices(&devices, weights),
            peak_fanout_buffered,
            stripes_migrated: placement.stripes_migrated,
            migration_bytes: placement.migration_bytes,
            heat_decays: placement.heat_decays,
            devices,
        }
    }

    /// The merged view flattened into a [`RunMetrics`] so array outcomes can
    /// flow through harnesses built for single-device runs (e.g. the scenario
    /// registry).  Fields with no array-level meaning (FLP/execution
    /// breakdowns, GC, series) are averaged or left default; chip utilization
    /// is the device mean.
    pub fn summary_run_metrics(&self) -> RunMetrics {
        let n = self.device_count.max(1) as f64;
        // Preserve the RunMetrics window invariant
        // (`run_end_ns - run_start_ns == elapsed_ns`): the summary's window is
        // the union window the merge measured.
        let run_start_ns = self
            .devices
            .iter()
            .filter(|m| m.io_count > 0)
            .map(|m| m.run_start_ns)
            .min()
            .unwrap_or(0);
        // Elementwise sum of the shared-bound per-device histograms: the exact
        // bucket counts a single collector observing every device's I/Os would
        // have recorded, so the summary round-trips through
        // `merged_latency_quantile` to the same p99 the array reported.
        // (Dropping these silently — the old `..default()` behaviour — made
        // every downstream latency merge treat the array as sample-free.)
        let bucket_len = self
            .devices
            .iter()
            .map(|m| m.latency_buckets.len())
            .max()
            .unwrap_or(0);
        let mut latency_buckets = vec![0u64; bucket_len];
        for device in &self.devices {
            for (slot, &count) in latency_buckets.iter_mut().zip(&device.latency_buckets) {
                *slot += count;
            }
        }
        RunMetrics {
            scheduler: self.scheduler.clone(),
            io_count: self.io_count,
            read_ios: self.read_ios,
            write_ios: self.write_ios,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            elapsed_ns: self.elapsed_ns,
            run_start_ns,
            run_end_ns: run_start_ns + self.elapsed_ns,
            bandwidth_kb_per_sec: self.bandwidth_kb_per_sec,
            iops: self.iops,
            avg_latency_ns: self.avg_latency_ns,
            p99_latency_ns: self.p99_latency_ns,
            max_latency_ns: self.max_latency_ns,
            queue_stall_ns: self.queue_stall_ns,
            peak_host_backlog: self
                .devices
                .iter()
                .map(|m| m.peak_host_backlog)
                .max()
                .unwrap_or(0),
            peak_pending_events: self
                .devices
                .iter()
                .map(|m| m.peak_pending_events)
                .max()
                .unwrap_or(0),
            chip_utilization: self.devices.iter().map(|m| m.chip_utilization).sum::<f64>() / n,
            transactions: self.devices.iter().map(|m| m.transactions).sum(),
            memory_requests: self.devices.iter().map(|m| m.memory_requests).sum(),
            latency_buckets,
            telemetry: {
                // Fold the device counters, then stamp in the array-level
                // placement counters (devices never touch those fields).
                let mut folded = self
                    .devices
                    .iter()
                    .fold(TelemetrySnapshot::default(), |acc, m| {
                        acc.merged(&m.telemetry)
                    });
                folded.stripes_migrated += self.stripes_migrated;
                folded.migration_bytes += self.migration_bytes;
                folded.heat_decays += self.heat_decays;
                folded
            },
            ..RunMetrics::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(io: u64, bytes: u64, elapsed_ns: u64, avg_latency: f64) -> RunMetrics {
        RunMetrics {
            scheduler: "SPK3".to_string(),
            io_count: io,
            read_ios: io,
            bytes_read: bytes,
            elapsed_ns,
            run_start_ns: 0,
            run_end_ns: elapsed_ns,
            avg_latency_ns: avg_latency,
            bandwidth_kb_per_sec: bytes as f64 / 1024.0 / (elapsed_ns as f64 / 1e9).max(1e-12),
            ..RunMetrics::default()
        }
    }

    #[test]
    fn single_device_merge_is_the_identity() {
        let only = device(100, 1 << 20, 5_000_000, 42_000.0);
        let merged = ArrayMetrics::merge(1 << 20, vec![only.clone()], 3);
        assert_eq!(merged.device_count, 1);
        assert_eq!(merged.io_count, only.io_count);
        assert_eq!(merged.elapsed_ns, only.elapsed_ns);
        assert_eq!(merged.bandwidth_kb_per_sec, only.bandwidth_kb_per_sec);
        assert_eq!(merged.avg_latency_ns, only.avg_latency_ns);
        assert_eq!(merged.p99_latency_ns, only.p99_latency_ns);
        assert_eq!(merged.skew.byte_imbalance, 1.0);
        assert_eq!(merged.peak_fanout_buffered, 3);
    }

    #[test]
    fn merge_sums_totals_and_takes_the_slowest_elapsed() {
        let a = device(100, 10 << 20, 4_000_000, 10_000.0);
        let b = device(300, 30 << 20, 8_000_000, 30_000.0);
        let merged = ArrayMetrics::merge(1 << 20, vec![a, b], 0);
        assert_eq!(merged.io_count, 400);
        assert_eq!(merged.bytes_read, 40 << 20);
        assert_eq!(merged.elapsed_ns, 8_000_000);
        // 40 MiB over 8 ms.
        let expect = (40u64 << 20) as f64 / 1024.0 / 8e-3;
        assert!((merged.bandwidth_kb_per_sec - expect).abs() < 1e-6);
        // Weighted mean: (100*10k + 300*30k) / 400 = 25k.
        assert!((merged.avg_latency_ns - 25_000.0).abs() < 1e-9);
    }

    /// Regression: the merged wall-clock is the union of the devices'
    /// activity windows, not the longest per-device span.  Two devices active
    /// in disjoint 1 ms windows 9 ms apart span 10 ms of host time; taking
    /// `max(elapsed)` would report 1 ms and a ~10x inflated bandwidth.
    #[test]
    fn merge_spans_the_union_of_device_windows() {
        let early = device(100, 10 << 20, 1_000_000, 10_000.0); // [0, 1ms)
        let mut late = device(100, 10 << 20, 1_000_000, 10_000.0);
        late.run_start_ns = 9_000_000; // [9ms, 10ms)
        late.run_end_ns = 10_000_000;
        let merged = ArrayMetrics::merge(1 << 20, vec![early, late], 0);
        assert_eq!(merged.elapsed_ns, 10_000_000);
        let expect_bw = (20u64 << 20) as f64 / 1024.0 / 10e-3;
        assert!((merged.bandwidth_kb_per_sec - expect_bw).abs() < 1e-6);
        // An idle device contributes no window.
        let early = device(100, 10 << 20, 1_000_000, 10_000.0);
        let mut idle = device(0, 0, 0, 0.0);
        idle.run_start_ns = 0;
        idle.run_end_ns = 0;
        let merged = ArrayMetrics::merge(1 << 20, vec![early, idle], 0);
        assert_eq!(merged.elapsed_ns, 1_000_000);
    }

    #[test]
    fn skew_reports_the_hot_device() {
        let cold = device(100, 10 << 20, 4_000_000, 10_000.0);
        let hot = device(300, 30 << 20, 8_000_000, 30_000.0);
        let merged = ArrayMetrics::merge(1 << 20, vec![cold, hot], 0);
        assert_eq!(merged.skew.min_device_ios, 100);
        assert_eq!(merged.skew.max_device_ios, 300);
        assert!((merged.skew.io_imbalance - 1.5).abs() < 1e-9);
        assert!((merged.skew.byte_imbalance - 1.5).abs() < 1e-9);
        assert!(merged.skew.elapsed_imbalance > 1.0);
    }

    #[test]
    fn summary_preserves_the_aggregate_view() {
        let a = device(10, 1 << 20, 1_000_000, 5_000.0);
        let b = device(30, 3 << 20, 2_000_000, 15_000.0);
        let merged = ArrayMetrics::merge(1 << 20, vec![a, b], 0);
        let summary = merged.summary_run_metrics();
        assert_eq!(summary.io_count, merged.io_count);
        assert_eq!(summary.bandwidth_kb_per_sec, merged.bandwidth_kb_per_sec);
        assert_eq!(summary.avg_latency_ns, merged.avg_latency_ns);
        assert_eq!(summary.scheduler, "SPK3");
    }

    /// Builds a device run whose latency histogram has `count` samples in the
    /// shared bucket whose upper bound is closest above `latency_ns`.
    fn device_with_latencies(io: u64, samples: &[(u64, u64)]) -> RunMetrics {
        let bounds = sprinkler_ssd::latency_bucket_bounds();
        let mut latency_buckets = vec![0u64; bounds.len() + 1];
        let mut max_latency_ns = 0;
        for &(latency_ns, count) in samples {
            let idx = bounds
                .iter()
                .position(|&b| latency_ns <= b)
                .unwrap_or(bounds.len());
            latency_buckets[idx] += count;
            max_latency_ns = max_latency_ns.max(latency_ns);
        }
        RunMetrics {
            max_latency_ns,
            latency_buckets,
            ..device(io, io * 4096, 1_000_000, 10_000.0)
        }
    }

    /// Regression (the silently-dropped histogram): the summary must carry the
    /// elementwise-summed per-device bucket counts, so feeding the summary back
    /// through `merged_latency_quantile` reproduces the p99 the array itself
    /// reported.  Before the fix `..RunMetrics::default()` zeroed the buckets
    /// and the round-tripped quantile collapsed to 0.
    #[test]
    fn summary_round_trips_the_merged_latency_histogram() {
        let a = device_with_latencies(40, &[(5_000, 30), (40_000, 10)]);
        let b = device_with_latencies(60, &[(40_000, 50), (900_000, 10)]);
        let merged = ArrayMetrics::merge(1 << 20, vec![a, b], 0);
        assert!(merged.p99_latency_ns > 0);
        let summary = merged.summary_run_metrics();
        assert_eq!(summary.latency_buckets.iter().sum::<u64>(), 100);
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                merged_latency_quantile([&summary], q),
                merged_latency_quantile(merged.devices.iter(), q),
                "quantile {q} diverged after the summary round-trip",
            );
        }
        assert_eq!(
            merged_latency_quantile([&summary], 0.99),
            merged.p99_latency_ns
        );
    }

    #[test]
    fn summary_sums_device_telemetry() {
        let mut a = device(10, 1 << 20, 1_000_000, 5_000.0);
        a.telemetry = TelemetrySnapshot {
            sched_rounds: 7,
            stream_admissions: 10,
            ..TelemetrySnapshot::default()
        };
        let mut b = device(30, 3 << 20, 2_000_000, 15_000.0);
        b.telemetry = TelemetrySnapshot {
            sched_rounds: 5,
            hazard_war_deferrals: 2,
            ..TelemetrySnapshot::default()
        };
        let merged = ArrayMetrics::merge(1 << 20, vec![a, b], 0);
        let summary = merged.summary_run_metrics();
        assert_eq!(summary.telemetry.sched_rounds, 12);
        assert_eq!(summary.telemetry.stream_admissions, 10);
        assert_eq!(summary.telemetry.hazard_war_deferrals, 2);
        assert_eq!(summary.telemetry.stream_stalls, 0);
    }
}
