//! Adaptive stripe placement: the remappable indirection layer between the
//! global striped address space and the devices, plus the heat tracker and
//! rebalancer that drive it.
//!
//! [`StripeMap`](crate::StripeMap) is a closed-form bijection: global stripe
//! `s` lives on device `s % n` at local slot `s / n`, forever.  That is
//! exactly what a static RAID-0 layer computes, and exactly what a host-level
//! placement layer cannot live with: a hot stripe is pinned to whatever
//! device the modulus dealt it to.  [`PlacementMap`] starts from the same
//! round-robin layout but holds it as *state* — a forward table
//! `stripe → (device, slot)` and per-device slot occupancy — so stripes can
//! be [migrated](PlacementMap::migrate) between devices while the
//! LPN ↔ (device, local LPN) bijection is preserved by construction: a
//! migration moves a stripe into a *free* slot, frees its old slot, and
//! updates both directions of the table atomically.
//!
//! The adaptive pieces layer on top:
//!
//! * per-stripe **heat** — an EWMA of routed bytes, fed by the splitter on
//!   every record and decayed once per rebalance window;
//! * a **[`Rebalancer`]** — between replay windows it compares per-device
//!   heat loads (normalized by a per-device service weight, so heterogeneous
//!   arrays balance against capability, not just count), and migrates the
//!   hottest stripes off overloaded devices onto the coolest devices that can
//!   take them;
//! * **migration cost** — each migration is surfaced as a [`Migration`] the
//!   fanout turns into injected traffic: a stripe-sized read on the source
//!   device and a stripe-sized write on the target, so rebalancing pays for
//!   itself in simulated time like it would in a real JBOF.
//!
//! With no migrations applied, every lookup agrees with the closed-form
//! [`StripeMap`](crate::StripeMap) — pinned by differential tests — so the
//! indirection is
//! behavior-preserving until a rebalancer actually acts.

use serde::{Deserialize, Serialize};
use sprinkler_workloads::TraceRecord;

use crate::stripe::Fragment;

/// Sentinel for an unoccupied slot in the per-device occupancy tables.
const FREE: u64 = u64::MAX;

/// One applied stripe relocation: where the stripe was, and where it is now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// The global stripe index that moved.
    pub stripe: u64,
    /// Device the stripe was read from.
    pub from_device: usize,
    /// The local stripe slot it occupied there.
    pub from_slot: u64,
    /// Device the stripe was written to.
    pub to_device: usize,
    /// The local stripe slot it now occupies.
    pub to_slot: u64,
}

/// The remappable stripe → (device, local slot) indirection table.
///
/// # Example
///
/// ```
/// use sprinkler_array::PlacementMap;
///
/// // 4 devices, 1 MiB stripes, 8 tracked stripes, unbounded slots.
/// let mut map = PlacementMap::round_robin(4, 1 << 20, 8, vec![u64::MAX; 4]);
/// assert_eq!(map.locate(5 << 20), (1, 1 << 20)); // identical to StripeMap
/// let m = map.migrate(5, 2).expect("device 2 has free slots");
/// assert_eq!((m.from_device, m.to_device), (1, 2));
/// assert_eq!(map.locate(5 << 20), (2, m.to_slot * (1 << 20)));
/// // The bijection survives: the new location maps back to the same offset.
/// assert_eq!(map.to_global(2, m.to_slot * (1 << 20)), 5 << 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementMap {
    devices: usize,
    stripe_bytes: u64,
    /// `forward[s] = (device, slot)` for every tracked global stripe.
    forward: Vec<(u32, u32)>,
    /// `occupant[d][slot]` = the global stripe living there, or [`FREE`].
    /// Grown lazily past the initial round-robin image.
    occupant: Vec<Vec<u64>>,
    /// Slots freed by migrations, kept sorted ascending so allocation reuses
    /// the lowest hole before extending the frontier.
    freed: Vec<Vec<u64>>,
    /// First never-occupied slot per device.
    frontier: Vec<u64>,
    /// Whole-stripe slot capacity per device; migrations never place a
    /// stripe at or past this bound.
    slot_caps: Vec<u64>,
}

impl PlacementMap {
    /// Builds the identity placement: the same chunked round-robin layout as
    /// `StripeMap::new(devices, stripe_bytes)`, covering global stripes
    /// `0..total_stripes`, with `slot_caps[d]` whole-stripe slots available
    /// on device `d`.
    ///
    /// # Panics
    ///
    /// Panics when `devices` or `stripe_bytes` is zero, when `slot_caps` is
    /// not `devices` long, or when the round-robin image of `total_stripes`
    /// does not fit some device's slot capacity.
    pub fn round_robin(
        devices: usize,
        stripe_bytes: u64,
        total_stripes: u64,
        slot_caps: Vec<u64>,
    ) -> Self {
        assert!(devices >= 1, "an array needs at least one device");
        assert!(stripe_bytes >= 1, "stripes must be at least one byte");
        assert_eq!(slot_caps.len(), devices, "one slot capacity per device");
        let n = devices as u64;
        let mut forward = Vec::with_capacity(total_stripes as usize);
        let mut occupant: Vec<Vec<u64>> = (0..devices)
            .map(|d| {
                let d = d as u64;
                let owned = if total_stripes > d {
                    (total_stripes - d - 1) / n + 1
                } else {
                    0
                };
                Vec::with_capacity(owned as usize)
            })
            .collect();
        for stripe in 0..total_stripes {
            let device = (stripe % n) as usize;
            let slot = stripe / n;
            assert!(
                slot < slot_caps[device],
                "round-robin image of stripe {stripe} exceeds device {device}'s \
                 {}-slot capacity",
                slot_caps[device]
            );
            forward.push((device as u32, slot as u32));
            occupant[device].push(stripe);
        }
        let frontier = occupant.iter().map(|slots| slots.len() as u64).collect();
        PlacementMap {
            devices,
            stripe_bytes,
            forward,
            occupant,
            freed: vec![Vec::new(); devices],
            frontier,
            slot_caps,
        }
    }

    /// Number of devices stripes are placed across.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// The stripe size in bytes.
    pub fn stripe_bytes(&self) -> u64 {
        self.stripe_bytes
    }

    /// Global stripes the table tracks (offsets past this fall back to the
    /// closed-form round-robin layout, which migrations never touch).
    pub fn total_stripes(&self) -> u64 {
        self.forward.len() as u64
    }

    /// The device currently holding global stripe `stripe`.
    pub fn stripe_device(&self, stripe: u64) -> usize {
        match self.forward.get(stripe as usize) {
            Some(&(device, _)) => device as usize,
            None => (stripe % self.devices as u64) as usize,
        }
    }

    /// The `(device, local slot)` placement of global stripe `stripe`.
    pub fn stripe_slot(&self, stripe: u64) -> (usize, u64) {
        match self.forward.get(stripe as usize) {
            Some(&(device, slot)) => (device as usize, slot as u64),
            None => (
                (stripe % self.devices as u64) as usize,
                stripe / self.devices as u64,
            ),
        }
    }

    /// Maps a global byte offset to `(device, local byte offset)`.
    pub fn locate(&self, global_offset: u64) -> (usize, u64) {
        let (device, slot) = self.stripe_slot(global_offset / self.stripe_bytes);
        (
            device,
            slot * self.stripe_bytes + global_offset % self.stripe_bytes,
        )
    }

    /// Inverse of [`PlacementMap::locate`].
    pub fn to_global(&self, device: usize, local_offset: u64) -> u64 {
        debug_assert!(device < self.devices);
        let slot = local_offset / self.stripe_bytes;
        let stripe = match self.occupant[device].get(slot as usize) {
            Some(&stripe) if stripe != FREE => stripe,
            // Past (or in a hole of) the tracked image the closed-form layout
            // still applies: migrations only ever move tracked stripes.
            _ => slot * self.devices as u64 + device as u64,
        };
        stripe * self.stripe_bytes + local_offset % self.stripe_bytes
    }

    /// Maps a global logical page number to `(device, local LPN)`.  Exact —
    /// pages never straddle devices — when the stripe size is a multiple of
    /// `page_size` (enforced by `ArrayConfig::validate`).
    pub fn locate_lpn(&self, lpn: u64, page_size: u64) -> (usize, u64) {
        debug_assert!(self.stripe_bytes.is_multiple_of(page_size));
        let (device, local) = self.locate(lpn * page_size);
        (device, local / page_size)
    }

    /// Inverse of [`PlacementMap::locate_lpn`].
    pub fn lpn_to_global(&self, device: usize, local_lpn: u64, page_size: u64) -> u64 {
        self.to_global(device, local_lpn * page_size) / page_size
    }

    /// Whether `device` has a free whole-stripe slot to receive a migration.
    pub fn can_accept(&self, device: usize) -> bool {
        !self.freed[device].is_empty() || self.frontier[device] < self.slot_caps[device]
    }

    /// The exclusive local-byte upper bound device `device` can currently be
    /// addressed at: one past its highest ever-occupied slot.
    pub fn local_slot_bound(&self, device: usize) -> u64 {
        self.frontier[device] * self.stripe_bytes
    }

    /// First never-occupied slot on `device` (grows by at most one per
    /// migration landing there).
    pub fn frontier_slots(&self, device: usize) -> u64 {
        self.frontier[device]
    }

    /// Whole-stripe slot capacity of `device`.
    pub fn slot_cap(&self, device: usize) -> u64 {
        self.slot_caps[device]
    }

    /// Moves global stripe `stripe` onto `to_device`, into its lowest free
    /// slot.  Returns `None` — and changes nothing — when the stripe already
    /// lives there, the stripe is untracked, or the target has no free slot.
    pub fn migrate(&mut self, stripe: u64, to_device: usize) -> Option<Migration> {
        debug_assert!(to_device < self.devices);
        let &(from_device, from_slot) = self.forward.get(stripe as usize)?;
        let (from_device, from_slot) = (from_device as usize, from_slot as u64);
        if from_device == to_device {
            return None;
        }
        // Lowest free slot: reuse the smallest freed hole, else extend.
        let to_slot = if self.freed[to_device].is_empty() {
            if self.frontier[to_device] >= self.slot_caps[to_device] {
                return None;
            }
            let slot = self.frontier[to_device];
            self.frontier[to_device] += 1;
            slot
        } else {
            self.freed[to_device].remove(0)
        };
        // Occupy the new slot (growing the lazily-sized table as needed).
        let table = &mut self.occupant[to_device];
        if (to_slot as usize) >= table.len() {
            table.resize(to_slot as usize + 1, FREE);
        }
        debug_assert_eq!(table[to_slot as usize], FREE, "target slot must be free");
        table[to_slot as usize] = stripe;
        // Free the old slot, keeping the freed list sorted for lowest-first
        // reuse.
        self.occupant[from_device][from_slot as usize] = FREE;
        let freed = &mut self.freed[from_device];
        let at = freed.partition_point(|&s| s < from_slot);
        freed.insert(at, from_slot);
        self.forward[stripe as usize] = (to_device as u32, to_slot as u32);
        Some(Migration {
            stripe,
            from_device,
            from_slot,
            to_device,
            to_slot,
        })
    }

    /// Splits one trace record at stripe boundaries into per-device
    /// fragments under the *current* placement, in global address order,
    /// coalescing locally contiguous pieces into `out` (cleared first).  The
    /// fragment byte lengths always sum to the record's length.
    pub fn split_into(&self, record: &TraceRecord, out: &mut Vec<Fragment>) {
        out.clear();
        let mut offset = record.offset;
        let mut remaining = record.bytes.max(1);
        while remaining > 0 {
            let within = offset % self.stripe_bytes;
            let take = (self.stripe_bytes - within).min(remaining);
            let (device, local) = self.locate(offset);
            match out.iter().rposition(|f| f.device == device) {
                Some(i) if out[i].offset + out[i].bytes == local => {
                    out[i].bytes += take;
                }
                _ => out.push(Fragment {
                    device,
                    offset: local,
                    bytes: take,
                }),
            }
            offset += take;
            remaining -= take;
        }
    }

    /// Asserts the table invariants: forward and occupancy agree in both
    /// directions and every placement respects the slot caps.  Two stripes
    /// sharing a slot is caught by the forward→occupant check (one slot can
    /// hold only one occupant), so no side table is needed — keeping this
    /// validator itself allocation-free.  Intended for tests and property
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics when any invariant is violated.
    pub fn validate_tables(&self) {
        for (stripe, &(device, slot)) in self.forward.iter().enumerate() {
            let (device, slot) = (device as usize, slot as u64);
            assert!(slot < self.slot_caps[device]);
            assert_eq!(
                self.occupant[device][slot as usize], stripe as u64,
                "slot collision or stale occupancy"
            );
        }
        for (device, table) in self.occupant.iter().enumerate() {
            for (slot, &stripe) in table.iter().enumerate() {
                if stripe != FREE {
                    assert_eq!(self.forward[stripe as usize], (device as u32, slot as u32));
                }
            }
        }
    }
}

/// Counters the placement layer accumulates while rebalancing; merged into
/// the array telemetry (`TelemetrySnapshot`) when a replay finishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementStats {
    /// Stripes relocated between devices.
    pub stripes_migrated: u64,
    /// Bytes of stripe payload relocated (one stripe's worth per migration;
    /// the injected device traffic is twice this).
    pub migration_bytes: u64,
    /// EWMA decay passes applied to the heat table (one per window).
    pub heat_decays: u64,
}

/// Tuning of the between-windows rebalancer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalanceConfig {
    /// Trace records per rebalance window: heat is examined (and decayed)
    /// every time this many records have been routed.
    pub window_records: u64,
    /// Multiplier applied to every stripe's heat at each window boundary
    /// (EWMA decay; `0.5` halves the past's weight every window).
    pub decay: f64,
    /// Overload trigger: migrate only while the hottest device's normalized
    /// load exceeds the mean normalized load by this factor.
    pub trigger_ratio: f64,
    /// Most stripes migrated at one window boundary.
    pub max_migrations_per_window: usize,
    /// Hard budget on migrations across the whole replay — stripe copies
    /// cost real injected traffic, so the rebalancer must not thrash.
    pub max_total_migrations: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            window_records: 32,
            decay: 0.5,
            trigger_ratio: 1.15,
            max_migrations_per_window: 2,
            max_total_migrations: 64,
        }
    }
}

impl RebalanceConfig {
    /// Validates the tuning.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_records == 0 {
            return Err("window_records must be at least 1 record".to_string());
        }
        if self.decay.is_nan() || self.decay <= 0.0 || self.decay > 1.0 {
            return Err(format!(
                "decay of {} is outside (0, 1]; 1.0 means no decay, smaller values \
                 forget faster",
                self.decay
            ));
        }
        if self.trigger_ratio.is_nan() || self.trigger_ratio < 1.0 {
            return Err(format!(
                "trigger_ratio of {} is below 1.0, which would migrate even off \
                 perfectly balanced devices",
                self.trigger_ratio
            ));
        }
        Ok(())
    }
}

/// Per-stripe heat tracking plus the between-windows migration policy.
///
/// Heat is an EWMA of routed bytes per stripe; device load is the sum of the
/// heat of the stripes currently placed on it, maintained incrementally and
/// normalized by a per-device service weight (chip count, for heterogeneous
/// arrays) when devices are compared.
#[derive(Debug)]
pub struct Rebalancer {
    config: RebalanceConfig,
    /// Per-device service weight; loads are compared as `load / weight`.
    weights: Vec<f64>,
    /// EWMA heat per tracked global stripe, in bytes.
    heat: Vec<f64>,
    /// Per-device sum of the heat of its resident stripes.
    load: Vec<f64>,
    records_in_window: u64,
    /// Counters surfaced into the array telemetry.
    pub stats: PlacementStats,
}

impl Rebalancer {
    /// Creates a tracker for `total_stripes` stripes over the weighted
    /// devices.
    ///
    /// # Panics
    ///
    /// Panics when `weights` is empty or any weight is not positive.
    pub fn new(config: RebalanceConfig, weights: Vec<f64>, total_stripes: u64) -> Self {
        assert!(!weights.is_empty(), "an array needs at least one device");
        assert!(
            weights.iter().all(|&w| w > 0.0),
            "device weights must be positive"
        );
        let devices = weights.len();
        Rebalancer {
            config,
            weights,
            heat: vec![0.0; total_stripes as usize],
            load: vec![0.0; devices],
            records_in_window: 0,
            stats: PlacementStats::default(),
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &RebalanceConfig {
        &self.config
    }

    /// Feeds `bytes` of I/O landing on global stripe `stripe` into the heat
    /// EWMA.  Called by the splitter for every stripe a routed record
    /// touches.
    pub fn note(&mut self, stripe: u64, bytes: u64, placement: &PlacementMap) {
        let Some(heat) = self.heat.get_mut(stripe as usize) else {
            return;
        };
        *heat += bytes as f64;
        self.load[placement.stripe_device(stripe)] += bytes as f64;
    }

    /// Marks one routed record; at window boundaries, selects and applies
    /// migrations (pushed onto `out`, which is cleared first) and then decays
    /// the heat table.
    pub fn record_routed(&mut self, placement: &mut PlacementMap, out: &mut Vec<Migration>) {
        out.clear();
        self.records_in_window += 1;
        if self.records_in_window < self.config.window_records {
            return;
        }
        self.records_in_window = 0;
        self.select_migrations(placement, out);
        // Decay after deciding: decisions see the freshest window fully
        // weighted.  Scaling every stripe's heat scales the per-device sums
        // identically, so the loads stay exact.
        for heat in &mut self.heat {
            *heat *= self.config.decay;
        }
        for load in &mut self.load {
            *load *= self.config.decay;
        }
        self.stats.heat_decays += 1;
    }

    /// Greedy migration selection: repeatedly move the hottest stripe of the
    /// most (normalized-)overloaded device to the coolest device that can
    /// accept it, while that strictly reduces the peak normalized load.
    fn select_migrations(&mut self, placement: &mut PlacementMap, out: &mut Vec<Migration>) {
        let n = self.weights.len();
        if n < 2 {
            return;
        }
        for _ in 0..self.config.max_migrations_per_window {
            if self.stats.stripes_migrated >= self.config.max_total_migrations {
                return;
            }
            let norm = |load: f64, d: usize| load / self.weights[d];
            let mean: f64 = (0..n).map(|d| norm(self.load[d], d)).sum::<f64>() / n as f64;
            let Some(hot) =
                (0..n).max_by(|&a, &b| norm(self.load[a], a).total_cmp(&norm(self.load[b], b)))
            else {
                return;
            };
            let hot_norm = norm(self.load[hot], hot);
            if hot_norm <= self.config.trigger_ratio * mean || self.load[hot] <= 0.0 {
                return;
            }
            // Hottest resident stripe of the hot device.
            let mut best: Option<(u64, f64)> = None;
            for (stripe, &heat) in self.heat.iter().enumerate() {
                if heat > 0.0
                    && placement.stripe_device(stripe as u64) == hot
                    && best.is_none_or(|(_, h)| heat > h)
                {
                    best = Some((stripe as u64, heat));
                }
            }
            let Some((stripe, heat)) = best else { return };
            // Coolest device with a free slot.
            let target = (0..n)
                .filter(|&d| d != hot && placement.can_accept(d))
                .min_by(|&a, &b| norm(self.load[a], a).total_cmp(&norm(self.load[b], b)));
            let Some(target) = target else { return };
            // Only move when the move strictly lowers the peak: dumping the
            // stripe somewhere it would dominate just relocates the hotspot
            // and pays the copy for nothing.
            if norm(self.load[target] + heat, target) >= hot_norm {
                return;
            }
            let Some(migration) = placement.migrate(stripe, target) else {
                return;
            };
            self.load[hot] -= heat;
            self.load[target] += heat;
            self.stats.stripes_migrated += 1;
            self.stats.migration_bytes += placement.stripe_bytes();
            out.push(migration);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripe::StripeMap;
    use sprinkler_sim::SimTime;
    use sprinkler_workloads::TraceOp;

    fn rec(offset: u64, bytes: u64) -> TraceRecord {
        TraceRecord {
            id: 0,
            arrival: SimTime::ZERO,
            op: TraceOp::Read,
            offset,
            bytes,
        }
    }

    #[test]
    fn identity_placement_matches_the_closed_form_map() {
        let stripe_bytes = 4096;
        let map = StripeMap::new(3, stripe_bytes);
        let placement = PlacementMap::round_robin(3, stripe_bytes, 64, vec![u64::MAX; 3]);
        for offset in [0, 1, 4095, 4096, 12287, 12288, 64 * 4096 - 1, 999_999] {
            assert_eq!(placement.locate(offset), map.locate(offset));
        }
        for device in 0..3 {
            for local in [0, 1, 4096, 40960] {
                assert_eq!(
                    placement.to_global(device, local),
                    map.to_global(device, local)
                );
            }
        }
        // Splits agree too.
        let record = rec(1000, 30_000);
        let mut fragments = Vec::new();
        placement.split_into(&record, &mut fragments);
        assert_eq!(fragments, map.split(&record));
    }

    #[test]
    fn migrate_moves_a_stripe_and_preserves_the_bijection() {
        let mut placement = PlacementMap::round_robin(4, 1000, 12, vec![u64::MAX; 4]);
        // Stripe 5 starts on device 1, slot 1.
        assert_eq!(placement.stripe_slot(5), (1, 1));
        let m = placement.migrate(5, 3).unwrap();
        assert_eq!(
            m,
            Migration {
                stripe: 5,
                from_device: 1,
                from_slot: 1,
                to_device: 3,
                // Device 3 owns stripes 3, 7, 11 in slots 0..3; the first
                // free slot is the frontier.
                to_slot: 3,
            }
        );
        assert_eq!(placement.locate(5500), (3, 3500));
        assert_eq!(placement.to_global(3, 3500), 5500);
        placement.validate_tables();
        // The freed slot is reused lowest-first by the next inbound stripe.
        let back = placement.migrate(7, 1).unwrap();
        assert_eq!((back.to_device, back.to_slot), (1, 1));
        placement.validate_tables();
    }

    #[test]
    fn migrate_refuses_no_ops_and_full_devices() {
        let mut placement = PlacementMap::round_robin(2, 1000, 4, vec![2, 2]);
        // Same device: no-op.
        assert!(placement.migrate(0, 0).is_none());
        // Both devices are at their 2-slot cap: no free slot anywhere.
        assert!(!placement.can_accept(1));
        assert!(placement.migrate(0, 1).is_none());
        // Untracked stripe: refused.
        assert!(placement.migrate(99, 1).is_none());
        placement.validate_tables();
    }

    #[test]
    fn rebalancer_moves_the_hot_stripe_to_the_coolest_device() {
        let config = RebalanceConfig {
            window_records: 2,
            ..RebalanceConfig::default()
        };
        let mut placement = PlacementMap::round_robin(4, 1000, 8, vec![u64::MAX; 4]);
        let mut rb = Rebalancer::new(config, vec![1.0; 4], 8);
        let mut out = Vec::new();
        // Stripes 0 and 4 both live on device 0; make both hot.
        for _ in 0..2 {
            rb.note(0, 10_000, &placement);
            rb.note(4, 8_000, &placement);
            rb.record_routed(&mut placement, &mut out);
        }
        // After the first full window the hottest stripe left device 0.
        assert_eq!(rb.stats.stripes_migrated, 1);
        assert_eq!(rb.stats.migration_bytes, 1000);
        assert!(rb.stats.heat_decays >= 1);
        assert_ne!(placement.stripe_device(0), placement.stripe_device(4));
        placement.validate_tables();
    }

    #[test]
    fn rebalancer_respects_the_total_migration_budget() {
        let config = RebalanceConfig {
            window_records: 1,
            max_migrations_per_window: 8,
            max_total_migrations: 2,
            trigger_ratio: 1.0,
            ..RebalanceConfig::default()
        };
        let mut placement = PlacementMap::round_robin(2, 1000, 16, vec![u64::MAX; 2]);
        let mut rb = Rebalancer::new(config, vec![1.0; 2], 16);
        let mut out = Vec::new();
        for round in 0..20u64 {
            // Keep device 0 permanently hot across many stripes.
            rb.note((round % 8) * 2, 50_000, &placement);
            rb.record_routed(&mut placement, &mut out);
        }
        assert!(rb.stats.stripes_migrated <= 2, "budget must cap migrations");
    }

    #[test]
    fn heterogeneous_weights_shift_load_toward_big_devices() {
        let config = RebalanceConfig {
            window_records: 1,
            trigger_ratio: 1.05,
            ..RebalanceConfig::default()
        };
        let mut placement = PlacementMap::round_robin(2, 1000, 4, vec![u64::MAX; 2]);
        // Device 0 is 4x the service capability of device 1.
        let mut rb = Rebalancer::new(config, vec![4.0, 1.0], 4);
        let mut out = Vec::new();
        // Equal heat everywhere: device 1 is normalized-overloaded (same
        // load over a quarter of the weight), so its stripes drift to 0.
        for _ in 0..4 {
            for stripe in 0..4 {
                rb.note(stripe, 1_000, &placement);
            }
            rb.record_routed(&mut placement, &mut out);
        }
        assert!(rb.stats.stripes_migrated >= 1);
        assert!(
            (0..4).filter(|&s| placement.stripe_device(s) == 0).count() >= 3,
            "the weighted rebalancer must stack load on the big device"
        );
    }
}
