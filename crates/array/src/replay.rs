//! Parallel striped replay: one trace, N devices, N scoped threads.

use std::fmt;

use sprinkler_core::SchedulerKind;
use sprinkler_flash::Lpn;
use sprinkler_ssd::request::{Direction, HostRequest};
use sprinkler_ssd::{RunMetrics, Ssd};
use sprinkler_workloads::{TraceRecord, TraceSource};

use crate::config::ArrayConfig;
use crate::metrics::ArrayMetrics;
use crate::placement::Rebalancer;
use crate::splitter::{DeviceSource, StripedFanout};

/// Why an array replay could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// The array configuration failed validation.
    InvalidConfig(String),
    /// The source's declared footprint exceeds the array's usable logical
    /// capacity (whole stripes per device), so some fragment would address
    /// pages past a device's capacity.
    FootprintExceedsCapacity {
        /// The source's declared footprint bound in bytes.
        footprint_bytes: u64,
        /// The array's usable logical capacity in bytes.
        capacity_bytes: u64,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::InvalidConfig(message) => write!(f, "invalid array config: {message}"),
            ArrayError::FootprintExceedsCapacity {
                footprint_bytes,
                capacity_bytes,
            } => write!(
                f,
                "trace footprint of {footprint_bytes} bytes exceeds the array's usable logical \
                 capacity of {capacity_bytes} bytes"
            ),
        }
    }
}

impl std::error::Error for ArrayError {}

/// Converts one device-local trace record into a host request (the same
/// page-rounding the single-device replay boundary applies).
fn record_to_request(record: &TraceRecord, page_size: usize) -> HostRequest {
    let (lpn, pages) = record.pages(page_size);
    HostRequest::new(
        record.id,
        record.arrival,
        if record.op.is_read() {
            Direction::Read
        } else {
            Direction::Write
        },
        Lpn::new(lpn),
        pages,
    )
}

/// Adapts a device sub-source into the request stream `Ssd::run_stream`
/// consumes, pulling lazily so each device replays under its own bounded
/// admission.
struct DeviceRequestStream<'f, 'a> {
    source: DeviceSource<'f, 'a>,
    page_size: usize,
}

impl Iterator for DeviceRequestStream<'_, '_> {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        self.source
            .next_record()
            .map(|record| record_to_request(&record, self.page_size))
    }
}

/// Replays one trace source across a striped array: the source is split into
/// per-device sub-sources by the array's [`StripeMap`](crate::StripeMap), each
/// device replays its share through [`Ssd::run_stream`]'s bounded-admission
/// loop on its own scoped thread, and the per-device [`RunMetrics`] are merged
/// into an [`ArrayMetrics`].
///
/// The replay is the array's capacity boundary: the source's declared
/// footprint must fit the array's usable logical capacity
/// ([`ArrayConfig::logical_capacity_bytes`]), which guarantees every fragment
/// maps within its device — records are rejected up front rather than aliased.
///
/// # Errors
///
/// [`ArrayError::InvalidConfig`] when the configuration fails validation;
/// [`ArrayError::FootprintExceedsCapacity`] when the trace does not fit.
pub fn run_array(
    config: &ArrayConfig,
    kind: SchedulerKind,
    source: &mut (dyn TraceSource + Send),
) -> Result<ArrayMetrics, ArrayError> {
    config.validate().map_err(ArrayError::InvalidConfig)?;
    let footprint = source.footprint_bytes();
    let capacity = config.logical_capacity_bytes();
    if footprint > capacity {
        return Err(ArrayError::FootprintExceedsCapacity {
            footprint_bytes: footprint,
            capacity_bytes: capacity,
        });
    }

    // Bound the fanout buffers: a few device-queue-depths of slack per device
    // absorbs replay-position skew, while a device whose striped share ends
    // early (it still consumes the rest of the trace) waits for its siblings
    // instead of buffering the remainder — replay memory stays O(cap), not
    // O(trace length).
    let max_queue_depth = config
        .devices
        .iter()
        .map(|d| d.queue_depth)
        .max()
        .unwrap_or(0);
    let buffer_cap = (config.width() * max_queue_depth * 4).max(256);
    // Static striping unless a rebalance tuning is set; with it, the fanout
    // routes through the remappable placement table, tracks heat, and applies
    // (and charges) hot-stripe migrations at window boundaries — all inside
    // the fanout lock, in trace order, so metrics stay deterministic.
    let fanout = match &config.rebalance {
        None => StripedFanout::new(source, config.stripe_map()),
        Some(rebalance) => {
            let placement = config.placement_map(footprint);
            let total_stripes = placement.total_stripes();
            let rebalancer = Rebalancer::new(*rebalance, config.device_weights(), total_stripes);
            StripedFanout::adaptive(source, placement, rebalancer)
        }
    }
    .with_buffer_cap(buffer_cap);
    let devices = config.width();
    // One scoped worker per device (the validated width is small): every
    // sub-source must drain concurrently, otherwise a parked device's
    // fragments would accumulate in the fanout for the whole replay.
    let mut results: Vec<Result<RunMetrics, String>> = Vec::with_capacity(devices);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..devices)
            .map(|device| {
                let fanout = &fanout;
                scope.spawn(move || {
                    let device_config = config.device(device).clone();
                    let page_size = device_config.page_size();
                    let ssd = Ssd::new(device_config, kind.build())?;
                    Ok(ssd.run_stream(DeviceRequestStream {
                        source: fanout.device_source(device),
                        page_size,
                    }))
                })
            })
            .collect();
        for handle in handles {
            // A panicked device thread re-raises its original panic here; a
            // config that fails to build (should be impossible after
            // `config.validate()` above) surfaces as an ArrayError instead of
            // a panic.
            results.push(
                handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
            );
        }
    });
    let metrics = results
        .into_iter()
        .collect::<Result<Vec<RunMetrics>, String>>()
        .map_err(ArrayError::InvalidConfig)?;
    let peak = fanout.peak_buffered() as u64;
    let placement_stats = fanout.placement_stats();
    Ok(ArrayMetrics::merge_with(
        config.stripe_bytes,
        metrics,
        peak,
        placement_stats,
        &config.device_weights(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_ssd::SsdConfig;
    use sprinkler_workloads::SyntheticSpec;

    fn quick_config(devices: usize) -> ArrayConfig {
        ArrayConfig::new(SsdConfig::paper_default().with_blocks_per_plane(16))
            .with_devices(devices)
            .with_stripe_kb(256)
    }

    #[test]
    fn replay_completes_every_byte_across_widths() {
        let spec = SyntheticSpec::new("array").with_footprint_mb(64);
        let trace = spec.generate(200, 0xA1);
        // The device counts page-granular bytes; because stripe boundaries are
        // page-aligned, the page-rounded total is invariant across widths.
        let mut width1_bytes = None;
        for devices in [1, 2, 4] {
            let metrics = run_array(
                &quick_config(devices),
                SchedulerKind::Spk3,
                &mut trace.source(),
            )
            .unwrap();
            assert_eq!(metrics.device_count, devices);
            assert_eq!(metrics.devices.len(), devices);
            let bytes = metrics.bytes_read + metrics.bytes_written;
            assert_eq!(
                bytes,
                *width1_bytes.get_or_insert(bytes),
                "striping must preserve page-rounded byte totals at width {devices}"
            );
            assert!(metrics.io_count >= 200, "fragments can only add requests");
            assert!(metrics.bandwidth_kb_per_sec > 0.0);
            assert!(metrics.elapsed_ns > 0);
        }
    }

    /// Regression: a device whose striped share ends early must not balloon
    /// the fanout buffers with the rest of the trace.  Device 0 owns only the
    /// first record; everything else lands on device 1.  Without the buffer
    /// cap, device 0's replay thread would pump all remaining records into
    /// device 1's queue at once (peak ≈ trace length); with it, the pumping
    /// device waits for device 1 to drain, so the high-water mark stays at
    /// the cap plus at most one record's fragments.
    #[test]
    fn early_exhausted_shares_stay_memory_bounded() {
        use sprinkler_sim::SimTime;
        use sprinkler_workloads::{Trace, TraceOp, TraceRecord};
        let config = quick_config(2); // 256 KB stripes → stripe 0 = device 0
        let total = 4_000u64;
        let records: Vec<TraceRecord> = (0..total)
            .map(|id| TraceRecord {
                id,
                arrival: SimTime::from_micros(id),
                op: TraceOp::Read,
                // Record 0 on device 0's first stripe; the rest cycle through
                // device 1's stripes (odd global stripes) only.
                offset: if id == 0 {
                    0
                } else {
                    (1 + 2 * (id % 128)) * 256 * 1024
                },
                bytes: 4096,
            })
            .collect();
        let trace = Trace::new("skewed", records);
        let metrics = run_array(&config, SchedulerKind::Vas, &mut trace.source()).unwrap();
        assert_eq!(metrics.io_count, total);
        let cap = (2 * config.device(0).queue_depth * 4).max(256) as u64;
        assert!(
            metrics.peak_fanout_buffered <= cap + 4,
            "fanout buffered {} fragments; cap is {cap} — early-exhausted \
             shares must back-pressure, not buffer the trace",
            metrics.peak_fanout_buffered
        );
    }

    #[test]
    fn oversized_footprints_are_rejected_up_front() {
        let config = quick_config(2);
        let capacity = config.logical_capacity_bytes();
        let spec = SyntheticSpec::new("big").with_footprint_mb(capacity / (1024 * 1024) + 1);
        let error = run_array(&config, SchedulerKind::Vas, &mut spec.stream(10, 1))
            .expect_err("oversized trace must be rejected");
        match error {
            ArrayError::FootprintExceedsCapacity { capacity_bytes, .. } => {
                assert_eq!(capacity_bytes, capacity);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(error.to_string().contains("capacity"));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = quick_config(2);
        config.stripe_bytes = 3; // not a page multiple
        let spec = SyntheticSpec::new("cfg").with_footprint_mb(1);
        assert!(matches!(
            run_array(&config, SchedulerKind::Vas, &mut spec.stream(5, 2)),
            Err(ArrayError::InvalidConfig(_))
        ));
    }
}
