//! Splitting one [`TraceSource`] into per-device sub-sources.
//!
//! [`StripedFanout`] wraps a single time-ordered trace source and exposes one
//! [`DeviceSource`] per device.  Each pull on a device source first drains that
//! device's buffered fragments; when empty, it pulls the shared underlying
//! source, splits the record at stripe boundaries via the [`StripeMap`] (or,
//! for an [adaptive](StripedFanout::adaptive) fanout, the current
//! [`PlacementMap`]), and routes the fragments to their devices' buffers.
//! Because every fragment of a record carries the record's arrival time and
//! the underlying source yields nondecreasing arrivals, every per-device
//! sub-stream is itself a valid [`TraceSource`]: nondecreasing arrivals,
//! fragments within the device's local footprint bound.
//!
//! The **adaptive** fanout additionally feeds every routed stripe's bytes into
//! a [`Rebalancer`]'s heat EWMA and, at window boundaries, applies the
//! migrations it selects: the placement table is remapped and the copy cost is
//! charged as injected traffic — a stripe-sized read on the source device and
//! a stripe-sized write on the target, stamped with the latest routed arrival
//! so sub-stream arrivals stay nondecreasing.  All of it happens inside
//! `pump`, under the fanout mutex, in trace order — so routing and migration
//! decisions are deterministic regardless of which device thread happens to
//! pump, and replay metrics stay exactly reproducible.
//!
//! The buffers hold only the skew between device replay positions: a fragment
//! routed to device B while device A is pulling stays buffered until B's
//! bounded-admission loop gets to it.  With a buffer cap
//! ([`StripedFanout::with_buffer_cap`], which the array replay always sets), a
//! device that would pump past the cap *waits* for the other devices to drain
//! instead — so even a device whose striped share ends early (it must consume
//! the rest of the trace to learn that) cannot balloon the buffers beyond the
//! cap, preserving the workspace's O(outstanding work) streaming-memory
//! guarantee.  The cap requires every sub-source to drain concurrently (as
//! `run_array` does); an uncapped fanout — the default — also supports
//! sequential draining, buffering whatever skew that creates.
//! [`StripedFanout::peak_buffered`] reports the high-water mark so
//! imbalance-driven buffering is observable either way.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use sprinkler_sim::SimTime;
use sprinkler_workloads::{TraceOp, TraceRecord, TraceSource};

use crate::placement::{Migration, PlacementMap, PlacementStats, Rebalancer};
use crate::stripe::{Fragment, StripeMap};

/// The adaptive-placement state, owned by the fanout's mutex so heat
/// accounting, migration selection, and traffic injection all happen in trace
/// order.
struct AdaptiveState {
    placement: PlacementMap,
    rebalancer: Rebalancer,
    /// Reusable scratch for each window's selected migrations.
    migrations: Vec<Migration>,
    /// Arrival stamp for injected migration traffic: the latest routed
    /// record's arrival, preserving per-device arrival monotonicity.
    last_arrival: SimTime,
}

struct FanoutInner<'a> {
    source: &'a mut (dyn TraceSource + Send),
    queues: Vec<VecDeque<TraceRecord>>,
    /// Next per-device fragment id; each sub-stream renumbers its fragments
    /// 0, 1, 2, … so device replays see dense, monotonic request ids.
    next_ids: Vec<u64>,
    buffered: usize,
    peak_buffered: usize,
    exhausted: bool,
    /// Reusable fragment scratch for record splitting (one split per record
    /// on the streaming hot path — no per-record allocation).
    scratch: Vec<Fragment>,
    /// `Some` on adaptive fanouts; `None` keeps routing byte-identical to the
    /// closed-form striping.
    adaptive: Option<AdaptiveState>,
}

impl FanoutInner<'_> {
    /// Pulls one record from the underlying source and routes its fragments;
    /// on adaptive fanouts also feeds the heat tracker and, at window
    /// boundaries, applies migrations and injects their copy traffic.
    /// Returns `false` when the source is exhausted.
    fn pump(&mut self, map: &StripeMap) -> bool {
        let Some(record) = self.source.next_record() else {
            return false;
        };
        let FanoutInner {
            queues,
            next_ids,
            buffered,
            peak_buffered,
            scratch,
            adaptive,
            ..
        } = self;
        match adaptive {
            None => map.split_into(&record, scratch),
            Some(state) => {
                // Heat first: walk the record's stripes and charge each with
                // its share of the bytes, against the *current* placement.
                let stripe_bytes = state.placement.stripe_bytes();
                let mut offset = record.offset;
                let mut remaining = record.bytes.max(1);
                while remaining > 0 {
                    let take = (stripe_bytes - offset % stripe_bytes).min(remaining);
                    state
                        .rebalancer
                        .note(offset / stripe_bytes, take, &state.placement);
                    offset += take;
                    remaining -= take;
                }
                state.placement.split_into(&record, scratch);
                state.last_arrival = record.arrival;
            }
        }
        for fragment in scratch.iter() {
            let id = next_ids[fragment.device];
            next_ids[fragment.device] += 1;
            queues[fragment.device].push_back(TraceRecord {
                id,
                arrival: record.arrival,
                op: record.op,
                offset: fragment.offset,
                bytes: fragment.bytes,
            });
            *buffered += 1;
        }
        if let Some(state) = adaptive {
            let AdaptiveState {
                placement,
                rebalancer,
                migrations,
                last_arrival,
            } = state;
            rebalancer.record_routed(placement, migrations);
            let stripe_bytes = placement.stripe_bytes();
            for migration in migrations.iter() {
                // Charge the copy: a stripe-sized read where the stripe was,
                // a stripe-sized write where it now lives.
                for (device, slot, op) in [
                    (migration.from_device, migration.from_slot, TraceOp::Read),
                    (migration.to_device, migration.to_slot, TraceOp::Write),
                ] {
                    let id = next_ids[device];
                    next_ids[device] += 1;
                    queues[device].push_back(TraceRecord {
                        id,
                        arrival: *last_arrival,
                        op,
                        offset: slot * stripe_bytes,
                        bytes: stripe_bytes,
                    });
                    *buffered += 1;
                }
            }
        }
        *peak_buffered = (*peak_buffered).max(*buffered);
        true
    }
}

/// Splits one trace source into `devices` striped sub-sources (see the module
/// docs).  Shareable across the device replay threads by reference.
pub struct StripedFanout<'a> {
    map: StripeMap,
    names: Vec<String>,
    footprints: Vec<u64>,
    /// Fragments buffered across all queues before a pumping device must wait
    /// for consumers instead; `usize::MAX` (the default) disables waiting.
    buffer_cap: usize,
    inner: Mutex<FanoutInner<'a>>,
    /// Signalled whenever a fragment is consumed, the source is exhausted, or
    /// a pump delivers fragments — wakes devices parked on the cap.
    drained: Condvar,
}

impl std::fmt::Debug for StripedFanout<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedFanout")
            .field("map", &self.map)
            .field("names", &self.names)
            .finish_non_exhaustive()
    }
}

impl<'a> StripedFanout<'a> {
    /// Wraps `source`, dealing its records across `map.devices()` sub-sources
    /// with static round-robin placement.
    pub fn new(source: &'a mut (dyn TraceSource + Send), map: StripeMap) -> Self {
        let devices = map.devices();
        let name = source.name().to_string();
        let footprint = source.footprint_bytes();
        let footprints = (0..devices)
            .map(|d| map.local_footprint(footprint, d))
            .collect();
        Self::build(source, map, footprints, name, None)
    }

    /// Wraps `source` with **adaptive** placement: records route through
    /// `placement` (which must start covering the source's footprint), heat
    /// feeds `rebalancer`, and selected migrations remap the table and inject
    /// their copy traffic.
    ///
    /// Each device's declared footprint covers every slot a migration could
    /// ever land in: the initial frontier plus the rebalancer's total
    /// migration budget, clamped to the device's slot capacity — migrations
    /// allocate lowest-free-slot, so the frontier grows by at most one slot
    /// per migration.
    pub fn adaptive(
        source: &'a mut (dyn TraceSource + Send),
        placement: PlacementMap,
        rebalancer: Rebalancer,
    ) -> Self {
        let devices = placement.devices();
        let map = StripeMap::new(devices, placement.stripe_bytes());
        let name = source.name().to_string();
        let budget = rebalancer.config().max_total_migrations;
        let footprints = (0..devices)
            .map(|d| {
                placement
                    .frontier_slots(d)
                    .saturating_add(budget)
                    .min(placement.slot_cap(d))
                    * placement.stripe_bytes()
            })
            .collect();
        let adaptive = AdaptiveState {
            placement,
            rebalancer,
            migrations: Vec::new(),
            last_arrival: SimTime::ZERO,
        };
        Self::build(source, map, footprints, name, Some(adaptive))
    }

    fn build(
        source: &'a mut (dyn TraceSource + Send),
        map: StripeMap,
        footprints: Vec<u64>,
        name: String,
        adaptive: Option<AdaptiveState>,
    ) -> Self {
        let devices = map.devices();
        StripedFanout {
            names: (0..devices)
                .map(|d| format!("{name}[{d}/{devices}]"))
                .collect(),
            footprints,
            buffer_cap: usize::MAX,
            inner: Mutex::new(FanoutInner {
                source,
                queues: vec![VecDeque::new(); devices],
                next_ids: vec![0; devices],
                buffered: 0,
                peak_buffered: 0,
                exhausted: false,
                scratch: Vec::with_capacity(4),
                adaptive,
            }),
            drained: Condvar::new(),
            map,
        }
    }

    /// Bounds the total fragments buffered across all device queues: a device
    /// pulling past the cap waits for the others to drain instead of pumping
    /// further, keeping replay memory O(cap) even when one device's striped
    /// share ends long before the trace does.  **Requires concurrent
    /// draining** — with a cap set, a sub-source pulled while no other thread
    /// drains the siblings stalls once the cap is hit (the array replay always
    /// drains all devices concurrently).
    pub fn with_buffer_cap(mut self, cap: usize) -> Self {
        self.buffer_cap = cap.max(1);
        self
    }

    /// Locks the shared fanout state, recovering from poison: the queue
    /// bookkeeping stays structurally valid if a device thread panicked
    /// mid-replay, and the panic itself is re-raised when the replay joins
    /// that thread — propagating it here would only mask the original.
    fn state(&self) -> std::sync::MutexGuard<'_, FanoutInner<'a>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The static striping geometry (devices and stripe size).  On adaptive
    /// fanouts this is the *initial* layout only; see
    /// [`StripedFanout::placement`] for the live table.
    pub fn map(&self) -> &StripeMap {
        &self.map
    }

    /// A snapshot of the current placement table on adaptive fanouts, `None`
    /// on static ones.
    pub fn placement(&self) -> Option<PlacementMap> {
        self.state()
            .adaptive
            .as_ref()
            .map(|state| state.placement.clone())
    }

    /// The placement layer's counters so far: zero on static fanouts.
    pub fn placement_stats(&self) -> PlacementStats {
        self.state()
            .adaptive
            .as_ref()
            .map(|state| state.rebalancer.stats)
            .unwrap_or_default()
    }

    /// The sub-source for one device.  Multiple device sources may pull
    /// concurrently from different threads.
    pub fn device_source(&self, device: usize) -> DeviceSource<'_, 'a> {
        assert!(device < self.map.devices(), "device index out of range");
        DeviceSource {
            fanout: self,
            device,
        }
    }

    /// High-water mark of fragments buffered across all devices — the memory
    /// cost of replay-position skew between devices.
    pub fn peak_buffered(&self) -> usize {
        self.state().peak_buffered
    }
}

/// The [`TraceSource`] view of one device's share of a striped trace.
#[derive(Debug)]
pub struct DeviceSource<'f, 'a> {
    fanout: &'f StripedFanout<'a>,
    device: usize,
}

impl TraceSource for DeviceSource<'_, '_> {
    fn name(&self) -> &str {
        &self.fanout.names[self.device]
    }

    fn footprint_bytes(&self) -> u64 {
        self.fanout.footprints[self.device]
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        let mut inner = self.fanout.state();
        loop {
            if let Some(record) = inner.queues[self.device].pop_front() {
                inner.buffered -= 1;
                // A device parked on the cap can pump again.
                self.fanout.drained.notify_all();
                return Some(record);
            }
            if inner.exhausted {
                return None;
            }
            if inner.buffered >= self.fanout.buffer_cap {
                // Back-pressure: wait (releasing the lock) for consumers to
                // drain before pumping more of the trace into their queues.
                // The timeout is liveness insurance against a missed wakeup;
                // the loop re-checks every condition on wake.
                let (guard, _) = self
                    .fanout
                    .drained
                    .wait_timeout(inner, std::time::Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                inner = guard;
                continue;
            }
            if !inner.pump(&self.fanout.map) {
                inner.exhausted = true;
                // Wake parked devices so they observe exhaustion and finish.
                self.fanout.drained.notify_all();
                return None;
            }
            // The pump may have delivered fragments to a parked device.
            self.fanout.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::RebalanceConfig;
    use sprinkler_sim::SimTime;
    use sprinkler_workloads::{SyntheticSpec, Trace, TraceOp};

    fn rec(id: u64, at_us: u64, offset: u64, bytes: u64) -> TraceRecord {
        TraceRecord {
            id,
            arrival: SimTime::from_micros(at_us),
            op: TraceOp::Write,
            offset,
            bytes,
        }
    }

    #[test]
    fn fanout_routes_and_renumbers_fragments() {
        // 2 devices, 1000-byte stripes: offsets [0,1000) → dev 0,
        // [1000,2000) → dev 1, [2000,3000) → dev 0, ...
        let trace = Trace::new(
            "t",
            vec![
                rec(0, 0, 0, 500),     // dev 0
                rec(1, 5, 1500, 400),  // dev 1
                rec(2, 9, 2500, 1000), // straddle: dev 0 [500) + dev 1 [500)
            ],
        );
        let mut source = trace.source();
        let fanout = StripedFanout::new(&mut source, StripeMap::new(2, 1000));
        let mut dev0 = fanout.device_source(0);
        let mut dev1 = fanout.device_source(1);

        let a = dev0.next_record().unwrap();
        assert_eq!((a.id, a.offset, a.bytes), (0, 0, 500));
        // dev0's second fragment comes from record 2's head.
        let b = dev0.next_record().unwrap();
        assert_eq!((b.id, b.offset, b.bytes), (1, 1500, 500));
        assert!(dev0.next_record().is_none());

        // dev1 sees record 1 (global 1500 → local stripe 0, offset 500) and
        // record 2's tail (global 3000 → local stripe 1), renumbered 0 and 1.
        let c = dev1.next_record().unwrap();
        assert_eq!((c.id, c.offset, c.bytes), (0, 500, 400));
        let d = dev1.next_record().unwrap();
        assert_eq!((d.id, d.offset, d.bytes), (1, 1000, 500));
        assert!(dev1.next_record().is_none());
        assert!(fanout.peak_buffered() >= 1);
    }

    #[test]
    fn sub_streams_keep_nondecreasing_arrivals_and_footprints() {
        let spec = SyntheticSpec::new("fan").with_footprint_mb(8);
        let mut source = spec.stream(400, 0xFA);
        let map = StripeMap::new(3, 64 * 1024);
        let fanout = StripedFanout::new(&mut source, map);
        for device in 0..3 {
            let mut sub = fanout.device_source(device);
            let bound = sub.footprint_bytes();
            let mut last = SimTime::ZERO;
            let mut next_id = 0;
            while let Some(record) = sub.next_record() {
                assert!(record.arrival >= last, "arrivals must be nondecreasing");
                assert!(record.offset + record.bytes <= bound, "fragment spills");
                assert_eq!(record.id, next_id, "ids must be dense");
                last = record.arrival;
                next_id += 1;
            }
        }
    }

    #[test]
    fn byte_totals_are_preserved_across_the_fanout() {
        let spec = SyntheticSpec::new("sum").with_footprint_mb(16);
        let trace = spec.generate(300, 7);
        let total: u64 = trace.iter().map(|r| r.bytes).sum();
        let mut source = trace.source();
        let fanout = StripedFanout::new(&mut source, StripeMap::new(4, 128 * 1024));
        let mut split_total = 0;
        for device in 0..4 {
            let mut sub = fanout.device_source(device);
            while let Some(record) = sub.next_record() {
                split_total += record.bytes;
            }
        }
        assert_eq!(split_total, total);
    }

    #[test]
    fn adaptive_fanout_with_no_migrations_matches_the_static_routing() {
        let spec = SyntheticSpec::new("same").with_footprint_mb(8);
        let stripe = 64 * 1024u64;
        let total_stripes = (8u64 << 20).div_ceil(stripe);
        let collect = |adaptive: bool| {
            let mut source = spec.stream(300, 0x11);
            let fanout = if adaptive {
                // A trigger the workload never reaches: placement stays put.
                let config = RebalanceConfig {
                    trigger_ratio: 1e18,
                    ..RebalanceConfig::default()
                };
                StripedFanout::adaptive(
                    &mut source,
                    PlacementMap::round_robin(3, stripe, total_stripes, vec![u64::MAX; 3]),
                    Rebalancer::new(config, vec![1.0; 3], total_stripes),
                )
            } else {
                StripedFanout::new(&mut source, StripeMap::new(3, stripe))
            };
            let mut all = Vec::new();
            for device in 0..3 {
                let mut sub = fanout.device_source(device);
                let mut records = Vec::new();
                while let Some(record) = sub.next_record() {
                    records.push(record);
                }
                all.push(records);
            }
            all
        };
        assert_eq!(collect(false), collect(true));
    }

    #[test]
    fn adaptive_fanout_injects_migration_traffic_and_stays_sorted() {
        // Hammer stripes 0 and 2 — both on device 0 of a 2-wide array — so
        // the rebalancer must move one and charge the copy.
        let stripe = 1000u64;
        let records: Vec<TraceRecord> = (0..40)
            .map(|i| rec(i, i, if i % 2 == 0 { 0 } else { 2000 }, 1000))
            .collect();
        let trace = Trace::new("hot", records);
        let mut source = trace.source();
        let config = RebalanceConfig {
            window_records: 8,
            trigger_ratio: 1.1,
            ..RebalanceConfig::default()
        };
        let fanout = StripedFanout::adaptive(
            &mut source,
            PlacementMap::round_robin(2, stripe, 4, vec![u64::MAX; 2]),
            Rebalancer::new(config, vec![1.0; 2], 4),
        );
        let mut totals = [0u64; 2];
        let mut reads = 0u64;
        for (device, total) in totals.iter_mut().enumerate() {
            let mut sub = fanout.device_source(device);
            let bound = sub.footprint_bytes();
            let mut last = SimTime::ZERO;
            let mut next_id = 0;
            while let Some(record) = sub.next_record() {
                assert!(record.arrival >= last, "arrivals must stay nondecreasing");
                assert!(record.offset + record.bytes <= bound, "fragment spills");
                assert_eq!(record.id, next_id, "ids must stay dense");
                *total += record.bytes;
                reads += u64::from(record.op == TraceOp::Read);
                last = record.arrival;
                next_id += 1;
            }
        }
        let stats = fanout.placement_stats();
        assert!(stats.stripes_migrated >= 1, "the hot stripe must move");
        assert_eq!(stats.migration_bytes, stats.stripes_migrated * stripe);
        assert!(stats.heat_decays >= 1);
        assert!(
            reads >= stats.stripes_migrated,
            "each migration reads source"
        );
        // Routed payload (40 KB) plus 2 stripe copies per migration.
        assert_eq!(
            totals[0] + totals[1],
            40_000 + 2 * stats.migration_bytes,
            "copy traffic must be charged on both ends"
        );
        // And the placement genuinely changed: stripes 0 and 2 now differ.
        let placement = fanout.placement().unwrap();
        assert_ne!(placement.stripe_device(0), placement.stripe_device(2));
    }
}
