//! The deterministic striping map: chunked round-robin over a configurable
//! stripe size.
//!
//! The array presents one logical byte address space; [`StripeMap`] carves it
//! into fixed-size stripes and deals them round-robin across the devices, like
//! RAID-0.  Global stripe `s` lives on device `s % n` at local stripe `s / n`,
//! which makes the byte map — and, when the stripe size is a multiple of the
//! flash page size, the LPN map — a bijection between the global address space
//! and the disjoint union of the devices' local address spaces.

use serde::{Deserialize, Serialize};
use sprinkler_workloads::TraceRecord;

/// One piece of a split trace record: a contiguous local byte range on one
/// device.  Fragments of a record that land locally contiguous on the same
/// device (every *middle* stripe a device owns within a straddling record is
/// locally adjacent to its previous one) are coalesced into a single fragment,
/// so a 1-device array reproduces the original record exactly and a large
/// request becomes at most a handful of per-device requests, not one per
/// stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fragment {
    /// The device the fragment lands on.
    pub device: usize,
    /// Byte offset in the device's *local* address space.
    pub offset: u64,
    /// Fragment length in bytes (≥ 1).
    pub bytes: u64,
}

/// Chunked round-robin striping of a global byte address space over `devices`
/// devices.
///
/// # Example
///
/// ```
/// use sprinkler_array::StripeMap;
///
/// let map = StripeMap::new(4, 1024 * 1024);
/// let (device, local) = map.locate(5 * 1024 * 1024 + 17);
/// assert_eq!(device, 1); // stripe 5 → device 5 % 4
/// assert_eq!(local, 1024 * 1024 + 17); // local stripe 5 / 4 = 1
/// assert_eq!(map.to_global(device, local), 5 * 1024 * 1024 + 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeMap {
    devices: usize,
    stripe_bytes: u64,
}

impl StripeMap {
    /// Creates a map dealing `stripe_bytes`-sized stripes over `devices`
    /// devices.
    ///
    /// # Panics
    ///
    /// Panics when `devices` or `stripe_bytes` is zero.
    pub fn new(devices: usize, stripe_bytes: u64) -> Self {
        assert!(devices >= 1, "an array needs at least one device");
        assert!(stripe_bytes >= 1, "stripes must be at least one byte");
        StripeMap {
            devices,
            stripe_bytes,
        }
    }

    /// Number of devices stripes are dealt across.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// The stripe size in bytes.
    pub fn stripe_bytes(&self) -> u64 {
        self.stripe_bytes
    }

    /// Maps a global byte offset to `(device, local byte offset)`.
    pub fn locate(&self, global_offset: u64) -> (usize, u64) {
        let stripe = global_offset / self.stripe_bytes;
        let device = (stripe % self.devices as u64) as usize;
        let local =
            (stripe / self.devices as u64) * self.stripe_bytes + global_offset % self.stripe_bytes;
        (device, local)
    }

    /// Inverse of [`StripeMap::locate`]: maps a device-local byte offset back
    /// to the global byte offset.
    pub fn to_global(&self, device: usize, local_offset: u64) -> u64 {
        debug_assert!(device < self.devices);
        let local_stripe = local_offset / self.stripe_bytes;
        let global_stripe = local_stripe * self.devices as u64 + device as u64;
        global_stripe * self.stripe_bytes + local_offset % self.stripe_bytes
    }

    /// Maps a global logical page number to `(device, local LPN)`.  Exact —
    /// pages never straddle devices — when the stripe size is a multiple of
    /// `page_size` (enforced by `ArrayConfig::validate`).
    pub fn locate_lpn(&self, lpn: u64, page_size: u64) -> (usize, u64) {
        debug_assert!(self.stripe_bytes.is_multiple_of(page_size));
        let (device, local) = self.locate(lpn * page_size);
        (device, local / page_size)
    }

    /// Inverse of [`StripeMap::locate_lpn`].
    pub fn lpn_to_global(&self, device: usize, local_lpn: u64, page_size: u64) -> u64 {
        self.to_global(device, local_lpn * page_size) / page_size
    }

    /// The exclusive upper bound on *local* byte extents device `device` can
    /// see from a source whose global footprint bound is `global_footprint`:
    /// the image of `[0, global_footprint)` on that device.
    pub fn local_footprint(&self, global_footprint: u64, device: usize) -> u64 {
        debug_assert!(device < self.devices);
        if global_footprint == 0 {
            return 0;
        }
        let n = self.devices as u64;
        let d = device as u64;
        let full = global_footprint / self.stripe_bytes;
        let tail = global_footprint % self.stripe_bytes;
        let total_stripes = full + u64::from(tail > 0);
        // Stripes owned by `device`: indices d, d+n, d+2n, ... below total.
        if total_stripes <= d {
            return 0;
        }
        let owned = (total_stripes - d - 1) / n + 1;
        let last_owned = d + (owned - 1) * n;
        let last_len = if last_owned == total_stripes - 1 && tail > 0 {
            tail
        } else {
            self.stripe_bytes
        };
        (owned - 1) * self.stripe_bytes + last_len
    }

    /// Splits one trace record at stripe boundaries into per-device fragments,
    /// in global address order, coalescing locally contiguous pieces.  The
    /// fragment byte lengths always sum to the record's length.
    ///
    /// Thin allocating wrapper over [`StripeMap::split_into`]; the streaming
    /// fanout reuses a scratch vector instead.
    pub fn split(&self, record: &TraceRecord) -> Vec<Fragment> {
        let mut fragments: Vec<Fragment> = Vec::with_capacity(2);
        self.split_into(record, &mut fragments);
        fragments
    }

    /// Allocation-free form of [`StripeMap::split`]: clears `out` and fills it
    /// with the record's fragments, reusing the vector's capacity.  This is
    /// the hot-path entry point — one split per streamed trace record.
    pub fn split_into(&self, record: &TraceRecord, out: &mut Vec<Fragment>) {
        out.clear();
        let mut offset = record.offset;
        let mut remaining = record.bytes.max(1);
        while remaining > 0 {
            let within = offset % self.stripe_bytes;
            let take = (self.stripe_bytes - within).min(remaining);
            let (device, local) = self.locate(offset);
            // Coalesce with the device's most recent fragment when locally
            // contiguous.  After coalescing the vec holds at most one entry
            // per device, so the backward scan is short.
            match out.iter().rposition(|f| f.device == device) {
                Some(i) if out[i].offset + out[i].bytes == local => {
                    out[i].bytes += take;
                }
                _ => out.push(Fragment {
                    device,
                    offset: local,
                    bytes: take,
                }),
            }
            offset += take;
            remaining -= take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_sim::SimTime;
    use sprinkler_workloads::TraceOp;

    fn rec(offset: u64, bytes: u64) -> TraceRecord {
        TraceRecord {
            id: 0,
            arrival: SimTime::ZERO,
            op: TraceOp::Read,
            offset,
            bytes,
        }
    }

    #[test]
    fn locate_and_to_global_are_inverse() {
        let map = StripeMap::new(3, 4096);
        for offset in [0, 1, 4095, 4096, 12287, 12288, 999_999] {
            let (device, local) = map.locate(offset);
            assert!(device < 3);
            assert_eq!(map.to_global(device, local), offset);
        }
    }

    #[test]
    fn lpn_map_round_trips_and_respects_stripe_ownership() {
        let map = StripeMap::new(4, 8192); // 4 pages per stripe at 2 KB pages
        for lpn in 0..64 {
            let (device, local) = map.locate_lpn(lpn, 2048);
            assert_eq!(map.lpn_to_global(device, local, 2048), lpn);
            // Page's stripe decides the device.
            assert_eq!(device, ((lpn * 2048) / 8192 % 4) as usize);
        }
    }

    #[test]
    fn single_device_split_is_the_identity() {
        let map = StripeMap::new(1, 4096);
        let record = rec(1000, 20_000); // straddles several stripes
        let fragments = map.split(&record);
        assert_eq!(
            fragments,
            vec![Fragment {
                device: 0,
                offset: 1000,
                bytes: 20_000
            }]
        );
    }

    #[test]
    fn straddling_records_split_loss_free_in_order() {
        let map = StripeMap::new(2, 1000);
        // Bytes [500, 3700): stripe 0 tail (500), stripe 1 (1000), stripe 2
        // (1000), stripe 3 head (700).  Stripes 0 and 2 are device 0 and
        // locally contiguous ([500,1000) then [1000,2000)) → coalesce; stripes
        // 1 and 3 are device 1's local stripes 0 and 1 ([0,1000) then
        // [1000,1700)) → coalesce.
        let fragments = map.split(&rec(500, 3200));
        assert_eq!(fragments.len(), 2);
        assert_eq!(
            fragments[0],
            Fragment {
                device: 0,
                offset: 500,
                bytes: 1500
            }
        );
        assert_eq!(
            fragments[1],
            Fragment {
                device: 1,
                offset: 0,
                bytes: 1700
            }
        );
        let total: u64 = fragments.iter().map(|f| f.bytes).sum();
        assert_eq!(total, 3200);
    }

    #[test]
    fn fragments_map_back_to_the_original_range() {
        let map = StripeMap::new(5, 777);
        let record = rec(123, 10_000);
        let mut covered: Vec<(u64, u64)> = Vec::new();
        for f in map.split(&record) {
            // Walk the fragment stripe by stripe back into global space.
            let mut local = f.offset;
            let mut left = f.bytes;
            while left > 0 {
                let within = local % 777;
                let take = (777 - within).min(left);
                covered.push((map.to_global(f.device, local), take));
                local += take;
                left -= take;
            }
        }
        covered.sort_unstable();
        let mut expect = record.offset;
        for (start, len) in covered {
            assert_eq!(start, expect, "global coverage has a gap or overlap");
            expect = start + len;
        }
        assert_eq!(expect, record.offset + record.bytes);
    }

    #[test]
    fn local_footprint_matches_a_brute_force_image() {
        for devices in [1, 2, 3, 4, 7] {
            let stripe = 64;
            let map = StripeMap::new(devices, stripe);
            for footprint in [0u64, 1, 63, 64, 65, 200, 448, 449, 1000] {
                // Brute force: the max local extent any byte below the
                // footprint reaches, per device.
                let mut expect = vec![0u64; devices];
                for b in 0..footprint {
                    let (d, local) = map.locate(b);
                    expect[d] = expect[d].max(local + 1);
                }
                for (d, &want) in expect.iter().enumerate() {
                    assert_eq!(
                        map.local_footprint(footprint, d),
                        want,
                        "devices={devices} footprint={footprint} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_is_rejected() {
        let _ = StripeMap::new(0, 4096);
    }
}
