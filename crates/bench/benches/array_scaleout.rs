//! Regenerates the array scale-out sweep at bench scale and times a
//! representative striped replay, so regressions in the multi-SSD frontend —
//! the splitter's fan-out cost and the per-device parallel replay — are
//! visible alongside the single-device benches.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::bench_scale;
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::scenario;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let outcome = scenario::run("array-scaleout", &scale).expect("array-scaleout is registered");
    println!("{}", outcome.table().render());

    let mut group = c.benchmark_group("array_scaleout");
    group.sample_size(10);
    for devices in [1usize, 4, 16] {
        group.bench_function(&format!("spk3_n{devices}_256kb"), |b| {
            b.iter(|| scenario::array_scaleout_metrics(&scale, devices, SchedulerKind::Spk3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
