//! Regenerates Fig 1 (performance stagnation and utilization collapse of a
//! conventional controller as the die count grows) and times one sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::fig01;

fn regenerate() {
    let result = fig01::run(&bench_scale());
    println!("{}", result.bandwidth_table());
    println!("{}", result.utilization_table());
    for kb in [4, 16, 64, 128] {
        println!(
            "stagnation at {kb:>4} KB transfers: {}",
            if result.stagnates(kb) { "yes" } else { "no" }
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig01");
    group.sample_size(10);
    group.bench_function("vas_baseline_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Vas))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
