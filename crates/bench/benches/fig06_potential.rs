//! Regenerates Fig 6 (resource utilization and improvement potential) and times a
//! PAS run.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::fig06;

fn regenerate() {
    let result = fig06::run(&bench_scale(), None);
    println!("{}", result.render());
    println!(
        "mean utilization  VAS {:.1}%  PAS {:.1}%  relaxed {:.1}%",
        result.mean_utilization(SchedulerKind::Vas) * 100.0,
        result.mean_utilization(SchedulerKind::Pas) * 100.0,
        result.mean_utilization(SchedulerKind::Spk3) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig06");
    group.sample_size(10);
    group.bench_function("pas_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Pas))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
