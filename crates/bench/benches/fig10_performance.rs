//! Regenerates Fig 10 (bandwidth, IOPS, latency, and queue stall for the five
//! schedulers across the Table 1 workloads) and times an SPK3 run.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::fig10;

fn regenerate() {
    let comparison = fig10::run(&bench_scale(), None);
    println!("{}", comparison.bandwidth_table());
    println!("{}", comparison.iops_table());
    println!("{}", comparison.latency_table());
    println!("{}", comparison.queue_stall_table());
    println!(
        "SPK3 vs VAS: {:.2}x bandwidth (paper: 1.8-2.2x), {:.1}% shorter latency (paper: >=56.6%)",
        comparison.bandwidth_speedup(SchedulerKind::Spk3, SchedulerKind::Vas),
        comparison.latency_reduction(SchedulerKind::Spk3, SchedulerKind::Vas) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("spk3_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Spk3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
