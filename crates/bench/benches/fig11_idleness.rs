//! Regenerates Fig 11 (inter- and intra-chip idleness) and times an SPK2 run.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::{fig10, fig11};

fn regenerate() {
    let comparison = fig10::run(&bench_scale(), None);
    println!("{}", fig11::inter_chip_table(&comparison));
    println!("{}", fig11::intra_chip_table(&comparison));
    println!(
        "SPK3 inter-chip idleness improvement over VAS: {:.1} percentage points (paper: ~46%)",
        fig11::inter_chip_improvement(&comparison, SchedulerKind::Spk3, SchedulerKind::Vas) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("spk2_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Spk2))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
