//! Regenerates Fig 12 (msnfs1 latency time series for VAS, PAS, SPK3) and times a
//! series-recording run.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::fig12;

fn regenerate() {
    // The paper replays the first 3,000 I/Os of msnfs1; the bench uses 600 to stay
    // quick while preserving the ordering.
    let result = fig12::run(&bench_scale(), 600);
    println!("{}", result.render());
    let vas = result.mean_latency(SchedulerKind::Vas);
    let spk3 = result.mean_latency(SchedulerKind::Spk3);
    if vas > 0.0 {
        println!(
            "SPK3 mean latency is {:.1}% below VAS over the window (paper: ~80% below)",
            (1.0 - spk3 / vas) * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("vas_series_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Vas))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
