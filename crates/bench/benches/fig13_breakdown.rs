//! Regenerates Fig 13 (execution-time breakdown for PAS and SPK3) and times a
//! PAS run.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::{fig10, fig13};

fn regenerate() {
    let comparison = fig10::run(&bench_scale(), None);
    println!(
        "{}",
        fig13::breakdown_table(&comparison, SchedulerKind::Pas)
    );
    println!(
        "{}",
        fig13::breakdown_table(&comparison, SchedulerKind::Spk3)
    );
    println!(
        "mean system idle: PAS {:.1}%, SPK3 {:.1}% (paper: SPK3 removes ~40% of PAS idleness)",
        fig13::mean_idle(&comparison, SchedulerKind::Pas) * 100.0,
        fig13::mean_idle(&comparison, SchedulerKind::Spk3) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("pas_breakdown_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Pas))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
