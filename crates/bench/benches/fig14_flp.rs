//! Regenerates Fig 14 (flash-level parallelism breakdown for PAS and the Sprinkler
//! variants) and times an SPK1 run.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::{fig10, fig14};

fn regenerate() {
    let comparison = fig10::run(&bench_scale(), None);
    for kind in fig14::FIG14_SCHEDULERS {
        println!("{}", fig14::flp_table(&comparison, kind));
    }
    println!(
        "mean FLP level: PAS {:.2}, SPK1 {:.2}, SPK2 {:.2}, SPK3 {:.2} (paper: SPK1 highest, SPK3 balanced)",
        fig14::mean_flp_level(&comparison, SchedulerKind::Pas),
        fig14::mean_flp_level(&comparison, SchedulerKind::Spk1),
        fig14::mean_flp_level(&comparison, SchedulerKind::Spk2),
        fig14::mean_flp_level(&comparison, SchedulerKind::Spk3)
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    group.bench_function("spk1_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Spk1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
