//! Regenerates Fig 15 (chip utilization vs transfer size for 64/256/1024 chips)
//! and times one sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::fig15;

fn regenerate() {
    // The bench regenerates the 64- and 256-chip panels; the 1024-chip panel is
    // part of the full-scale run recorded in EXPERIMENTS.md.
    let result = fig15::run(&bench_scale(), Some(&[64, 256]));
    for &chips in &result.chip_counts.clone() {
        println!("{}", result.panel(chips));
        println!(
            "mean utilization at {chips} chips: VAS {:.1}%, SPK3 {:.1}%",
            result.mean_utilization(chips, SchedulerKind::Vas) * 100.0,
            result.mean_utilization(chips, SchedulerKind::Spk3) * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.bench_function("spk3_sweep_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Spk3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
