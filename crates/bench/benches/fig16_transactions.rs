//! Regenerates Fig 16 (flash transaction counts vs transfer size) and times an
//! SPK3 run.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::fig16;

fn regenerate() {
    let result = fig16::run(&bench_scale(), Some(&[64]));
    println!("{}", result.panel(64));
    println!(
        "SPK3 transaction reduction vs VAS: {:.1}% (paper: ~50.2%)",
        result.reduction_vs_vas(64) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.bench_function("spk3_transaction_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Spk3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
