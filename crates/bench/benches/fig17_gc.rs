//! Regenerates Fig 17 (garbage collection and readdressing impact) and times a
//! GC-heavy run.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::{bench_scale, representative_run};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::fig17;

fn regenerate() {
    let result = fig17::run(&bench_scale(), Some(&[64]));
    println!("{}", result.panel(64));
    println!(
        "GC invocations during fragmented runs: {}",
        result.gc_invocations(64)
    );
    println!(
        "mean fragmented bandwidth: VAS {:.0} KB/s, PAS {:.0} KB/s, SPK3 {:.0} KB/s \
         (paper: SPK3-GC still ~2x VAS-GC)",
        result.mean_bandwidth(64, SchedulerKind::Vas, true),
        result.mean_bandwidth(64, SchedulerKind::Pas, true),
        result.mean_bandwidth(64, SchedulerKind::Spk3, true)
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    group.bench_function("spk3_gc_run", |b| {
        b.iter(|| representative_run(SchedulerKind::Spk3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
