//! Times the adaptive placement path end to end — heat tracking on every
//! split, window-boundary rebalancing decisions, and migration traffic
//! injection — against the same workload routed through static striping, so a
//! regression in the indirection layer's overhead is visible as a widening
//! static/adaptive timing gap rather than only as a simulated-metric drift.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::bench_scale;
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::scenario;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let outcome = scenario::run("array-rebalance", &scale).expect("array-rebalance is registered");
    println!("{}", outcome.table().render());

    let mut group = c.benchmark_group("placement_rebalance");
    group.sample_size(10);
    for label in ["static", "adaptive"] {
        group.bench_function(&format!("spk3_{label}_modular_hot"), |b| {
            b.iter(|| scenario::array_rebalance_metrics(&scale, label, SchedulerKind::Spk3))
        });
    }
    group.bench_function("spk3_hetero_adaptive", |b| {
        b.iter(|| scenario::array_hetero_metrics(&scale, "adaptive", SchedulerKind::Spk3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
