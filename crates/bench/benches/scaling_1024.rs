//! Regenerates the many-chip scaling sweep (`fig15_scaling`) at bench scale and
//! times its 1024-chip points, so regressions in full-population simulation
//! cost — the case the index-driven scheduler hot path exists for — are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::bench_scale;
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::fig15_scaling;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let result = fig15_scaling::run(&scale, None, Some(&[32]));
    println!("{}", result.panel(32).render());

    let mut group = c.benchmark_group("scaling_1024");
    group.sample_size(10);
    for kind in [SchedulerKind::Vas, SchedulerKind::Spk3] {
        group.bench_function(&format!("{}_1024chips_32kb", kind.label()), |b| {
            b.iter(|| fig15_scaling::run_point(&scale, 1024, 32, kind))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
