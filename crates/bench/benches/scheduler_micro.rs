//! Microbenchmark of the bare scheduler hot path: one `representative_run` per
//! scheduler kind, so per-scheduler overhead (not just SPK3's) is tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::representative_run;
use sprinkler_core::SchedulerKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_micro");
    group.sample_size(10);
    for kind in SchedulerKind::ALL {
        group.bench_function(kind.label(), |b| b.iter(|| representative_run(kind)));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
