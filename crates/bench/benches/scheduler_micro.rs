//! Microbenchmark of the bare scheduler hot path.
//!
//! Two groups:
//!
//! * `scheduler_micro` — one `representative_run` per scheduler kind, so
//!   per-scheduler end-to-end overhead (not just SPK3's) is tracked;
//! * `scheduler_rounds` — a single `schedule()` round over a standing 32-deep
//!   queue at 256 and 1024 chips, for the optimized SPK3 and its full-scan
//!   reference twin.  This isolates the per-round decision cost the index
//!   refactor targets; the optimized/reference ratio is the figure recorded in
//!   `BENCH_scaling.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sprinkler_bench::representative_run;
use sprinkler_core::reference::ReferenceScheduler;
use sprinkler_core::SchedulerKind;
use sprinkler_flash::{FlashGeometry, Lpn};
use sprinkler_sim::SimTime;
use sprinkler_ssd::queue::DeviceQueue;
use sprinkler_ssd::request::{Direction, HostRequest, Placement, TagId};
use sprinkler_ssd::scheduler::{IoScheduler, SchedulerContext};
use sprinkler_ssd::ChipOccupancy;

/// A standing steady-state scheduling scene: a full 32-deep queue of 256-page
/// tags striped over `chips` chips, with all but the last four pages of every
/// tag already committed — the shape a mid-simulation round sees, where the
/// seed's full-queue scans walk thousands of committed bitmap slots to find a
/// handful of schedulable pages.  Read/write LPN ranges overlap so the §4.4
/// write-after-read checks stay hot.
fn standing_scene(chips: usize) -> (FlashGeometry, DeviceQueue, Vec<ChipOccupancy>) {
    const PAGES: u32 = 256;
    let geometry = FlashGeometry::paper_default().with_chip_count(chips);
    let mut queue = DeviceQueue::new(32);
    for t in 0..32u64 {
        let dir = if t.is_multiple_of(3) {
            Direction::Write
        } else {
            Direction::Read
        };
        let host = HostRequest::new(t, SimTime::ZERO, dir, Lpn::new(t * 8), PAGES);
        let placements = (0..PAGES as usize)
            .map(|i| {
                let chip = (t as usize * 37 + i * 13) % chips;
                let loc = geometry.chip_location(chip);
                Placement {
                    chip,
                    channel: loc.channel,
                    way: loc.way,
                    die: (i % 2) as u32,
                    plane: (i % 4) as u32,
                }
            })
            .collect();
        assert!(queue.admit(TagId(t), host, SimTime::ZERO, placements));
    }
    for t in 0..32u64 {
        for page in 0..PAGES - 4 {
            assert!(queue.commit_page(TagId(t), page, SimTime::ZERO));
        }
    }
    let occupancy = (0..chips)
        .map(|chip| ChipOccupancy {
            chip,
            busy: false,
            outstanding: 0,
        })
        .collect();
    (geometry, queue, occupancy)
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_rounds");
    group.sample_size(10);
    for chips in [256usize, 1024] {
        let (geometry, queue, occupancy) = standing_scene(chips);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue: &queue,
            occupancy: &occupancy,
            max_committed_per_chip: 32,
        };
        for kind in [SchedulerKind::Spk2, SchedulerKind::Spk3] {
            let mut fast = kind.build();
            fast.initialize(&geometry);
            group.bench_function(&format!("{}_{chips}chips", kind.label()), |b| {
                b.iter(|| black_box(fast.schedule(&ctx)).len())
            });
            let mut reference = ReferenceScheduler::new(kind);
            reference.initialize(&geometry);
            group.bench_function(&format!("{}ref_{chips}chips", kind.label()), |b| {
                b.iter(|| black_box(reference.schedule(&ctx)).len())
            });
        }
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_micro");
    group.sample_size(10);
    for kind in SchedulerKind::ALL {
        group.bench_function(kind.label(), |b| b.iter(|| representative_run(kind)));
    }
    group.finish();
}

criterion_group!(benches, bench, bench_rounds);
criterion_main!(benches);
