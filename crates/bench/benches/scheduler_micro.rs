//! Microbenchmark of the bare scheduler hot path.
//!
//! Two groups:
//!
//! * `scheduler_micro` — one `representative_run` per scheduler kind, so
//!   per-scheduler end-to-end overhead (not just SPK3's) is tracked;
//! * `scheduler_rounds` — a single `schedule()` round over a standing 32-deep
//!   queue at 256 and 1024 chips, for the optimized SPK3 and its full-scan
//!   reference twin.  This isolates the per-round decision cost the index
//!   refactor targets; the optimized/reference ratio is the figure recorded in
//!   `BENCH_scaling.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sprinkler_bench::representative_run;
use sprinkler_core::reference::ReferenceScheduler;
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::micro::standing_scene;
use sprinkler_sim::SimTime;
use sprinkler_ssd::scheduler::{IoScheduler, SchedulerContext};

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_rounds");
    group.sample_size(10);
    for chips in [256usize, 1024] {
        let (geometry, queue, ledger) = standing_scene(chips);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue: &queue,
            ledger: &ledger,
        };
        for kind in [SchedulerKind::Spk2, SchedulerKind::Spk3] {
            let mut fast = kind.build();
            fast.initialize(&geometry);
            group.bench_function(&format!("{}_{chips}chips", kind.label()), |b| {
                b.iter(|| black_box(fast.schedule(&ctx)).len())
            });
            let mut reference = ReferenceScheduler::new(kind);
            reference.initialize(&geometry);
            group.bench_function(&format!("{}ref_{chips}chips", kind.label()), |b| {
                b.iter(|| black_box(reference.schedule(&ctx)).len())
            });
        }
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_micro");
    group.sample_size(10);
    for kind in SchedulerKind::ALL {
        group.bench_function(kind.label(), |b| b.iter(|| representative_run(kind)));
    }
    group.finish();
}

criterion_group!(benches, bench, bench_rounds);
criterion_main!(benches);
