//! Old-shape vs columnar round cost (the data-oriented-core figure).
//!
//! One group, `soa_rounds`, timing a single SPK3 scheduling round over the
//! standing 32-deep scene at 64, 256 and 1024 chips, twice:
//!
//! * `old_shape_*` — a faithful in-bench replica of the pre-columnar round
//!   loop: per-chip candidate iterators, a per-candidate `TagState` chase
//!   through the slot table for direction/placement/LPN, per-candidate hazard
//!   queries through the scheduler context, and a wide-tuple chip sort;
//! * `columnar_*` — the shipped `SprinklerScheduler::spk3()` round, which
//!   streams the queue's seq/pri/lpn/slot columns and the ledger's outstanding
//!   column as plain slices and sorts packed `u64` chip keys.
//!
//! Both variants drain the same immutable scene, so the ratio isolates the
//! struct-of-arrays layout change itself.  The columnar per-round mean at
//! 1024 chips is the `rounds_per_sec` figure recorded in `BENCH_scaling.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sprinkler_core::faro::{FaroCandidate, FaroConfig, FaroScratch, FaroSelector};
use sprinkler_core::hazard::HazardFilter;
use sprinkler_core::{RiosTraversal, SprinklerScheduler};
use sprinkler_experiments::micro::standing_scene;
use sprinkler_flash::FlashGeometry;
use sprinkler_sim::SimTime;
use sprinkler_ssd::request::TagId;
use sprinkler_ssd::scheduler::{Commitment, IoScheduler, SchedulerContext};

/// The pre-columnar (array-of-structs) SPK3 round, reconstructed over the
/// queue's compatibility surface (`candidate_chips` / `chip_candidates` /
/// `state_at`): every candidate dereferences its full `TagState` to learn
/// direction, logical page and placement, every write re-queries the queue's
/// read index through the context, and round chips sort as wide tuples.
struct OldShapeRound {
    faro: FaroSelector,
    hazards: HazardFilter,
    traversal: RiosTraversal,
    chip_scratch: Vec<(usize, usize, usize, usize)>,
    cand_scratch: Vec<FaroCandidate>,
    faro_scratch: FaroScratch,
    faro_picks: Vec<(TagId, u32)>,
}

impl OldShapeRound {
    fn new(geometry: &FlashGeometry) -> Self {
        OldShapeRound {
            faro: FaroSelector::new(FaroConfig::default()),
            hazards: HazardFilter::new(),
            traversal: RiosTraversal::new(geometry),
            chip_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            faro_scratch: FaroScratch::default(),
            faro_picks: Vec::new(),
        }
    }

    fn round(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        let capacity = self
            .faro
            .overcommit_depth()
            .min(ctx.max_committed_per_chip());
        let bound = self.hazards.horizon_seq(ctx);
        let chip_count = ctx.chip_count();
        self.chip_scratch.clear();
        self.cand_scratch.clear();
        for chip in ctx.queue.candidate_chips() {
            if chip >= chip_count {
                continue;
            }
            let Some(rank) = self.traversal.position(chip) else {
                continue;
            };
            if ctx.outstanding(chip) >= capacity {
                continue;
            }
            let start = self.cand_scratch.len();
            for (seq, page, tag, slot) in ctx.queue.chip_candidates(chip) {
                if seq > bound {
                    break;
                }
                let Some(state) = ctx.queue.state_at(slot) else {
                    continue;
                };
                if state.host.direction.is_write()
                    && self.hazards.write_after_read_blocked_seq(
                        ctx,
                        seq,
                        state.host.lpn_at(page).value(),
                    )
                {
                    continue;
                }
                let placement = state.placements[page as usize];
                self.cand_scratch.push(FaroCandidate {
                    tag,
                    page,
                    die: placement.die,
                    plane: placement.plane,
                    arrival_rank: seq as usize,
                });
            }
            let end = self.cand_scratch.len();
            if end > start {
                self.chip_scratch.push((rank, chip, start, end));
            }
        }
        self.chip_scratch.sort_unstable();
        for &(_, chip, start, end) in &self.chip_scratch {
            let candidates = &self.cand_scratch[start..end];
            let room = capacity - ctx.outstanding(chip);
            self.faro_picks.clear();
            self.faro.select_into(
                candidates,
                room,
                &mut self.faro_picks,
                &mut self.faro_scratch,
            );
            out.extend(
                self.faro_picks
                    .iter()
                    .map(|&(tag, page)| Commitment { tag, page }),
            );
        }
    }
}

fn bench_soa_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("soa_rounds");
    group.sample_size(10);
    for chips in [64usize, 256, 1024] {
        let (geometry, queue, ledger) = standing_scene(chips);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue: &queue,
            ledger: &ledger,
        };
        let mut buf = Vec::new();

        let mut old = OldShapeRound::new(&geometry);
        group.bench_function(&format!("old_shape_{chips}chips"), |b| {
            b.iter(|| {
                buf.clear();
                old.round(black_box(&ctx), &mut buf);
                black_box(buf.len())
            })
        });

        let mut columnar = SprinklerScheduler::spk3();
        columnar.initialize(&geometry);
        group.bench_function(&format!("columnar_{chips}chips"), |b| {
            b.iter(|| {
                buf.clear();
                columnar.schedule_into(black_box(&ctx), &mut buf);
                black_box(buf.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_soa_rounds);
criterion_main!(benches);
