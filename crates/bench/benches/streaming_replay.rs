//! Times the streaming trace-ingestion path and proves its bounded-memory
//! claim at scale: a multi-million-I/O enterprise replay streams from the lazy
//! generator through the capacity-validating boundary with a host-side
//! backlog capped at the device queue depth — memory tracks outstanding work,
//! not trace length.  The Criterion body times a smaller slice of the same
//! shape so ingestion-path regressions are visible from `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::runner::ExperimentScale;
use sprinkler_experiments::{run_source, scenario, CapacityPolicy};
use sprinkler_ssd::SsdConfig;
use sprinkler_workloads::{parse, workload};

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);

    // The headline demonstration: 2M I/Os streamed end to end, memory bounded
    // by the queue depth (the eager seed path materialized the whole trace and
    // pre-scheduled one arrival event per record).
    let ios: u64 = 2_000_000;
    let start = std::time::Instant::now();
    let metrics = run_source(
        &config,
        SchedulerKind::Spk3,
        &mut workload("msnfs1")
            .expect("Table 1 workload")
            .stream(ios, 0xBE7),
        CapacityPolicy::Reject,
    )
    .expect("Table 1 footprints fit the device");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(metrics.io_count, ios);
    assert!(
        metrics.peak_host_backlog <= config.queue_depth as u64,
        "backlog {} exceeded queue depth {}",
        metrics.peak_host_backlog,
        config.queue_depth
    );
    println!(
        "streamed {ios} I/Os in {elapsed:.1} s ({:.0} I/O/s), peak host backlog {} \
         (queue depth {}), peak pending events {}",
        ios as f64 / elapsed,
        metrics.peak_host_backlog,
        config.queue_depth,
        metrics.peak_pending_events,
    );

    // The scenario registry rides the same path; print its quick-scale tables.
    for outcome in scenario::run_all(&scale) {
        println!("{}", outcome.table().render());
    }

    let mut group = c.benchmark_group("streaming_replay");
    group.sample_size(10);
    group.bench_function("msnfs1_20k_stream", |b| {
        b.iter(|| {
            run_source(
                &config,
                SchedulerKind::Spk3,
                &mut workload("msnfs1").unwrap().stream(20_000, 0xBE7),
                CapacityPolicy::Reject,
            )
            .unwrap()
        })
    });
    group.bench_function("msr_corpus_parse_and_replay", |b| {
        b.iter(|| {
            run_source(
                &config,
                SchedulerKind::Spk3,
                &mut parse::sample_msr(),
                CapacityPolicy::Reject,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
