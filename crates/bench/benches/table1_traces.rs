//! Regenerates Table 1 (trace characteristics of the sixteen enterprise
//! workloads) and times the synthetic trace generator.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::bench_scale;
use sprinkler_experiments::table1;
use sprinkler_workloads::paper_workloads;

fn regenerate() {
    let report = table1::run(&bench_scale());
    println!("{}", report.render());
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let specs = paper_workloads();
    group.bench_function("generate_cfs0_trace", |b| {
        b.iter(|| specs[0].generate(500, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
