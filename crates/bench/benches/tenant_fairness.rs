//! Regenerates the multi-tenant scenarios at bench scale and times the
//! fair-share admission front end to end, so regressions in the
//! deficit-round-robin multiplexer, the token-bucket throttle, and the
//! per-tenant metric attribution are visible alongside the device benches.

use criterion::{criterion_group, criterion_main, Criterion};
use sprinkler_bench::bench_scale;
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::scenario;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for name in ["tenant-mix", "tenant-storm"] {
        let outcome = scenario::run(name, &scale).expect("tenant scenarios are registered");
        println!("{}", outcome.table().render());
    }
    let mix = scenario::tenant_mix_outcome(&scale, SchedulerKind::Spk3);
    println!(
        "tenant-mix spk3: fairness index {:.4} over {} tenants",
        mix.fairness_index(),
        mix.metrics.tenants.len()
    );

    let mut group = c.benchmark_group("tenant_fairness");
    group.sample_size(10);
    group.bench_function("spk3_mix_3tenants", |b| {
        b.iter(|| scenario::tenant_mix_outcome(&scale, SchedulerKind::Spk3))
    });
    group.bench_function("spk3_storm_8x", |b| {
        b.iter(|| scenario::tenant_storm_outcome(&scale, "storm", SchedulerKind::Spk3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
