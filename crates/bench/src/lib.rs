//! Shared helpers for the benchmark harness.
//!
//! Every bench target in `benches/` regenerates one table or figure of the paper
//! (printing it to stdout) and then lets Criterion time a representative slice of
//! the underlying simulation so regressions in simulator performance are visible.
//!
//! # Example
//!
//! The shared measurement body the committed `BENCH_*.json` baselines time:
//!
//! ```
//! use sprinkler_core::SchedulerKind;
//!
//! let metrics = sprinkler_bench::representative_run(SchedulerKind::Spk3);
//! assert_eq!(metrics.io_count, 120);
//! ```

#![warn(missing_docs)]

use sprinkler_core::SchedulerKind;
use sprinkler_experiments::runner::ExperimentScale;
use sprinkler_ssd::RunMetrics;

/// The scale used by bench targets: small enough that `cargo bench` finishes in
/// minutes, large enough that every qualitative trend of the paper still shows.
/// Shared with `regen_baselines` via `sprinkler_experiments::micro` so the
/// committed baselines always describe the scene `cargo bench` times.
pub fn bench_scale() -> ExperimentScale {
    sprinkler_experiments::micro::bench_scale()
}

/// A single small simulation run used as the Criterion measurement body (the
/// shared recipe from `sprinkler_experiments::micro`).
pub fn representative_run(kind: SchedulerKind) -> RunMetrics {
    sprinkler_experiments::micro::representative_run(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_run_completes() {
        let metrics = representative_run(SchedulerKind::Spk3);
        assert_eq!(metrics.io_count, 120);
    }

    #[test]
    fn bench_scale_is_quick() {
        assert!(bench_scale().ios_per_workload <= 500);
    }
}
