//! Shared helpers for the benchmark harness.
//!
//! Every bench target in `benches/` regenerates one table or figure of the paper
//! (printing it to stdout) and then lets Criterion time a representative slice of
//! the underlying simulation so regressions in simulator performance are visible.

use sprinkler_core::SchedulerKind;
use sprinkler_experiments::runner::{run_one, ExperimentScale};
use sprinkler_ssd::{RunMetrics, SsdConfig};
use sprinkler_workloads::SyntheticSpec;

/// The scale used by bench targets: small enough that `cargo bench` finishes in
/// minutes, large enough that every qualitative trend of the paper still shows.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        ios_per_workload: 200,
        blocks_per_plane: 32,
    }
}

/// A single small simulation run used as the Criterion measurement body.
pub fn representative_run(kind: SchedulerKind) -> RunMetrics {
    let scale = bench_scale();
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);
    let trace = SyntheticSpec::new("bench")
        .with_read_fraction(0.7)
        .with_mean_sizes_kb(16.0, 16.0)
        .generate(120, 0xBE);
    run_one(&config, kind, &trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_run_completes() {
        let metrics = representative_run(SchedulerKind::Spk3);
        assert_eq!(metrics.io_count, 120);
    }

    #[test]
    fn bench_scale_is_quick() {
        assert!(bench_scale().ios_per_workload <= 500);
    }
}
