//! FARO — FLP-aware memory request over-commitment (§4.2).
//!
//! FARO supplies flash controllers with as many memory requests per chip as early
//! as possible, so that when the chip becomes free the controller can coalesce a
//! single transaction with the highest possible flash-level parallelism.  Because
//! indiscriminate over-commitment could create flash-level contention, FARO ranks
//! candidates by two metrics:
//!
//! * **overlap depth** — how many requests target *different* dies/planes of the
//!   same chip (an FLP-oriented metric), and
//! * **connectivity** — how many of a chip's candidate requests belong to the same
//!   I/O request (a latency-oriented metric).
//!
//! The I/O request with the highest overlap depth is over-committed first; ties
//! break on connectivity, then on arrival order.

use serde::{Deserialize, Serialize};
use sprinkler_ssd::request::TagId;

/// Configuration of the over-commitment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaroConfig {
    /// Maximum committed-but-incomplete memory requests FARO keeps per chip.
    pub overcommit_depth: usize,
}

impl Default for FaroConfig {
    fn default() -> Self {
        // Two dies × four planes: enough depth to fill a PAL3 transaction twice.
        FaroConfig {
            overcommit_depth: 16,
        }
    }
}

/// One candidate memory request targeting a specific chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaroCandidate {
    /// The I/O request (tag) the candidate belongs to.
    pub tag: TagId,
    /// Page offset within the I/O request.
    pub page: u32,
    /// Die the candidate targets.
    pub die: u32,
    /// Plane the candidate targets.
    pub plane: u32,
    /// Arrival rank of the tag (0 = oldest); used as the final tie break.
    pub arrival_rank: usize,
}

/// Reusable working buffers for [`FaroSelector::select_into`].
///
/// The selector itself is `Copy` serializable configuration, so the ranking
/// loop's working storage lives with the caller and is threaded through each
/// selection; after warm-up no selection allocates.
#[derive(Debug, Clone, Default)]
pub struct FaroScratch {
    remaining: Vec<FaroCandidate>,
    occupied: Vec<(u32, u32)>,
    tags: Vec<TagId>,
    members: Vec<FaroCandidate>,
}

/// The FARO candidate selector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaroSelector {
    config: FaroConfig,
}

impl FaroSelector {
    /// Creates a selector with the given configuration.
    pub fn new(config: FaroConfig) -> Self {
        FaroSelector { config }
    }

    /// The configured over-commitment depth.
    pub fn overcommit_depth(&self) -> usize {
        self.config.overcommit_depth
    }

    /// Overlap depth of a candidate set: the number of distinct (die, plane) pairs
    /// it would activate on the chip.
    pub fn overlap_depth(candidates: &[FaroCandidate]) -> usize {
        let mut pairs: Vec<(u32, u32)> = candidates.iter().map(|c| (c.die, c.plane)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }

    /// Connectivity of `tag` within a candidate set: how many candidates belong to
    /// it.
    pub fn connectivity(candidates: &[FaroCandidate], tag: TagId) -> usize {
        candidates.iter().filter(|c| c.tag == tag).count()
    }

    /// Selects up to `capacity` candidates for one chip, following Algorithm 1:
    /// repeatedly pick the tag whose candidates contribute the highest overlap
    /// depth (ties broken by connectivity, then arrival order) and over-commit its
    /// requests for this chip.
    pub fn select(&self, candidates: &[FaroCandidate], capacity: usize) -> Vec<(TagId, u32)> {
        let mut selected = Vec::new();
        let mut scratch = FaroScratch::default();
        self.select_into(candidates, capacity, &mut selected, &mut scratch);
        selected
    }

    /// [`FaroSelector::select`] with caller-provided output and working buffers
    /// (allocation-free once warmed up).  Selections are *appended* to `out`.
    /// Returns `true` when the single-tag fast path resolved the selection.
    pub fn select_into(
        &self,
        candidates: &[FaroCandidate],
        capacity: usize,
        out: &mut Vec<(TagId, u32)>,
        scratch: &mut FaroScratch,
    ) -> bool {
        let capacity = capacity.min(self.config.overcommit_depth);
        if capacity == 0 || candidates.is_empty() {
            return false;
        }
        let start = out.len();
        // Fast path for the dominant many-chip shape: every candidate belongs to
        // one tag, so Algorithm 1 degenerates to "over-commit that tag's pages
        // in page order" — no ranking rounds, no working buffers.
        if candidates.windows(2).all(|pair| pair[0].tag == pair[1].tag) {
            out.extend(candidates.iter().map(|c| (c.tag, c.page)));
            out[start..].sort_unstable_by_key(|&(_, page)| page);
            out.truncate(start + capacity);
            return true;
        }
        let FaroScratch {
            remaining,
            occupied,
            tags,
            members,
        } = scratch;
        remaining.clear();
        remaining.extend_from_slice(candidates);
        occupied.clear();

        while out.len() - start < capacity && !remaining.is_empty() {
            // Rank tags by the overlap depth their candidates would add on top of
            // what has already been selected.
            tags.clear();
            tags.extend(remaining.iter().map(|c| c.tag));
            tags.sort_unstable();
            tags.dedup();
            let mut best: Option<(usize, usize, usize, TagId)> = None;
            for &tag in tags.iter() {
                // Overlap: distinct not-yet-occupied (die, plane) pairs among
                // the tag's members, counted at each pair's first occurrence —
                // no scratch pair list needed.
                let mut overlap = 0;
                let mut connectivity = 0;
                let mut rank = usize::MAX;
                for (i, c) in remaining.iter().enumerate() {
                    if c.tag != tag {
                        continue;
                    }
                    connectivity += 1;
                    rank = rank.min(c.arrival_rank);
                    let pair = (c.die, c.plane);
                    if !occupied.contains(&pair)
                        && !remaining[..i]
                            .iter()
                            .any(|p| p.tag == tag && (p.die, p.plane) == pair)
                    {
                        overlap += 1;
                    }
                }
                let better = match &best {
                    None => true,
                    Some((o, c, r, _)) => {
                        (overlap, connectivity, usize::MAX - rank) > (*o, *c, usize::MAX - *r)
                    }
                };
                if better {
                    best = Some((overlap, connectivity, rank, tag));
                }
            }
            let Some((_, _, _, chosen_tag)) = best else {
                break;
            };
            // Over-commit the chosen tag's candidates, preferring ones that open
            // new (die, plane) pairs, oldest pages first.
            members.clear();
            members.extend(remaining.iter().copied().filter(|c| c.tag == chosen_tag));
            members.sort_by_key(|c| (occupied.contains(&(c.die, c.plane)), c.page));
            for member in members.iter() {
                if out.len() - start >= capacity {
                    break;
                }
                out.push((member.tag, member.page));
                if !occupied.contains(&(member.die, member.plane)) {
                    occupied.push((member.die, member.plane));
                }
            }
            remaining.retain(|c| c.tag != chosen_tag);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(tag: u64, page: u32, die: u32, plane: u32, rank: usize) -> FaroCandidate {
        FaroCandidate {
            tag: TagId(tag),
            page,
            die,
            plane,
            arrival_rank: rank,
        }
    }

    #[test]
    fn overlap_depth_counts_distinct_die_plane_pairs() {
        let cs = vec![
            cand(1, 0, 0, 0, 0),
            cand(1, 1, 0, 0, 0),
            cand(2, 0, 0, 1, 1),
            cand(3, 0, 1, 0, 2),
        ];
        assert_eq!(FaroSelector::overlap_depth(&cs), 3);
        assert_eq!(FaroSelector::overlap_depth(&[]), 0);
    }

    #[test]
    fn connectivity_counts_same_tag_members() {
        let cs = vec![
            cand(1, 0, 0, 0, 0),
            cand(1, 1, 0, 1, 0),
            cand(2, 0, 1, 0, 1),
        ];
        assert_eq!(FaroSelector::connectivity(&cs, TagId(1)), 2);
        assert_eq!(FaroSelector::connectivity(&cs, TagId(2)), 1);
        assert_eq!(FaroSelector::connectivity(&cs, TagId(9)), 0);
    }

    #[test]
    fn tag_with_highest_overlap_depth_wins() {
        // Tag 1 covers one plane twice; tag 2 covers two different planes.
        let cs = vec![
            cand(1, 0, 0, 0, 0),
            cand(1, 1, 0, 0, 0),
            cand(2, 0, 0, 1, 1),
            cand(2, 1, 1, 0, 1),
        ];
        let selector = FaroSelector::new(FaroConfig::default());
        let picked = selector.select(&cs, 2);
        assert_eq!(picked.len(), 2);
        assert!(picked.iter().all(|(t, _)| *t == TagId(2)));
    }

    #[test]
    fn connectivity_breaks_overlap_ties() {
        // Both tags add one new plane, but tag 3 has two members (connectivity 2).
        let cs = vec![
            cand(3, 0, 0, 0, 5),
            cand(3, 1, 0, 0, 5),
            cand(4, 0, 0, 1, 1),
        ];
        let selector = FaroSelector::new(FaroConfig::default());
        let picked = selector.select(&cs, 1);
        assert_eq!(picked, vec![(TagId(3), 0)]);
    }

    #[test]
    fn arrival_order_breaks_remaining_ties() {
        let cs = vec![cand(7, 0, 0, 0, 3), cand(8, 0, 0, 1, 1)];
        let selector = FaroSelector::new(FaroConfig::default());
        let picked = selector.select(&cs, 1);
        // Same overlap (1) and connectivity (1); the older tag (rank 1) wins.
        assert_eq!(picked, vec![(TagId(8), 0)]);
    }

    #[test]
    fn capacity_and_depth_are_respected() {
        let cs: Vec<FaroCandidate> = (0..20)
            .map(|i| cand(i as u64, 0, (i % 2) as u32, (i % 4) as u32, i))
            .collect();
        let selector = FaroSelector::new(FaroConfig {
            overcommit_depth: 4,
        });
        assert_eq!(selector.overcommit_depth(), 4);
        assert_eq!(selector.select(&cs, 100).len(), 4);
        assert_eq!(selector.select(&cs, 2).len(), 2);
        assert!(selector.select(&cs, 0).is_empty());
        assert!(selector.select(&[], 5).is_empty());
    }

    /// Pins the single-tag fast path to the general ranking loop: for any
    /// single-tag candidate set, Algorithm 1 selects that tag's pages in page
    /// order up to capacity, so the fast path must produce exactly that.
    #[test]
    fn single_tag_fast_path_matches_the_ranking_loop() {
        // Scrambled page order, duplicate (die, plane) pairs, varying capacity.
        let cs = vec![
            cand(5, 7, 0, 2, 3),
            cand(5, 1, 1, 0, 3),
            cand(5, 4, 0, 2, 3),
            cand(5, 0, 0, 0, 3),
            cand(5, 9, 1, 1, 3),
        ];
        let selector = FaroSelector::new(FaroConfig {
            overcommit_depth: 16,
        });
        for capacity in 0..=6 {
            let fast = selector.select(&cs, capacity);
            // The ranking loop with a single tag: members sorted by page
            // (occupied set is empty at sort time), truncated to capacity.
            let mut expected: Vec<(TagId, u32)> = cs.iter().map(|c| (c.tag, c.page)).collect();
            expected.sort_unstable_by_key(|&(_, page)| page);
            expected.truncate(capacity.min(selector.overcommit_depth()));
            assert_eq!(fast, expected, "capacity {capacity}");
        }
        // A second tag must disable the fast path and exercise the ranking
        // loop: the two-plane tag wins over the single-plane one.
        let mut with_rival = cs.clone();
        with_rival.push(cand(6, 0, 0, 1, 1));
        let picked = selector.select(&with_rival, 6);
        assert_eq!(picked.len(), 6);
        assert!(picked.contains(&(TagId(6), 0)));
    }

    #[test]
    fn select_into_appends_and_reports_the_fast_path() {
        let selector = FaroSelector::new(FaroConfig::default());
        let mut scratch = FaroScratch::default();
        let mut out = vec![(TagId(99), 0)];

        // Single tag: fast path fires, prior contents are preserved.
        let single = vec![cand(1, 1, 0, 1, 0), cand(1, 0, 0, 0, 0)];
        assert!(selector.select_into(&single, 8, &mut out, &mut scratch));
        assert_eq!(out, vec![(TagId(99), 0), (TagId(1), 0), (TagId(1), 1)]);

        // Two tags: ranking loop, fast path not taken, same picks as select().
        let mixed = vec![
            cand(1, 0, 0, 0, 0),
            cand(1, 1, 0, 0, 0),
            cand(2, 0, 0, 1, 1),
            cand(2, 1, 1, 0, 1),
        ];
        out.clear();
        assert!(!selector.select_into(&mixed, 3, &mut out, &mut scratch));
        assert_eq!(out, selector.select(&mixed, 3));

        // Empty input never reports the fast path.
        assert!(!selector.select_into(&[], 8, &mut out, &mut scratch));
    }

    #[test]
    fn selection_never_duplicates_a_candidate() {
        let cs = vec![
            cand(1, 0, 0, 0, 0),
            cand(1, 1, 0, 1, 0),
            cand(2, 0, 1, 0, 1),
            cand(2, 1, 1, 1, 1),
        ];
        let selector = FaroSelector::new(FaroConfig::default());
        let picked = selector.select(&cs, 10);
        assert_eq!(picked.len(), 4);
        let mut unique = picked.clone();
        unique.sort_by_key(|(t, p)| (t.0, *p));
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }
}
