//! Hazard control (§4.4).
//!
//! Request reordering at the device level is safe for most combinations because
//! write data sits in the host-side buffer during scheduling: read-after-write and
//! write-after-write are resolved by the host's own buffer.  Two cases need care:
//!
//! * **Force-unit-access (FUA)** requests must not be reordered at all: no request
//!   that arrived after a pending FUA request may be committed before the FUA
//!   request is fully committed.
//! * **Write-after-read** to the same logical page: the read must be served first,
//!   otherwise it would observe the new data.
//!
//! Both checks are pure functions over the scheduler context so every scheduler
//! (VAS, PAS, Sprinkler) shares the same policy.  The policy for a blocked write
//! is uniform across all composition styles: only the hazard-blocked page is
//! deferred — the scheduler keeps composing the remaining pages of the same tag
//! and everything behind it (see `SprinklerScheduler` and the property tests).
//!
//! The checks are answered from the device queue's incremental indices
//! ([`sprinkler_ssd::queue::DeviceQueue::horizon_seq`] and
//! [`sprinkler_ssd::queue::DeviceQueue::has_blocking_read`]), so each query is
//! O(1)/O(log n) instead of a full-queue scan per page.  The equivalent full-scan
//! definitions live in [`crate::reference`] and the two are property-tested
//! against each other.

use sprinkler_ssd::request::TagId;
use sprinkler_ssd::SchedulerContext;

/// Stateless hazard checks shared by all schedulers.
#[derive(Debug, Clone, Copy, Default)]
pub struct HazardFilter;

impl HazardFilter {
    /// Creates the filter.
    pub fn new() -> Self {
        HazardFilter
    }

    /// The FUA reordering horizon as an admission-sequence bound: tags whose
    /// `seq` exceeds the bound are off limits this round because an earlier FUA
    /// request is not yet fully committed.  O(1).
    ///
    /// The bound is *inclusive*: the first pending FUA tag itself may still be
    /// composed (its own commitment is what opens the horizon back up).
    pub fn horizon_seq(&self, ctx: &SchedulerContext<'_>) -> u64 {
        ctx.queue.horizon_seq()
    }

    /// How many leading tags (in arrival order) a scheduler may consider this
    /// round.  Tags beyond the first not-fully-committed FUA request are off
    /// limits: reordering past a FUA barrier is forbidden.
    ///
    /// This is the counting form of [`HazardFilter::horizon_seq`]; it walks the
    /// queue and is kept for inspection and tests — hot paths should compare
    /// against the O(1) sequence bound instead.
    pub fn horizon(&self, ctx: &SchedulerContext<'_>) -> usize {
        let bound = self.horizon_seq(ctx);
        ctx.tags().take_while(|tag| tag.seq <= bound).count()
    }

    /// Whether committing a *write* of `lpn` from `writer` must wait because an
    /// earlier-arrived tag still has an uncommitted read of the same logical page.
    /// O(log n) via the queue's read-LPN index.
    pub fn write_after_read_blocked(
        &self,
        ctx: &SchedulerContext<'_>,
        writer: TagId,
        lpn: u64,
    ) -> bool {
        let writer_seq = ctx.queue.seq_of(writer).unwrap_or(u64::MAX);
        self.write_after_read_blocked_seq(ctx, writer_seq, lpn)
    }

    /// [`HazardFilter::write_after_read_blocked`] for callers that already hold
    /// the writer's admission sequence number (every hot path does), saving the
    /// tag-id lookup.
    pub fn write_after_read_blocked_seq(
        &self,
        ctx: &SchedulerContext<'_>,
        writer_seq: u64,
        lpn: u64,
    ) -> bool {
        ctx.queue.has_blocking_read(lpn, writer_seq)
    }

    /// The write-after-read check over a raw hazard slice
    /// ([`sprinkler_ssd::queue::DeviceQueue::read_hazards`]): sorted
    /// `(lpn, seq)` pairs of uncommitted reads.  Hot loops hoist the slice out
    /// of the context once per round and call this per candidate, keeping the
    /// check a binary search over one dense array with no queue dereference.
    #[inline]
    pub fn blocked_by_read(reads: &[(u64, u64)], lpn: u64, writer_seq: u64) -> bool {
        // The first entry for `lpn` holds the earliest reading seq.
        let pos = reads.partition_point(|&(l, _)| l < lpn);
        reads
            .get(pos)
            .is_some_and(|&(l, earliest)| l == lpn && earliest < writer_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_flash::{FlashGeometry, Lpn};
    use sprinkler_sim::SimTime;
    use sprinkler_ssd::queue::DeviceQueue;
    use sprinkler_ssd::request::{Direction, HostRequest, Placement};
    use sprinkler_ssd::CommitmentLedger;

    fn placement(chip: usize) -> Placement {
        Placement {
            chip,
            channel: 0,
            way: chip as u32,
            die: 0,
            plane: 0,
        }
    }

    fn admit(queue: &mut DeviceQueue, id: u64, dir: Direction, lpn: u64, pages: u32, fua: bool) {
        let host = HostRequest::new(id, SimTime::ZERO, dir, Lpn::new(lpn), pages).with_fua(fua);
        let placements = (0..pages as usize).map(placement).collect();
        assert!(queue.admit(TagId(id), host, SimTime::ZERO, placements));
    }

    fn with_ctx<R>(queue: &DeviceQueue, f: impl FnOnce(&SchedulerContext<'_>) -> R) -> R {
        let geometry = FlashGeometry::small_test();
        let ledger = CommitmentLedger::new(geometry.total_chips(), 8);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue,
            ledger: &ledger,
        };
        f(&ctx)
    }

    #[test]
    fn horizon_without_fua_covers_all_tags() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, 0, 2, false);
        admit(&mut queue, 1, Direction::Write, 10, 2, false);
        admit(&mut queue, 2, Direction::Read, 20, 2, false);
        let filter = HazardFilter::new();
        with_ctx(&queue, |ctx| {
            assert_eq!(filter.horizon(ctx), 3);
            assert_eq!(filter.horizon_seq(ctx), u64::MAX);
        });
    }

    #[test]
    fn fua_request_limits_the_horizon() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, 0, 2, false);
        admit(&mut queue, 1, Direction::Write, 10, 2, true);
        admit(&mut queue, 2, Direction::Read, 20, 2, false);
        let filter = HazardFilter::new();
        with_ctx(&queue, |ctx| {
            assert_eq!(filter.horizon(ctx), 2);
            assert_eq!(filter.horizon_seq(ctx), queue.seq_of(TagId(1)).unwrap());
        });
        // Once the FUA tag is fully committed the horizon opens up.
        assert!(queue.commit_page(TagId(1), 0, SimTime::ZERO));
        assert!(queue.commit_page(TagId(1), 1, SimTime::ZERO));
        with_ctx(&queue, |ctx| {
            assert_eq!(filter.horizon(ctx), 3);
            assert_eq!(filter.horizon_seq(ctx), u64::MAX);
        });
    }

    #[test]
    fn write_after_read_is_blocked_until_read_commits() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, 100, 4, false); // reads LPN 100..104
        admit(&mut queue, 1, Direction::Write, 102, 1, false); // writes LPN 102
        let filter = HazardFilter::new();
        with_ctx(&queue, |ctx| {
            assert!(filter.write_after_read_blocked(ctx, TagId(1), 102));
            assert!(!filter.write_after_read_blocked(ctx, TagId(1), 105));
        });
        assert!(queue.commit_page(TagId(0), 2, SimTime::ZERO));
        with_ctx(&queue, |ctx| {
            assert!(!filter.write_after_read_blocked(ctx, TagId(1), 102));
        });
    }

    #[test]
    fn slice_form_matches_the_context_form() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, 100, 4, false);
        admit(&mut queue, 1, Direction::Write, 102, 1, false);
        let writer_seq = queue.seq_of(TagId(1)).unwrap();
        let filter = HazardFilter::new();
        for lpn in 98..106 {
            let via_slice = HazardFilter::blocked_by_read(queue.read_hazards(), lpn, writer_seq);
            let via_ctx = with_ctx(&queue, |ctx| {
                filter.write_after_read_blocked_seq(ctx, writer_seq, lpn)
            });
            assert_eq!(via_slice, via_ctx, "lpn {lpn}");
        }
        // Reads at or after the writer's own seq never block it.
        assert!(!HazardFilter::blocked_by_read(queue.read_hazards(), 102, 0));
    }

    #[test]
    fn later_reads_do_not_block_earlier_writes() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Write, 50, 1, false);
        admit(&mut queue, 1, Direction::Read, 50, 1, false);
        let filter = HazardFilter::new();
        with_ctx(&queue, |ctx| {
            // The write arrived first; the read behind it does not block it.
            assert!(!filter.write_after_read_blocked(ctx, TagId(0), 50));
        });
    }
}
