//! The Sprinkler schedulers (HPCA 2014) and their baselines.
//!
//! This crate is the paper's primary contribution: device-level I/O schedulers for
//! many-chip SSDs, implemented against the [`sprinkler_ssd::scheduler::IoScheduler`]
//! trait:
//!
//! * [`VirtualAddressScheduler`] (**VAS**) — the conventional FIFO scheduler that
//!   composes memory requests strictly in I/O arrival order and suffers
//!   head-of-line blocking on chip conflicts (§3, Fig 4).
//! * [`PhysicalAddressScheduler`] (**PAS**) — a physical-address-aware scheduler
//!   that skips busy chips at commit time (coarse-grain out-of-order execution,
//!   §3, Fig 5) but never over-commits.
//! * [`SprinklerScheduler`] — the paper's proposal, combining
//!   [`rios`] (Resource-driven I/O Scheduling: compose and commit per *chip*,
//!   traversing chips channel-offset-first, ignoring I/O boundaries) and
//!   [`faro`] (FLP-aware Request Over-commitment: commit multiple requests per
//!   chip, prioritized by overlap depth then connectivity, so the flash controller
//!   can coalesce high-FLP transactions).  The three evaluated variants are
//!   SPK1 (FARO only), SPK2 (RIOS only), and SPK3 (both).
//!
//! # Example
//!
//! ```
//! use sprinkler_core::SchedulerKind;
//! use sprinkler_ssd::{Ssd, SsdConfig};
//! use sprinkler_ssd::request::{Direction, HostRequest};
//! use sprinkler_flash::Lpn;
//! use sprinkler_sim::SimTime;
//!
//! let trace: Vec<HostRequest> = (0..8)
//!     .map(|i| HostRequest::new(i, SimTime::from_micros(i * 10), Direction::Read,
//!                               Lpn::new(i * 16), 16))
//!     .collect();
//! let ssd = Ssd::new(SsdConfig::small_test(), SchedulerKind::Spk3.build()).unwrap();
//! let metrics = ssd.run(trace);
//! assert_eq!(metrics.io_count, 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod faro;
pub mod hazard;
pub mod pas;
pub mod reference;
pub mod rios;
pub mod sprinkler;
pub mod vas;

pub use faro::{FaroConfig, FaroSelector};
pub use pas::PhysicalAddressScheduler;
pub use reference::ReferenceScheduler;
pub use rios::RiosTraversal;
pub use sprinkler::SprinklerScheduler;
pub use vas::VirtualAddressScheduler;

use serde::{Deserialize, Serialize};
use sprinkler_ssd::IoScheduler;

/// The five schedulers evaluated in the paper (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Virtual address scheduler (FIFO).
    Vas,
    /// Physical address scheduler with per-chip skip (coarse-grain out-of-order).
    Pas,
    /// Sprinkler using only FARO (over-commitment, no resource-driven composition).
    Spk1,
    /// Sprinkler using only RIOS (resource-driven composition, no over-commitment).
    Spk2,
    /// Full Sprinkler: RIOS + FARO.
    Spk3,
}

impl SchedulerKind {
    /// All kinds in the order the paper's figures present them.
    pub const ALL: [SchedulerKind; 5] = [
        SchedulerKind::Vas,
        SchedulerKind::Pas,
        SchedulerKind::Spk1,
        SchedulerKind::Spk2,
        SchedulerKind::Spk3,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Vas => "VAS",
            SchedulerKind::Pas => "PAS",
            SchedulerKind::Spk1 => "SPK1",
            SchedulerKind::Spk2 => "SPK2",
            SchedulerKind::Spk3 => "SPK3",
        }
    }

    /// Instantiates the scheduler with default parameters.
    pub fn build(self) -> Box<dyn IoScheduler> {
        match self {
            SchedulerKind::Vas => Box::new(VirtualAddressScheduler::new()),
            SchedulerKind::Pas => Box::new(PhysicalAddressScheduler::new()),
            SchedulerKind::Spk1 => Box::new(SprinklerScheduler::spk1()),
            SchedulerKind::Spk2 => Box::new(SprinklerScheduler::spk2()),
            SchedulerKind::Spk3 => Box::new(SprinklerScheduler::spk3()),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_and_report_their_label() {
        for kind in SchedulerKind::ALL {
            let scheduler = kind.build();
            assert_eq!(scheduler.name(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn only_sprinkler_supports_readdressing() {
        assert!(!SchedulerKind::Vas.build().supports_readdressing());
        assert!(!SchedulerKind::Pas.build().supports_readdressing());
        assert!(SchedulerKind::Spk1.build().supports_readdressing());
        assert!(SchedulerKind::Spk2.build().supports_readdressing());
        assert!(SchedulerKind::Spk3.build().supports_readdressing());
    }
}
