//! The Physical Address Scheduler (PAS) baseline.
//!
//! PAS sees the physical addresses exposed by a preprocessor (Ozone's hardware
//! assist or PAQ's software translation, §3) and uses them to avoid request
//! collisions: when the next memory request in I/O order targets an occupied chip,
//! PAS simply skips it and keeps committing requests whose chips are idle —
//! coarse-grain out-of-order execution at the system level (Fig 5).
//!
//! PAS still composes and commits based on I/O arrival order and never
//! over-commits, so it cannot exploit flash-level transactional locality: each chip
//! gets at most one outstanding memory request at a time.

use std::sync::Arc;

use sprinkler_sim::TelemetryCounters;
use sprinkler_ssd::scheduler::{Commitment, IoScheduler, SchedulerContext};

use crate::hazard::HazardFilter;

/// The physical-address-aware, coarse-grain out-of-order scheduler.
#[derive(Debug, Default, Clone)]
pub struct PhysicalAddressScheduler {
    hazards: HazardFilter,
    /// Scratch: per-chip commits made this round; only the chips listed in
    /// `newly_dirty` are non-zero between rounds.
    newly: Vec<usize>,
    newly_dirty: Vec<usize>,
    /// Hot-path counters shared with the SSD substrate, when attached.
    telemetry: Option<Arc<TelemetryCounters>>,
}

impl PhysicalAddressScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IoScheduler for PhysicalAddressScheduler {
    fn name(&self) -> &'static str {
        "PAS"
    }

    fn attach_telemetry(&mut self, telemetry: &Arc<TelemetryCounters>) {
        self.telemetry = Some(Arc::clone(telemetry));
    }

    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        if self.newly.len() < ctx.chip_count() {
            self.newly.resize(ctx.chip_count(), 0);
        }
        for &chip in &self.newly_dirty {
            self.newly[chip] = 0;
        }
        self.newly_dirty.clear();
        // A FUA request is a reordering barrier: the horizon bound stops the walk
        // right after the first not-fully-committed FUA request.
        let bound = self.hazards.horizon_seq(ctx);
        for tag in ctx.tags() {
            if tag.seq > bound {
                if let Some(telemetry) = &self.telemetry {
                    TelemetryCounters::incr(&telemetry.hazard_horizon_clips);
                }
                break;
            }
            let is_write = tag.host.direction.is_write();
            for page in tag.uncommitted_pages() {
                let chip = tag.placements[page as usize].chip;
                // Skip (rather than block on) occupied chips: one request per chip.
                if ctx.outstanding(chip) + self.newly[chip] >= 1 {
                    continue;
                }
                if is_write
                    && self.hazards.write_after_read_blocked_seq(
                        ctx,
                        tag.seq,
                        tag.host.lpn_at(page).value(),
                    )
                {
                    if let Some(telemetry) = &self.telemetry {
                        TelemetryCounters::incr(&telemetry.hazard_war_deferrals);
                    }
                    continue;
                }
                if self.newly[chip] == 0 {
                    self.newly_dirty.push(chip);
                }
                self.newly[chip] += 1;
                out.push(Commitment { tag: tag.id, page });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_flash::{FlashGeometry, Lpn};
    use sprinkler_sim::SimTime;
    use sprinkler_ssd::queue::DeviceQueue;
    use sprinkler_ssd::request::{Direction, HostRequest, Placement, TagId};
    use sprinkler_ssd::CommitmentLedger;

    fn admit_with_chips(queue: &mut DeviceQueue, id: u64, dir: Direction, chips: &[usize]) {
        let host = HostRequest::new(
            id,
            SimTime::ZERO,
            dir,
            Lpn::new(id * 100),
            chips.len() as u32,
        );
        let placements = chips
            .iter()
            .map(|&chip| Placement {
                chip,
                channel: 0,
                way: chip as u32,
                die: 0,
                plane: 0,
            })
            .collect();
        assert!(queue.admit(TagId(id), host, SimTime::ZERO, placements));
    }

    fn schedule(queue: &DeviceQueue, outstanding: &[usize]) -> Vec<Commitment> {
        let geometry = FlashGeometry::small_test();
        let mut ledger = CommitmentLedger::from_outstanding(8, outstanding);
        for (chip, &n) in outstanding.iter().enumerate() {
            ledger.set_busy(chip, n > 0);
        }
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue,
            ledger: &ledger,
        };
        PhysicalAddressScheduler::new().schedule(&ctx)
    }

    #[test]
    fn skips_colliding_requests_but_serves_later_ios() {
        let mut queue = DeviceQueue::new(8);
        admit_with_chips(&mut queue, 0, Direction::Read, &[0, 1]);
        admit_with_chips(&mut queue, 1, Direction::Read, &[0, 3]);
        admit_with_chips(&mut queue, 2, Direction::Read, &[2, 3]);
        let out = schedule(&queue, &[0, 0, 0, 0]);
        // Tag 0 takes chips 0 and 1; tag 1's chip-0 page is skipped but its chip-3
        // page commits; tag 2's chip-2 page commits, its chip-3 page is skipped.
        assert_eq!(out.len(), 4);
        let tags: Vec<u64> = out.iter().map(|c| c.tag.0).collect();
        assert_eq!(tags, vec![0, 0, 1, 2]);
    }

    #[test]
    fn never_commits_more_than_one_request_per_chip() {
        let mut queue = DeviceQueue::new(8);
        admit_with_chips(&mut queue, 0, Direction::Read, &[0, 0, 0]);
        let out = schedule(&queue, &[0, 0, 0, 0]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn busy_chips_are_skipped_not_blocking() {
        let mut queue = DeviceQueue::new(8);
        admit_with_chips(&mut queue, 0, Direction::Read, &[1, 2]);
        let out = schedule(&queue, &[0, 1, 0, 0]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].page, 1);
    }

    #[test]
    fn write_after_read_hazard_defers_the_write() {
        let mut queue = DeviceQueue::new(8);
        // Tag 0 reads LPN 0..2 (uncommitted), tag 1 writes LPN 1.
        let read = HostRequest::new(0, SimTime::ZERO, Direction::Read, Lpn::new(0), 2);
        assert!(queue.admit(
            TagId(0),
            read,
            SimTime::ZERO,
            vec![
                Placement {
                    chip: 0,
                    channel: 0,
                    way: 0,
                    die: 0,
                    plane: 0,
                },
                Placement {
                    chip: 1,
                    channel: 0,
                    way: 1,
                    die: 0,
                    plane: 0,
                },
            ],
        ));
        let write = HostRequest::new(1, SimTime::ZERO, Direction::Write, Lpn::new(1), 1);
        assert!(queue.admit(
            TagId(1),
            write,
            SimTime::ZERO,
            vec![Placement {
                chip: 2,
                channel: 1,
                way: 0,
                die: 0,
                plane: 0,
            }],
        ));
        let out = schedule(&queue, &[0, 0, 0, 0]);
        // The write to LPN 1 must wait for the read of LPN 1 to commit first.
        assert!(out.iter().all(|c| c.tag != TagId(1)));
    }

    #[test]
    fn fua_acts_as_a_reordering_barrier() {
        let mut queue = DeviceQueue::new(8);
        admit_with_chips(&mut queue, 0, Direction::Read, &[0]);
        let fua =
            HostRequest::new(1, SimTime::ZERO, Direction::Write, Lpn::new(50), 1).with_fua(true);
        assert!(queue.admit(
            TagId(1),
            fua,
            SimTime::ZERO,
            vec![Placement {
                chip: 0,
                channel: 0,
                way: 0,
                die: 0,
                plane: 0,
            }],
        ));
        admit_with_chips(&mut queue, 2, Direction::Read, &[3]);
        let out = schedule(&queue, &[0, 0, 0, 0]);
        // The FUA write targets chip 0 which tag 0 just took, so it cannot commit;
        // tag 2 must not be scheduled past the FUA barrier.
        assert!(out.iter().all(|c| c.tag == TagId(0)));
    }
}
