//! Executable reference specification of the five schedulers.
//!
//! These are the straightforward full-scan implementations the optimized hot
//! paths (`vas`, `pas`, `sprinkler` over the device queue's incremental indices)
//! must be observationally equivalent to: per round they re-derive the FUA
//! horizon by walking the queue, answer every write-after-read question by
//! scanning all earlier tags, and bucket candidate pages by chip from scratch —
//! O(queue² × pages) per round, exactly what the optimized paths replace.
//!
//! They exist so that the performance work stays honest: the differential
//! property tests in `tests/properties.rs` run every optimized scheduler and its
//! reference twin over random traces and assert the *commitment streams are
//! identical*, commitment by commitment.  Any divergence introduced by an index
//! or scratch-buffer bug fails the suite immediately.
//!
//! The reference implements the same §4.4 hazard policy as the optimized
//! schedulers: a write-after-read conflict defers only the blocked page, on
//! every composition path.
//!
//! Both twins schedule against the corrected commitment accounting of
//! [`sprinkler_ssd::ledger::CommitmentLedger`]: per-chip headroom within a
//! round is the full `max_committed_per_chip` — `outstanding` counts every
//! same-round commit exactly once, so neither side compensates for the seed's
//! double-charge.

use sprinkler_flash::FlashGeometry;
use sprinkler_ssd::request::TagId;
use sprinkler_ssd::scheduler::{Commitment, IoScheduler, SchedulerContext};

use crate::faro::{FaroCandidate, FaroConfig, FaroSelector};
use crate::rios::RiosTraversal;
use crate::SchedulerKind;

/// Full-scan FUA horizon: how many leading tags may be considered this round.
pub fn horizon(ctx: &SchedulerContext<'_>) -> usize {
    let mut horizon = 0;
    for tag in ctx.tags() {
        horizon += 1;
        if tag.host.fua && !tag.fully_committed() {
            break;
        }
    }
    horizon
}

/// Full-scan write-after-read check: whether committing a write of `lpn` from
/// `writer` must wait because an earlier-arrived tag still has an uncommitted
/// read of the same logical page.
pub fn write_after_read_blocked(ctx: &SchedulerContext<'_>, writer: TagId, lpn: u64) -> bool {
    for tag in ctx.tags() {
        if tag.id == writer {
            // Only tags that arrived earlier than the writer matter.
            return false;
        }
        if !tag.host.direction.is_read() {
            continue;
        }
        let start = tag.host.start_lpn.value();
        let end = start + tag.host.pages as u64;
        if (start..end).contains(&lpn) {
            let page = (lpn - start) as usize;
            if !tag.committed[page] {
                return true;
            }
        }
    }
    false
}

/// The reference twin of one [`SchedulerKind`]: same decisions, naive algorithm.
#[derive(Debug, Clone)]
pub struct ReferenceScheduler {
    kind: SchedulerKind,
    faro: FaroSelector,
    traversal: Option<RiosTraversal>,
}

impl ReferenceScheduler {
    /// Creates the reference twin of `kind` with default parameters.
    pub fn new(kind: SchedulerKind) -> Self {
        ReferenceScheduler {
            kind,
            faro: FaroSelector::new(FaroConfig::default()),
            traversal: None,
        }
    }

    fn uses_rios(&self) -> bool {
        matches!(self.kind, SchedulerKind::Spk2 | SchedulerKind::Spk3)
    }

    fn uses_faro(&self) -> bool {
        matches!(self.kind, SchedulerKind::Spk1 | SchedulerKind::Spk3)
    }

    /// Per-chip commit capacity of this variant: 1 without FARO, the
    /// over-commitment depth with it.
    fn per_chip_capacity(&self, ctx: &SchedulerContext<'_>) -> usize {
        let depth = match self.kind {
            SchedulerKind::Vas | SchedulerKind::Pas | SchedulerKind::Spk2 => 1,
            SchedulerKind::Spk1 | SchedulerKind::Spk3 => self.faro.overcommit_depth(),
        };
        depth.min(ctx.max_committed_per_chip())
    }

    /// In-order composition (VAS, PAS, SPK1): walk tags in arrival order; a chip
    /// conflict either stalls the round (VAS, SPK1) or skips the page (PAS).
    fn schedule_in_order(
        &self,
        ctx: &SchedulerContext<'_>,
        skip_conflicts: bool,
    ) -> Vec<Commitment> {
        let capacity = self.per_chip_capacity(ctx);
        let check_war = !matches!(self.kind, SchedulerKind::Vas);
        let mut newly = vec![0usize; ctx.chip_count()];
        let mut out = Vec::new();
        let horizon = horizon(ctx);
        for tag in ctx.tags().take(horizon) {
            let is_write = tag.host.direction.is_write();
            for page in tag.uncommitted_pages() {
                let chip = tag.placements[page as usize].chip;
                if ctx.outstanding(chip) + newly[chip] >= capacity {
                    if skip_conflicts {
                        continue;
                    }
                    return out;
                }
                if check_war
                    && is_write
                    && write_after_read_blocked(ctx, tag.id, tag.host.lpn_at(page).value())
                {
                    // §4.4 policy: defer only the hazard-blocked page.
                    continue;
                }
                newly[chip] += 1;
                out.push(Commitment { tag: tag.id, page });
            }
        }
        out
    }

    /// Resource-driven composition (SPK2, SPK3): bucket candidate pages by chip
    /// with a full scan, then visit every chip in traversal order.
    fn schedule_resource_driven(&self, ctx: &SchedulerContext<'_>) -> Vec<Commitment> {
        let capacity = self.per_chip_capacity(ctx);
        let horizon = horizon(ctx);
        let chip_count = ctx.chip_count();
        let mut per_chip: Vec<Vec<FaroCandidate>> = vec![Vec::new(); chip_count];

        for (rank, tag) in ctx.tags().take(horizon).enumerate() {
            let is_write = tag.host.direction.is_write();
            for page in tag.uncommitted_pages() {
                if is_write && write_after_read_blocked(ctx, tag.id, tag.host.lpn_at(page).value())
                {
                    continue;
                }
                let placement = tag.placements[page as usize];
                if placement.chip < chip_count {
                    per_chip[placement.chip].push(FaroCandidate {
                        tag: tag.id,
                        page,
                        die: placement.die,
                        plane: placement.plane,
                        arrival_rank: rank,
                    });
                }
            }
        }

        let mut out = Vec::new();
        let order: Vec<usize> = match &self.traversal {
            Some(t) => t.order().to_vec(),
            None => (0..chip_count).collect(),
        };
        for chip in order {
            let candidates = &per_chip[chip];
            if candidates.is_empty() {
                continue;
            }
            let room = capacity.saturating_sub(ctx.outstanding(chip));
            if room == 0 {
                continue;
            }
            if self.uses_faro() {
                for (tag, page) in self.faro.select(candidates, room) {
                    out.push(Commitment { tag, page });
                }
            } else if let Some(best) = candidates.iter().min_by_key(|c| (c.arrival_rank, c.page)) {
                out.push(Commitment {
                    tag: best.tag,
                    page: best.page,
                });
            }
        }
        out
    }
}

impl IoScheduler for ReferenceScheduler {
    fn name(&self) -> &'static str {
        match self.kind {
            SchedulerKind::Vas => "VAS-ref",
            SchedulerKind::Pas => "PAS-ref",
            SchedulerKind::Spk1 => "SPK1-ref",
            SchedulerKind::Spk2 => "SPK2-ref",
            SchedulerKind::Spk3 => "SPK3-ref",
        }
    }

    fn initialize(&mut self, geometry: &FlashGeometry) {
        if self.uses_rios() {
            self.traversal = Some(RiosTraversal::new(geometry));
        }
    }

    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        // The reference twin deliberately stays naive (and allocating): its
        // value is obvious correctness, not speed.
        let commitments = if self.uses_rios() {
            self.schedule_resource_driven(ctx)
        } else {
            self.schedule_in_order(ctx, matches!(self.kind, SchedulerKind::Pas))
        };
        out.extend(commitments);
    }

    fn supports_readdressing(&self) -> bool {
        // Mirror the optimized schedulers so the substrate applies the same GC
        // readdressing treatment to both twins.
        matches!(
            self.kind,
            SchedulerKind::Spk1 | SchedulerKind::Spk2 | SchedulerKind::Spk3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_flash::Lpn;
    use sprinkler_sim::SimTime;
    use sprinkler_ssd::queue::DeviceQueue;
    use sprinkler_ssd::request::{Direction, HostRequest, Placement};
    use sprinkler_ssd::CommitmentLedger;

    fn admit(queue: &mut DeviceQueue, id: u64, dir: Direction, lpn: u64, chips: &[usize]) {
        let host = HostRequest::new(id, SimTime::ZERO, dir, Lpn::new(lpn), chips.len() as u32);
        let placements = chips
            .iter()
            .map(|&chip| Placement {
                chip,
                channel: 0,
                way: chip as u32,
                die: 0,
                plane: (chip % 4) as u32,
            })
            .collect();
        assert!(queue.admit(TagId(id), host, SimTime::ZERO, placements));
    }

    fn schedule(kind: SchedulerKind, queue: &DeviceQueue) -> Vec<Commitment> {
        let geometry = FlashGeometry::small_test();
        let ledger = CommitmentLedger::new(geometry.total_chips(), 8);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue,
            ledger: &ledger,
        };
        let mut reference = ReferenceScheduler::new(kind);
        reference.initialize(&geometry);
        reference.schedule(&ctx)
    }

    /// The reference twins agree with the optimized schedulers on a small mixed
    /// queue (the exhaustive randomized comparison lives in tests/properties.rs).
    #[test]
    fn reference_matches_optimized_on_a_mixed_queue() {
        use crate::{PhysicalAddressScheduler, SprinklerScheduler, VirtualAddressScheduler};

        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, 0, &[0, 1]);
        admit(&mut queue, 1, Direction::Write, 1, &[2, 3]); // page 0 WAR-blocked
        admit(&mut queue, 2, Direction::Read, 20, &[0, 2]);

        let geometry = FlashGeometry::small_test();
        let ledger = CommitmentLedger::new(geometry.total_chips(), 8);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue: &queue,
            ledger: &ledger,
        };

        let mut optimized: Vec<Box<dyn IoScheduler>> = vec![
            Box::new(VirtualAddressScheduler::new()),
            Box::new(PhysicalAddressScheduler::new()),
            Box::new(SprinklerScheduler::spk1()),
            Box::new(SprinklerScheduler::spk2()),
            Box::new(SprinklerScheduler::spk3()),
        ];
        for (kind, fast) in SchedulerKind::ALL.iter().zip(optimized.iter_mut()) {
            fast.initialize(&geometry);
            let fast_out = fast.schedule(&ctx);
            let ref_out = schedule(*kind, &queue);
            assert_eq!(fast_out, ref_out, "{kind} diverges from its reference");
        }
    }

    #[test]
    fn names_and_capabilities_mirror_the_twins() {
        for kind in SchedulerKind::ALL {
            let reference = ReferenceScheduler::new(kind);
            assert!(reference.name().ends_with("-ref"));
            assert!(reference.name().starts_with(kind.label()));
            assert_eq!(
                reference.supports_readdressing(),
                kind.build().supports_readdressing()
            );
        }
    }

    #[test]
    fn naive_hazard_checks_match_their_definitions() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, 100, &[0, 1]);
        admit(&mut queue, 1, Direction::Write, 101, &[2]);
        let geometry = FlashGeometry::small_test();
        let ledger = CommitmentLedger::new(geometry.total_chips(), 8);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue: &queue,
            ledger: &ledger,
        };
        assert_eq!(horizon(&ctx), 2);
        assert!(write_after_read_blocked(&ctx, TagId(1), 101));
        assert!(!write_after_read_blocked(&ctx, TagId(1), 102));
        assert!(!write_after_read_blocked(&ctx, TagId(0), 100));
    }
}
