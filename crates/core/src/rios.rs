//! RIOS — Resource-driven I/O Scheduling (§4.1).
//!
//! RIOS composes and commits memory requests per *flash chip* rather than per host
//! I/O request.  To avoid serializing on any single channel bus, it visits the
//! chips that share the same offset (way) in each channel across all channels
//! first, then increases the offset — so consecutive commitments stripe across
//! channels (channel stripping) and successive offsets pipeline within each channel
//! (channel pipelining).

use serde::{Deserialize, Serialize};
use sprinkler_flash::FlashGeometry;

/// The chip visit order used by RIOS.
///
/// # Example
///
/// ```
/// use sprinkler_core::RiosTraversal;
/// use sprinkler_flash::FlashGeometry;
///
/// // 2 channels × 2 chips: visit way 0 of both channels, then way 1 of both.
/// let t = RiosTraversal::new(&FlashGeometry::small_test());
/// assert_eq!(t.order(), &[0, 2, 1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RiosTraversal {
    order: Vec<usize>,
    /// Inverse permutation: `position[chip]` is the visit rank of `chip`.
    position: Vec<usize>,
}

impl RiosTraversal {
    /// Builds the traversal order for a geometry.
    pub fn new(geometry: &FlashGeometry) -> Self {
        let mut order = Vec::with_capacity(geometry.total_chips());
        for way in 0..geometry.chips_per_channel {
            for channel in 0..geometry.channels {
                order.push(geometry.chip_index(channel as u32, way as u32));
            }
        }
        let mut position = vec![0; order.len()];
        for (rank, &chip) in order.iter().enumerate() {
            position[chip] = rank;
        }
        RiosTraversal { order, position }
    }

    /// The flat chip indices in visit order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The visit rank of a chip: `order()[position(chip)] == chip`.  Lets sparse
    /// chip sets be visited in traversal order without walking all chips.
    /// Returns `None` for chips outside the geometry.
    pub fn position(&self, chip: usize) -> Option<usize> {
        self.position.get(chip).copied()
    }

    /// The whole inverse permutation as a slice (`positions()[chip]` is the
    /// visit rank of `chip`), for hot loops that look up many chips per round
    /// without the per-call `Option`.
    pub fn positions(&self) -> &[usize] {
        &self.position
    }

    /// Number of chips covered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the traversal covers no chips.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates the chips in visit order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_chip_exactly_once() {
        let g = FlashGeometry::paper_default();
        let t = RiosTraversal::new(&g);
        assert_eq!(t.len(), g.total_chips());
        assert!(!t.is_empty());
        let mut sorted: Vec<usize> = t.iter().collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.total_chips()).collect::<Vec<_>>());
    }

    #[test]
    fn position_is_the_inverse_of_order() {
        let g = FlashGeometry::paper_default();
        let t = RiosTraversal::new(&g);
        for (rank, &chip) in t.order().iter().enumerate() {
            assert_eq!(t.position(chip), Some(rank));
        }
        assert_eq!(t.position(g.total_chips()), None);
    }

    #[test]
    fn same_offset_chips_come_before_the_next_offset() {
        let g = FlashGeometry::paper_default();
        let t = RiosTraversal::new(&g);
        let channels = g.channels;
        // The first `channels` visited chips must all be way 0, one per channel.
        let first: Vec<usize> = t.iter().take(channels).collect();
        for (i, &chip) in first.iter().enumerate() {
            let loc = g.chip_location(chip);
            assert_eq!(loc.way, 0);
            assert_eq!(loc.channel as usize, i);
        }
        // The next block is way 1.
        let second: Vec<usize> = t.iter().skip(channels).take(channels).collect();
        for &chip in &second {
            assert_eq!(g.chip_location(chip).way, 1);
        }
    }

    #[test]
    fn consecutive_visits_use_different_channels() {
        let g = FlashGeometry::paper_default();
        let t = RiosTraversal::new(&g);
        for pair in t.order().windows(2) {
            let a = g.chip_location(pair[0]);
            let b = g.chip_location(pair[1]);
            assert_ne!(
                (a.channel, a.way),
                (b.channel, b.way),
                "traversal must never repeat a chip back-to-back"
            );
        }
    }
}
