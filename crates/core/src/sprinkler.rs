//! The Sprinkler scheduler: RIOS + FARO (§4).
//!
//! Sprinkler "sprinkles" memory requests across the SSD's internal resources:
//!
//! * with **RIOS** enabled it ignores the I/O order of the device-level queue and
//!   composes/commits memory requests per flash chip, visiting chips in the
//!   channel-offset-first traversal of [`RiosTraversal`] so that commits stripe
//!   across channels and pipeline within them;
//! * with **FARO** enabled it over-commits several memory requests per chip —
//!   prioritized by overlap depth, then connectivity — so the flash controller can
//!   coalesce them into a single die-interleaved, multi-plane transaction;
//! * with both disabled pieces it degrades to the corresponding SPK1/SPK2 variants
//!   the paper evaluates.
//!
//! Sprinkler also implements the readdressing callback (§4.3): when garbage
//! collection migrates live data across planes the substrate notifies the
//! scheduler, which keeps its resource-driven decisions accurate.

use std::sync::Arc;

use sprinkler_flash::FlashGeometry;
use sprinkler_sim::TelemetryCounters;
use sprinkler_ssd::ftl::PageMigration;
use sprinkler_ssd::request::TagId;
use sprinkler_ssd::scheduler::{Commitment, IoScheduler, SchedulerContext};

use crate::faro::{FaroCandidate, FaroConfig, FaroScratch, FaroSelector};
use crate::hazard::HazardFilter;
use crate::rios::RiosTraversal;

/// The Sprinkler device-level scheduler (SPK1 / SPK2 / SPK3).
///
/// Scheduling rounds are allocation-free after warm-up: the per-chip candidate
/// buckets, the traversal cursor, and the in-order commit counters are reusable
/// scratch buffers owned by the scheduler, and candidates are pulled from the
/// device queue's incremental per-chip index instead of re-scanning every queued
/// tag.  Per-round cost is therefore proportional to the *newly schedulable
/// work*, not to queue depth × pages or to the chip population.
#[derive(Debug, Clone)]
pub struct SprinklerScheduler {
    use_rios: bool,
    use_faro: bool,
    faro: FaroSelector,
    hazards: HazardFilter,
    traversal: Option<RiosTraversal>,
    readdress_events: u64,
    /// Scratch: one entry per chip with schedulable work this round —
    /// (traversal rank, chip, start, end) where `start..end` indexes the flat
    /// candidate buffer below.
    chip_scratch: Vec<(usize, usize, usize, usize)>,
    /// Scratch: this round's FARO candidates for all chips, flat, grouped by
    /// the ranges recorded in `chip_scratch`.
    cand_scratch: Vec<FaroCandidate>,
    /// Scratch: per-chip commits made this round by the in-order path.  Only the
    /// chips listed in `newly_dirty` are non-zero between rounds.
    newly: Vec<usize>,
    newly_dirty: Vec<usize>,
    /// Scratch: FARO's per-selection working buffers.
    faro_scratch: FaroScratch,
    /// Scratch: FARO's per-chip picks before they become commitments.
    faro_picks: Vec<(TagId, u32)>,
    /// Hot-path counters shared with the SSD substrate, when attached.
    telemetry: Option<Arc<TelemetryCounters>>,
}

impl SprinklerScheduler {
    /// Full Sprinkler: RIOS and FARO together (the paper's SPK3).
    pub fn spk3() -> Self {
        Self::with_components(true, true, FaroConfig::default())
    }

    /// FARO-only Sprinkler (SPK1): over-commitment without resource-driven
    /// composition.
    pub fn spk1() -> Self {
        Self::with_components(false, true, FaroConfig::default())
    }

    /// RIOS-only Sprinkler (SPK2): resource-driven composition without
    /// over-commitment.
    pub fn spk2() -> Self {
        Self::with_components(true, false, FaroConfig::default())
    }

    /// Builds a Sprinkler variant with explicit component switches and FARO
    /// parameters.
    pub fn with_components(use_rios: bool, use_faro: bool, faro: FaroConfig) -> Self {
        SprinklerScheduler {
            use_rios,
            use_faro,
            faro: FaroSelector::new(faro),
            hazards: HazardFilter::new(),
            traversal: None,
            readdress_events: 0,
            chip_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            newly: Vec::new(),
            newly_dirty: Vec::new(),
            faro_scratch: FaroScratch::default(),
            faro_picks: Vec::new(),
            telemetry: None,
        }
    }

    #[inline]
    fn count(&self, pick: impl Fn(&TelemetryCounters) -> &std::sync::atomic::AtomicU64) {
        if let Some(telemetry) = &self.telemetry {
            TelemetryCounters::incr(pick(telemetry));
        }
    }

    /// Whether RIOS (resource-driven composition) is enabled.
    pub fn uses_rios(&self) -> bool {
        self.use_rios
    }

    /// Whether FARO (over-commitment) is enabled.
    pub fn uses_faro(&self) -> bool {
        self.use_faro
    }

    /// Number of readdressing callbacks received so far.
    pub fn readdress_events(&self) -> u64 {
        self.readdress_events
    }

    fn per_chip_capacity(&self) -> usize {
        if self.use_faro {
            self.faro.overcommit_depth()
        } else {
            1
        }
    }

    /// SPK1 path: in-order composition (the parallelism dependency remains) but
    /// with over-commitment so controllers can still build high-FLP transactions.
    fn schedule_in_order(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        let capacity = self.per_chip_capacity().min(ctx.max_committed_per_chip());
        if self.newly.len() < ctx.chip_count() {
            self.newly.resize(ctx.chip_count(), 0);
        }
        for &chip in &self.newly_dirty {
            self.newly[chip] = 0;
        }
        self.newly_dirty.clear();
        let bound = self.hazards.horizon_seq(ctx);
        for tag in ctx.tags() {
            if tag.seq > bound {
                self.count(|t| &t.hazard_horizon_clips);
                break;
            }
            let is_write = tag.host.direction.is_write();
            for page in tag.uncommitted_pages() {
                let chip = tag.placements[page as usize].chip;
                if ctx.outstanding(chip) + self.newly[chip] >= capacity {
                    // Like VAS, composition is in-order: the first request that
                    // cannot be committed stalls everything behind it.
                    return;
                }
                if is_write
                    && self.hazards.write_after_read_blocked_seq(
                        ctx,
                        tag.seq,
                        tag.host.lpn_at(page).value(),
                    )
                {
                    // §4.4 hazard policy: a write-after-read conflict is a data
                    // dependency on one logical page, not a resource collision —
                    // defer only the blocked page and keep composing.
                    self.count(|t| &t.hazard_war_deferrals);
                    continue;
                }
                if self.newly[chip] == 0 {
                    self.newly_dirty.push(chip);
                }
                self.newly[chip] += 1;
                out.push(Commitment { tag: tag.id, page });
            }
        }
    }

    /// RIOS path (SPK2/SPK3): visit the chips that have uncommitted candidate
    /// pages — straight from the device queue's per-chip index — in traversal
    /// order, committing up to the per-chip capacity; FARO decides which
    /// candidates win when there are more than fit.
    fn schedule_resource_driven(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        let capacity = self.per_chip_capacity().min(ctx.max_committed_per_chip());
        let bound = self.hazards.horizon_seq(ctx);
        let chip_count = ctx.chip_count();

        // Pass 1 — one ordered walk of the per-chip candidate index: filter
        // each chip's candidates (horizon, room, §4.4 write-after-read) into a
        // flat scratch buffer, remembering each chip's range and traversal rank.
        self.chip_scratch.clear();
        self.cand_scratch.clear();
        for (chip, entries) in ctx.queue.candidate_groups() {
            if chip >= chip_count {
                continue;
            }
            let rank = match &self.traversal {
                Some(t) => match t.position(chip) {
                    Some(rank) => rank,
                    None => continue,
                },
                None => chip,
            };
            if capacity.saturating_sub(ctx.outstanding(chip)) == 0 {
                continue;
            }
            let start = self.cand_scratch.len();
            let mut clipped = false;
            for &(seq, page, tag_raw, slot) in entries {
                if seq > bound {
                    // Candidates are ordered by admission seq: everything past
                    // the FUA horizon is off limits.
                    clipped = true;
                    break;
                }
                let Some(tag) = ctx.queue.state_at(slot) else {
                    continue;
                };
                debug_assert_eq!(tag.id.0, tag_raw, "stale slot handle in chip index");
                if tag.host.direction.is_write()
                    && self.hazards.write_after_read_blocked_seq(
                        ctx,
                        seq,
                        tag.host.lpn_at(page).value(),
                    )
                {
                    // §4.4: defer only the hazard-blocked page.
                    if let Some(telemetry) = &self.telemetry {
                        TelemetryCounters::incr(&telemetry.hazard_war_deferrals);
                    }
                    continue;
                }
                let placement = tag.placements[page as usize];
                self.cand_scratch.push(FaroCandidate {
                    tag: tag.id,
                    page,
                    die: placement.die,
                    plane: placement.plane,
                    arrival_rank: seq as usize,
                });
                if !self.use_faro {
                    // No over-commitment: the candidates arrive in
                    // (admission seq, page) order, so the first non-blocked one
                    // is the oldest — nothing further can win on this chip.
                    break;
                }
            }
            let end = self.cand_scratch.len();
            if clipped {
                if let Some(telemetry) = &self.telemetry {
                    TelemetryCounters::incr(&telemetry.hazard_horizon_clips);
                }
            }
            if end > start {
                self.chip_scratch.push((rank, chip, start, end));
            }
        }

        // Pass 2 — visit the chips in traversal order and commit.
        self.chip_scratch.sort_unstable();
        for &(_, chip, start, end) in &self.chip_scratch {
            let candidates = &self.cand_scratch[start..end];
            if self.use_faro {
                let room = capacity.saturating_sub(ctx.outstanding(chip));
                self.faro_picks.clear();
                let fast = self.faro.select_into(
                    candidates,
                    room,
                    &mut self.faro_picks,
                    &mut self.faro_scratch,
                );
                if fast {
                    if let Some(telemetry) = &self.telemetry {
                        TelemetryCounters::incr(&telemetry.faro_fast_path_rounds);
                    }
                }
                out.extend(
                    self.faro_picks
                        .iter()
                        .map(|&(tag, page)| Commitment { tag, page }),
                );
            } else {
                out.push(Commitment {
                    tag: candidates[0].tag,
                    page: candidates[0].page,
                });
            }
        }
    }
}

impl IoScheduler for SprinklerScheduler {
    fn name(&self) -> &'static str {
        match (self.use_rios, self.use_faro) {
            (false, true) => "SPK1",
            (true, false) => "SPK2",
            (true, true) => "SPK3",
            (false, false) => "SPK0",
        }
    }

    fn initialize(&mut self, geometry: &FlashGeometry) {
        self.traversal = Some(RiosTraversal::new(geometry));
    }

    fn attach_telemetry(&mut self, telemetry: &Arc<TelemetryCounters>) {
        self.telemetry = Some(Arc::clone(telemetry));
    }

    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        if self.use_rios {
            self.schedule_resource_driven(ctx, out);
        } else {
            self.schedule_in_order(ctx, out);
        }
    }

    fn supports_readdressing(&self) -> bool {
        true
    }

    fn on_readdress(&mut self, _migration: &PageMigration) {
        // The substrate refreshes the stale placement previews of queued tags when
        // the callback fires; Sprinkler only counts the events because its
        // per-round, per-chip grouping is rebuilt from those previews anyway.
        self.readdress_events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_flash::Lpn;
    use sprinkler_sim::SimTime;
    use sprinkler_ssd::queue::DeviceQueue;
    use sprinkler_ssd::request::{Direction, HostRequest, Placement, TagId};
    use sprinkler_ssd::CommitmentLedger;

    fn admit(queue: &mut DeviceQueue, id: u64, dir: Direction, placements: Vec<(usize, u32, u32)>) {
        let host = HostRequest::new(
            id,
            SimTime::ZERO,
            dir,
            Lpn::new(id * 1000),
            placements.len() as u32,
        );
        let placements = placements
            .into_iter()
            .map(|(chip, die, plane)| Placement {
                chip,
                channel: 0,
                way: chip as u32,
                die,
                plane,
            })
            .collect();
        assert!(queue.admit(TagId(id), host, SimTime::ZERO, placements));
    }

    fn run_scheduler(
        scheduler: &mut SprinklerScheduler,
        queue: &DeviceQueue,
        outstanding: &[usize],
    ) -> Vec<Commitment> {
        let geometry = FlashGeometry::small_test();
        scheduler.initialize(&geometry);
        let mut ledger = CommitmentLedger::from_outstanding(32, outstanding);
        for (chip, &n) in outstanding.iter().enumerate() {
            ledger.set_busy(chip, n > 0);
        }
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue,
            ledger: &ledger,
        };
        scheduler.schedule(&ctx)
    }

    #[test]
    fn variant_names_and_components() {
        assert_eq!(SprinklerScheduler::spk1().name(), "SPK1");
        assert_eq!(SprinklerScheduler::spk2().name(), "SPK2");
        assert_eq!(SprinklerScheduler::spk3().name(), "SPK3");
        assert!(SprinklerScheduler::spk1().uses_faro());
        assert!(!SprinklerScheduler::spk1().uses_rios());
        assert!(SprinklerScheduler::spk2().uses_rios());
        assert!(!SprinklerScheduler::spk2().uses_faro());
        assert!(SprinklerScheduler::spk3().uses_rios() && SprinklerScheduler::spk3().uses_faro());
        assert_eq!(
            SprinklerScheduler::with_components(false, false, FaroConfig::default()).name(),
            "SPK0"
        );
    }

    #[test]
    fn spk3_commits_beyond_io_boundaries() {
        let mut queue = DeviceQueue::new(8);
        // Tag 0 collides with tag 1 on chip 0; tag 2 targets chips 2 and 3.
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (1, 0, 0)]);
        admit(&mut queue, 1, Direction::Read, vec![(0, 0, 1), (3, 0, 0)]);
        admit(&mut queue, 2, Direction::Read, vec![(2, 0, 0), (3, 0, 1)]);
        let mut spk3 = SprinklerScheduler::spk3();
        let out = run_scheduler(&mut spk3, &queue, &[0, 0, 0, 0]);
        // Every chip receives work; the chip-0 collision does not stop chips 2/3,
        // and over-commitment allows both chip-0 requests to be committed.
        let chips: std::collections::HashSet<usize> = out
            .iter()
            .map(|c| queue.tag(c.tag).unwrap().placements[c.page as usize].chip)
            .collect();
        assert_eq!(chips.len(), 4);
        assert_eq!(out.len(), 6, "all six pages are committed in one round");
    }

    #[test]
    fn spk2_commits_at_most_one_request_per_chip() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (0, 0, 1)]);
        admit(&mut queue, 1, Direction::Read, vec![(0, 1, 0), (2, 0, 0)]);
        let mut spk2 = SprinklerScheduler::spk2();
        let out = run_scheduler(&mut spk2, &queue, &[0, 0, 0, 0]);
        let chip0_commits = out
            .iter()
            .filter(|c| queue.tag(c.tag).unwrap().placements[c.page as usize].chip == 0)
            .count();
        assert_eq!(chip0_commits, 1);
        // Chip 2 still gets its request (resource-driven, not I/O ordered).
        assert!(out
            .iter()
            .any(|c| queue.tag(c.tag).unwrap().placements[c.page as usize].chip == 2));
    }

    #[test]
    fn spk2_skips_chips_with_outstanding_work() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (1, 0, 0)]);
        let mut spk2 = SprinklerScheduler::spk2();
        let out = run_scheduler(&mut spk2, &queue, &[1, 0, 0, 0]);
        assert_eq!(out.len(), 1);
        assert_eq!(
            queue.tag(out[0].tag).unwrap().placements[out[0].page as usize].chip,
            1
        );
    }

    #[test]
    fn spk1_overcommits_but_blocks_in_order() {
        let mut queue = DeviceQueue::new(8);
        // Tag 0: two requests to chip 0 (different planes) — both can over-commit.
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (0, 0, 1)]);
        // Tag 1 targets chip 1.
        admit(&mut queue, 1, Direction::Read, vec![(1, 0, 0)]);
        let mut spk1 = SprinklerScheduler::spk1();
        let out = run_scheduler(&mut spk1, &queue, &[0, 0, 0, 0]);
        assert_eq!(
            out.len(),
            3,
            "FARO depth allows both chip-0 requests plus tag 1"
        );

        // With chip 0 saturated to the FARO depth, SPK1 stalls at the head:
        let depth = SprinklerScheduler::spk1().faro.overcommit_depth();
        let out = run_scheduler(&mut spk1, &queue, &[depth, 0, 0, 0]);
        assert!(out.is_empty(), "in-order composition blocks behind chip 0");
    }

    #[test]
    fn spk3_prefers_high_overlap_tags_under_pressure() {
        let mut queue = DeviceQueue::new(8);
        // Tag 0 concentrates on one plane of chip 0, tag 1 spans two dies.
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (0, 0, 0)]);
        admit(&mut queue, 1, Direction::Read, vec![(0, 0, 1), (0, 1, 1)]);
        let mut spk3 = SprinklerScheduler::with_components(
            true,
            true,
            FaroConfig {
                overcommit_depth: 2,
            },
        );
        let out = run_scheduler(&mut spk3, &queue, &[0, 0, 0, 0]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|c| c.tag == TagId(1)));
    }

    #[test]
    fn readdress_callback_is_counted() {
        let mut spk3 = SprinklerScheduler::spk3();
        assert!(spk3.supports_readdressing());
        let migration = PageMigration {
            lpn: Lpn::new(1),
            from: sprinkler_flash::PhysicalPageAddr::default(),
            to: sprinkler_flash::PhysicalPageAddr::default(),
            crossed_plane: true,
        };
        spk3.on_readdress(&migration);
        spk3.on_readdress(&migration);
        assert_eq!(spk3.readdress_events(), 2);
    }

    #[test]
    fn write_after_read_blocks_resource_driven_writes() {
        let mut queue = DeviceQueue::new(8);
        // Tag 0 reads LPN 0..2, tag 1 writes LPN 1: the write must wait.
        let read = HostRequest::new(0, SimTime::ZERO, Direction::Read, Lpn::new(0), 2);
        assert!(queue.admit(
            TagId(0),
            read,
            SimTime::ZERO,
            vec![
                Placement {
                    chip: 0,
                    channel: 0,
                    way: 0,
                    die: 0,
                    plane: 0,
                },
                Placement {
                    chip: 1,
                    channel: 0,
                    way: 1,
                    die: 0,
                    plane: 0,
                },
            ],
        ));
        let write = HostRequest::new(1, SimTime::ZERO, Direction::Write, Lpn::new(1), 1);
        assert!(queue.admit(
            TagId(1),
            write,
            SimTime::ZERO,
            vec![Placement {
                chip: 2,
                channel: 1,
                way: 0,
                die: 0,
                plane: 0,
            }],
        ));
        let mut spk3 = SprinklerScheduler::spk3();
        let out = run_scheduler(&mut spk3, &queue, &[0, 0, 0, 0]);
        assert!(out.iter().all(|c| c.tag != TagId(1)));
        assert_eq!(out.len(), 2);
    }

    /// Locks in the unified §4.4 hazard policy on *both* composition paths: a
    /// two-page write with exactly one WAR-blocked page commits the unblocked
    /// page and defers only the blocked one — the in-order path no longer stalls
    /// the whole round, and the resource-driven path behaves identically.
    #[test]
    fn war_hazard_defers_only_the_blocked_page_on_both_paths() {
        let build_queue = || {
            let mut queue = DeviceQueue::new(8);
            // Tag 0 reads LPN 0 (uncommitted) on chip 3.
            let read = HostRequest::new(0, SimTime::ZERO, Direction::Read, Lpn::new(0), 1);
            assert!(queue.admit(
                TagId(0),
                read,
                SimTime::ZERO,
                vec![Placement {
                    chip: 3,
                    channel: 1,
                    way: 1,
                    die: 0,
                    plane: 0,
                }],
            ));
            // Tag 1 writes LPN 0..2: page 0 is WAR-blocked, page 1 is free.
            let write = HostRequest::new(1, SimTime::ZERO, Direction::Write, Lpn::new(0), 2);
            assert!(queue.admit(
                TagId(1),
                write,
                SimTime::ZERO,
                vec![
                    Placement {
                        chip: 0,
                        channel: 0,
                        way: 0,
                        die: 0,
                        plane: 0,
                    },
                    Placement {
                        chip: 1,
                        channel: 0,
                        way: 1,
                        die: 0,
                        plane: 0,
                    },
                ],
            ));
            queue
        };
        for mut scheduler in [SprinklerScheduler::spk1(), SprinklerScheduler::spk3()] {
            let queue = build_queue();
            let out = run_scheduler(&mut scheduler, &queue, &[0, 0, 0, 0]);
            let tag1_pages: Vec<u32> = out
                .iter()
                .filter(|c| c.tag == TagId(1))
                .map(|c| c.page)
                .collect();
            assert_eq!(
                tag1_pages,
                vec![1],
                "{}: exactly the unblocked page of the write must commit",
                scheduler.name()
            );
            assert!(
                out.contains(&Commitment {
                    tag: TagId(0),
                    page: 0
                }),
                "{}: the read must still be composed",
                scheduler.name()
            );
        }
    }
}
