//! The Sprinkler scheduler: RIOS + FARO (§4).
//!
//! Sprinkler "sprinkles" memory requests across the SSD's internal resources:
//!
//! * with **RIOS** enabled it ignores the I/O order of the device-level queue and
//!   composes/commits memory requests per flash chip, visiting chips in the
//!   channel-offset-first traversal of [`RiosTraversal`] so that commits stripe
//!   across channels and pipeline within them;
//! * with **FARO** enabled it over-commits several memory requests per chip —
//!   prioritized by overlap depth, then connectivity — so the flash controller can
//!   coalesce them into a single die-interleaved, multi-plane transaction;
//! * with both disabled pieces it degrades to the corresponding SPK1/SPK2 variants
//!   the paper evaluates.
//!
//! Sprinkler also implements the readdressing callback (§4.3): when garbage
//! collection migrates live data across planes the substrate notifies the
//! scheduler, which keeps its resource-driven decisions accurate.

use std::sync::Arc;

use sprinkler_flash::FlashGeometry;
use sprinkler_sim::TelemetryCounters;
use sprinkler_ssd::ftl::PageMigration;
use sprinkler_ssd::queue::{read_filter_bucket, SLOT_WRITE};
use sprinkler_ssd::request::TagId;
use sprinkler_ssd::scheduler::{Commitment, IoScheduler, SchedulerContext};
use sprinkler_ssd::{pri_die, pri_page, pri_plane, CandidateView};

use crate::faro::{FaroCandidate, FaroConfig, FaroScratch, FaroSelector};
use crate::hazard::HazardFilter;
use crate::rios::RiosTraversal;

/// Builds one FARO candidate from a candidate-index row: tag id from the slot
/// column, page/die/plane unpacked from the priority key, arrival rank from
/// the admission sequence.
#[inline]
fn candidate_at(cands: &CandidateView<'_>, slot_tags: &[u64], row: usize) -> FaroCandidate {
    let pri = cands.pri[row];
    FaroCandidate {
        tag: TagId(slot_tags[cands.slot[row] as usize]),
        page: pri_page(pri),
        die: pri_die(pri),
        plane: pri_plane(pri),
        arrival_rank: cands.seq[row] as usize,
    }
}

/// The Sprinkler device-level scheduler (SPK1 / SPK2 / SPK3).
///
/// Scheduling rounds are allocation-free after warm-up: the per-chip candidate
/// buckets, the traversal cursor, and the in-order commit counters are reusable
/// scratch buffers owned by the scheduler, and candidates are pulled from the
/// device queue's incremental per-chip index instead of re-scanning every queued
/// tag.  Per-round cost is therefore proportional to the *newly schedulable
/// work*, not to queue depth × pages or to the chip population.
#[derive(Debug, Clone)]
pub struct SprinklerScheduler {
    use_rios: bool,
    use_faro: bool,
    faro: FaroSelector,
    hazards: HazardFilter,
    traversal: Option<RiosTraversal>,
    readdress_events: u64,
    /// Scratch: rank-indexed occupancy bitmap — bit `r` is set when the chip
    /// with traversal rank `r` has schedulable work this round.  Scanning the
    /// words with `trailing_zeros` visits the round's chips in traversal order
    /// without sorting anything.
    round_bits: Vec<u64>,
    /// Scratch: rank → chip back-map for the bits set this round (entries are
    /// only read under a set bit, so the array is never cleared).
    round_chip: Vec<u32>,
    /// Scratch: one chip's surviving FARO candidates, materialized only when a
    /// chip has more than one (single-survivor chips commit straight from the
    /// columns).
    cand_scratch: Vec<FaroCandidate>,
    /// Scratch: per-chip commits made this round by the in-order path.  Only the
    /// chips listed in `newly_dirty` are non-zero between rounds.
    newly: Vec<usize>,
    newly_dirty: Vec<usize>,
    /// Scratch: FARO's per-selection working buffers.
    faro_scratch: FaroScratch,
    /// Scratch: FARO's per-chip picks before they become commitments.
    faro_picks: Vec<(TagId, u32)>,
    /// Hot-path counters shared with the SSD substrate, when attached.
    telemetry: Option<Arc<TelemetryCounters>>,
}

impl SprinklerScheduler {
    /// Full Sprinkler: RIOS and FARO together (the paper's SPK3).
    pub fn spk3() -> Self {
        Self::with_components(true, true, FaroConfig::default())
    }

    /// FARO-only Sprinkler (SPK1): over-commitment without resource-driven
    /// composition.
    pub fn spk1() -> Self {
        Self::with_components(false, true, FaroConfig::default())
    }

    /// RIOS-only Sprinkler (SPK2): resource-driven composition without
    /// over-commitment.
    pub fn spk2() -> Self {
        Self::with_components(true, false, FaroConfig::default())
    }

    /// Builds a Sprinkler variant with explicit component switches and FARO
    /// parameters.
    pub fn with_components(use_rios: bool, use_faro: bool, faro: FaroConfig) -> Self {
        SprinklerScheduler {
            use_rios,
            use_faro,
            faro: FaroSelector::new(faro),
            hazards: HazardFilter::new(),
            traversal: None,
            readdress_events: 0,
            round_bits: Vec::new(),
            round_chip: Vec::new(),
            cand_scratch: Vec::new(),
            newly: Vec::new(),
            newly_dirty: Vec::new(),
            faro_scratch: FaroScratch::default(),
            faro_picks: Vec::new(),
            telemetry: None,
        }
    }

    #[inline]
    fn count(&self, pick: impl Fn(&TelemetryCounters) -> &std::sync::atomic::AtomicU64) {
        if let Some(telemetry) = &self.telemetry {
            TelemetryCounters::incr(pick(telemetry));
        }
    }

    /// Whether RIOS (resource-driven composition) is enabled.
    pub fn uses_rios(&self) -> bool {
        self.use_rios
    }

    /// Whether FARO (over-commitment) is enabled.
    pub fn uses_faro(&self) -> bool {
        self.use_faro
    }

    /// Number of readdressing callbacks received so far.
    pub fn readdress_events(&self) -> u64 {
        self.readdress_events
    }

    fn per_chip_capacity(&self) -> usize {
        if self.use_faro {
            self.faro.overcommit_depth()
        } else {
            1
        }
    }

    /// SPK1 path: in-order composition (the parallelism dependency remains) but
    /// with over-commitment so controllers can still build high-FLP transactions.
    fn schedule_in_order(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        let capacity = self.per_chip_capacity().min(ctx.max_committed_per_chip());
        if self.newly.len() < ctx.chip_count() {
            self.newly.resize(ctx.chip_count(), 0);
        }
        for &chip in &self.newly_dirty {
            self.newly[chip] = 0;
        }
        self.newly_dirty.clear();
        let bound = self.hazards.horizon_seq(ctx);
        for tag in ctx.tags() {
            if tag.seq > bound {
                self.count(|t| &t.hazard_horizon_clips);
                break;
            }
            let is_write = tag.host.direction.is_write();
            for page in tag.uncommitted_pages() {
                let chip = tag.placements[page as usize].chip;
                if ctx.outstanding(chip) + self.newly[chip] >= capacity {
                    // Like VAS, composition is in-order: the first request that
                    // cannot be committed stalls everything behind it.
                    return;
                }
                if is_write
                    && self.hazards.write_after_read_blocked_seq(
                        ctx,
                        tag.seq,
                        tag.host.lpn_at(page).value(),
                    )
                {
                    // §4.4 hazard policy: a write-after-read conflict is a data
                    // dependency on one logical page, not a resource collision —
                    // defer only the blocked page and keep composing.
                    self.count(|t| &t.hazard_war_deferrals);
                    continue;
                }
                if self.newly[chip] == 0 {
                    self.newly_dirty.push(chip);
                }
                self.newly[chip] += 1;
                out.push(Commitment { tag: tag.id, page });
            }
        }
    }

    /// RIOS path (SPK2/SPK3): visit the chips that have uncommitted candidate
    /// pages — straight from the device queue's columnar per-chip index — in
    /// traversal order, committing up to the per-chip capacity; FARO decides
    /// which candidates win when there are more than fit.
    ///
    /// The round is data-oriented end to end: both passes stream the queue's
    /// seq/pri/lpn/slot columns and the ledger's outstanding column as plain
    /// slices (no per-candidate `TagState` chase — page, die and plane are
    /// unpacked from the priority key, direction and tag id come from two
    /// byte/word slot columns).  Pass 1 marks each chip with headroom in a
    /// rank-indexed bitmap; pass 2 scans the bitmap words with
    /// `trailing_zeros` — visiting chips in traversal order without a sort —
    /// and filters each chip's rows (FUA horizon, §4.4 write-after-read) on
    /// the spot.  The dominant many-chip shape, one surviving candidate per
    /// chip, commits straight from the columns without building a
    /// [`FaroCandidate`] at all.
    fn schedule_resource_driven(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        let capacity = self.per_chip_capacity().min(ctx.max_committed_per_chip());
        let bound = self.hazards.horizon_seq(ctx);
        let chip_count = ctx.chip_count();
        let cands = ctx.queue.candidate_view();
        let reads = ctx.queue.read_hazards();
        let read_filter = ctx.queue.read_hazard_filter();
        let slot_flags = ctx.queue.slot_flag_bits();
        let slot_tags = ctx.queue.slot_tags();
        let outstanding = ctx.ledger.outstanding_slice();

        // Pass 1 — one walk of the active-chip list: mark every chip that has
        // commit headroom this round in the rank-indexed bitmap.  Ranks are a
        // permutation of the chips, so each bit maps back to exactly one chip.
        let positions = self.traversal.as_ref().map(RiosTraversal::positions);
        let rank_space = positions.map_or(chip_count, <[usize]>::len);
        let words = rank_space.div_ceil(64);
        if self.round_bits.len() < words {
            self.round_bits.resize(words, 0);
        }
        self.round_bits[..words].fill(0);
        if self.round_chip.len() < rank_space {
            self.round_chip.resize(rank_space, 0);
        }
        for &chip_index in cands.active {
            let chip = chip_index as usize;
            if chip >= chip_count {
                continue;
            }
            let rank = match positions {
                Some(pos) => match pos.get(chip) {
                    Some(&rank) => rank,
                    None => continue,
                },
                None => chip,
            };
            if outstanding[chip] as usize >= capacity {
                continue;
            }
            self.round_bits[rank >> 6] |= 1u64 << (rank & 63);
            self.round_chip[rank] = chip as u32;
        }

        // Pass 2 — visit the marked ranks ascending and commit.
        for word_index in 0..words {
            let mut word = self.round_bits[word_index];
            while word != 0 {
                let rank = (word_index << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                let chip = self.round_chip[rank] as usize;
                let range = cands.range(chip);

                // Straight-line path for the dominant many-chip shape: one
                // candidate row on the chip — filter it and commit straight
                // from the columns, no loop state, no FARO materialization.
                if range.len() == 1 {
                    let row = range.start;
                    let seq = cands.seq[row];
                    if seq > bound {
                        self.count(|t| &t.hazard_horizon_clips);
                        continue;
                    }
                    let slot = cands.slot[row] as usize;
                    if slot_flags[slot] & SLOT_WRITE != 0 {
                        let lpn = cands.lpn[row];
                        if read_filter[read_filter_bucket(lpn)] != 0
                            && HazardFilter::blocked_by_read(reads, lpn, seq)
                        {
                            self.count(|t| &t.hazard_war_deferrals);
                            continue;
                        }
                    }
                    if self.use_faro {
                        self.count(|t| &t.faro_fast_path_rounds);
                    }
                    out.push(Commitment {
                        tag: TagId(slot_tags[slot]),
                        page: pri_page(cands.pri[row]),
                    });
                    continue;
                }

                // Filter the chip's rows; materialize FARO candidates lazily —
                // only once a second survivor proves the chip needs ranking.
                self.cand_scratch.clear();
                let mut first_row = usize::MAX;
                let mut survivors = 0usize;
                for row in range {
                    let seq = cands.seq[row];
                    if seq > bound {
                        // Rows are ordered by admission seq: everything past
                        // the FUA horizon is off limits.
                        self.count(|t| &t.hazard_horizon_clips);
                        break;
                    }
                    let slot = cands.slot[row] as usize;
                    if slot_flags[slot] & SLOT_WRITE != 0 {
                        let lpn = cands.lpn[row];
                        // The counting filter rules out the (dominant)
                        // unblocked writes without a binary search.
                        if read_filter[read_filter_bucket(lpn)] != 0
                            && HazardFilter::blocked_by_read(reads, lpn, seq)
                        {
                            // §4.4: defer only the hazard-blocked page.
                            self.count(|t| &t.hazard_war_deferrals);
                            continue;
                        }
                    }
                    survivors += 1;
                    if survivors == 1 {
                        first_row = row;
                        if !self.use_faro {
                            // No over-commitment: the rows arrive in
                            // (admission seq, page) order, so the first
                            // non-blocked one is the oldest — nothing further
                            // can win on this chip.
                            break;
                        }
                        continue;
                    }
                    if survivors == 2 {
                        self.cand_scratch
                            .push(candidate_at(&cands, slot_tags, first_row));
                    }
                    self.cand_scratch.push(candidate_at(&cands, slot_tags, row));
                }

                match survivors {
                    0 => {}
                    1 => {
                        // A single candidate trivially satisfies FARO's
                        // fast-path condition (one tag, vacuous ordering) —
                        // commit it straight from the columns.
                        if self.use_faro {
                            self.count(|t| &t.faro_fast_path_rounds);
                        }
                        let slot = cands.slot[first_row] as usize;
                        out.push(Commitment {
                            tag: TagId(slot_tags[slot]),
                            page: pri_page(cands.pri[first_row]),
                        });
                    }
                    _ => {
                        let room = capacity - outstanding[chip] as usize;
                        self.faro_picks.clear();
                        let fast = self.faro.select_into(
                            &self.cand_scratch,
                            room,
                            &mut self.faro_picks,
                            &mut self.faro_scratch,
                        );
                        if fast {
                            self.count(|t| &t.faro_fast_path_rounds);
                        }
                        out.extend(
                            self.faro_picks
                                .iter()
                                .map(|&(tag, page)| Commitment { tag, page }),
                        );
                    }
                }
            }
        }
    }
}

impl IoScheduler for SprinklerScheduler {
    fn name(&self) -> &'static str {
        match (self.use_rios, self.use_faro) {
            (false, true) => "SPK1",
            (true, false) => "SPK2",
            (true, true) => "SPK3",
            (false, false) => "SPK0",
        }
    }

    fn initialize(&mut self, geometry: &FlashGeometry) {
        self.traversal = Some(RiosTraversal::new(geometry));
    }

    fn attach_telemetry(&mut self, telemetry: &Arc<TelemetryCounters>) {
        self.telemetry = Some(Arc::clone(telemetry));
    }

    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        if self.use_rios {
            self.schedule_resource_driven(ctx, out);
        } else {
            self.schedule_in_order(ctx, out);
        }
    }

    fn supports_readdressing(&self) -> bool {
        true
    }

    fn on_readdress(&mut self, _migration: &PageMigration) {
        // The substrate refreshes the stale placement previews of queued tags when
        // the callback fires; Sprinkler only counts the events because its
        // per-round, per-chip grouping is rebuilt from those previews anyway.
        self.readdress_events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_flash::Lpn;
    use sprinkler_sim::SimTime;
    use sprinkler_ssd::queue::DeviceQueue;
    use sprinkler_ssd::request::{Direction, HostRequest, Placement, TagId};
    use sprinkler_ssd::CommitmentLedger;

    fn admit(queue: &mut DeviceQueue, id: u64, dir: Direction, placements: Vec<(usize, u32, u32)>) {
        let host = HostRequest::new(
            id,
            SimTime::ZERO,
            dir,
            Lpn::new(id * 1000),
            placements.len() as u32,
        );
        let placements = placements
            .into_iter()
            .map(|(chip, die, plane)| Placement {
                chip,
                channel: 0,
                way: chip as u32,
                die,
                plane,
            })
            .collect();
        assert!(queue.admit(TagId(id), host, SimTime::ZERO, placements));
    }

    fn run_scheduler(
        scheduler: &mut SprinklerScheduler,
        queue: &DeviceQueue,
        outstanding: &[usize],
    ) -> Vec<Commitment> {
        let geometry = FlashGeometry::small_test();
        scheduler.initialize(&geometry);
        let mut ledger = CommitmentLedger::from_outstanding(32, outstanding);
        for (chip, &n) in outstanding.iter().enumerate() {
            ledger.set_busy(chip, n > 0);
        }
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue,
            ledger: &ledger,
        };
        scheduler.schedule(&ctx)
    }

    #[test]
    fn variant_names_and_components() {
        assert_eq!(SprinklerScheduler::spk1().name(), "SPK1");
        assert_eq!(SprinklerScheduler::spk2().name(), "SPK2");
        assert_eq!(SprinklerScheduler::spk3().name(), "SPK3");
        assert!(SprinklerScheduler::spk1().uses_faro());
        assert!(!SprinklerScheduler::spk1().uses_rios());
        assert!(SprinklerScheduler::spk2().uses_rios());
        assert!(!SprinklerScheduler::spk2().uses_faro());
        assert!(SprinklerScheduler::spk3().uses_rios() && SprinklerScheduler::spk3().uses_faro());
        assert_eq!(
            SprinklerScheduler::with_components(false, false, FaroConfig::default()).name(),
            "SPK0"
        );
    }

    #[test]
    fn spk3_commits_beyond_io_boundaries() {
        let mut queue = DeviceQueue::new(8);
        // Tag 0 collides with tag 1 on chip 0; tag 2 targets chips 2 and 3.
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (1, 0, 0)]);
        admit(&mut queue, 1, Direction::Read, vec![(0, 0, 1), (3, 0, 0)]);
        admit(&mut queue, 2, Direction::Read, vec![(2, 0, 0), (3, 0, 1)]);
        let mut spk3 = SprinklerScheduler::spk3();
        let out = run_scheduler(&mut spk3, &queue, &[0, 0, 0, 0]);
        // Every chip receives work; the chip-0 collision does not stop chips 2/3,
        // and over-commitment allows both chip-0 requests to be committed.
        let chips: std::collections::HashSet<usize> = out
            .iter()
            .map(|c| queue.tag(c.tag).unwrap().placements[c.page as usize].chip)
            .collect();
        assert_eq!(chips.len(), 4);
        assert_eq!(out.len(), 6, "all six pages are committed in one round");
    }

    #[test]
    fn spk2_commits_at_most_one_request_per_chip() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (0, 0, 1)]);
        admit(&mut queue, 1, Direction::Read, vec![(0, 1, 0), (2, 0, 0)]);
        let mut spk2 = SprinklerScheduler::spk2();
        let out = run_scheduler(&mut spk2, &queue, &[0, 0, 0, 0]);
        let chip0_commits = out
            .iter()
            .filter(|c| queue.tag(c.tag).unwrap().placements[c.page as usize].chip == 0)
            .count();
        assert_eq!(chip0_commits, 1);
        // Chip 2 still gets its request (resource-driven, not I/O ordered).
        assert!(out
            .iter()
            .any(|c| queue.tag(c.tag).unwrap().placements[c.page as usize].chip == 2));
    }

    #[test]
    fn spk2_skips_chips_with_outstanding_work() {
        let mut queue = DeviceQueue::new(8);
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (1, 0, 0)]);
        let mut spk2 = SprinklerScheduler::spk2();
        let out = run_scheduler(&mut spk2, &queue, &[1, 0, 0, 0]);
        assert_eq!(out.len(), 1);
        assert_eq!(
            queue.tag(out[0].tag).unwrap().placements[out[0].page as usize].chip,
            1
        );
    }

    #[test]
    fn spk1_overcommits_but_blocks_in_order() {
        let mut queue = DeviceQueue::new(8);
        // Tag 0: two requests to chip 0 (different planes) — both can over-commit.
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (0, 0, 1)]);
        // Tag 1 targets chip 1.
        admit(&mut queue, 1, Direction::Read, vec![(1, 0, 0)]);
        let mut spk1 = SprinklerScheduler::spk1();
        let out = run_scheduler(&mut spk1, &queue, &[0, 0, 0, 0]);
        assert_eq!(
            out.len(),
            3,
            "FARO depth allows both chip-0 requests plus tag 1"
        );

        // With chip 0 saturated to the FARO depth, SPK1 stalls at the head:
        let depth = SprinklerScheduler::spk1().faro.overcommit_depth();
        let out = run_scheduler(&mut spk1, &queue, &[depth, 0, 0, 0]);
        assert!(out.is_empty(), "in-order composition blocks behind chip 0");
    }

    #[test]
    fn spk3_prefers_high_overlap_tags_under_pressure() {
        let mut queue = DeviceQueue::new(8);
        // Tag 0 concentrates on one plane of chip 0, tag 1 spans two dies.
        admit(&mut queue, 0, Direction::Read, vec![(0, 0, 0), (0, 0, 0)]);
        admit(&mut queue, 1, Direction::Read, vec![(0, 0, 1), (0, 1, 1)]);
        let mut spk3 = SprinklerScheduler::with_components(
            true,
            true,
            FaroConfig {
                overcommit_depth: 2,
            },
        );
        let out = run_scheduler(&mut spk3, &queue, &[0, 0, 0, 0]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|c| c.tag == TagId(1)));
    }

    #[test]
    fn readdress_callback_is_counted() {
        let mut spk3 = SprinklerScheduler::spk3();
        assert!(spk3.supports_readdressing());
        let migration = PageMigration {
            lpn: Lpn::new(1),
            from: sprinkler_flash::PhysicalPageAddr::default(),
            to: sprinkler_flash::PhysicalPageAddr::default(),
            crossed_plane: true,
        };
        spk3.on_readdress(&migration);
        spk3.on_readdress(&migration);
        assert_eq!(spk3.readdress_events(), 2);
    }

    #[test]
    fn write_after_read_blocks_resource_driven_writes() {
        let mut queue = DeviceQueue::new(8);
        // Tag 0 reads LPN 0..2, tag 1 writes LPN 1: the write must wait.
        let read = HostRequest::new(0, SimTime::ZERO, Direction::Read, Lpn::new(0), 2);
        assert!(queue.admit(
            TagId(0),
            read,
            SimTime::ZERO,
            vec![
                Placement {
                    chip: 0,
                    channel: 0,
                    way: 0,
                    die: 0,
                    plane: 0,
                },
                Placement {
                    chip: 1,
                    channel: 0,
                    way: 1,
                    die: 0,
                    plane: 0,
                },
            ],
        ));
        let write = HostRequest::new(1, SimTime::ZERO, Direction::Write, Lpn::new(1), 1);
        assert!(queue.admit(
            TagId(1),
            write,
            SimTime::ZERO,
            vec![Placement {
                chip: 2,
                channel: 1,
                way: 0,
                die: 0,
                plane: 0,
            }],
        ));
        let mut spk3 = SprinklerScheduler::spk3();
        let out = run_scheduler(&mut spk3, &queue, &[0, 0, 0, 0]);
        assert!(out.iter().all(|c| c.tag != TagId(1)));
        assert_eq!(out.len(), 2);
    }

    /// Locks in the unified §4.4 hazard policy on *both* composition paths: a
    /// two-page write with exactly one WAR-blocked page commits the unblocked
    /// page and defers only the blocked one — the in-order path no longer stalls
    /// the whole round, and the resource-driven path behaves identically.
    #[test]
    fn war_hazard_defers_only_the_blocked_page_on_both_paths() {
        let build_queue = || {
            let mut queue = DeviceQueue::new(8);
            // Tag 0 reads LPN 0 (uncommitted) on chip 3.
            let read = HostRequest::new(0, SimTime::ZERO, Direction::Read, Lpn::new(0), 1);
            assert!(queue.admit(
                TagId(0),
                read,
                SimTime::ZERO,
                vec![Placement {
                    chip: 3,
                    channel: 1,
                    way: 1,
                    die: 0,
                    plane: 0,
                }],
            ));
            // Tag 1 writes LPN 0..2: page 0 is WAR-blocked, page 1 is free.
            let write = HostRequest::new(1, SimTime::ZERO, Direction::Write, Lpn::new(0), 2);
            assert!(queue.admit(
                TagId(1),
                write,
                SimTime::ZERO,
                vec![
                    Placement {
                        chip: 0,
                        channel: 0,
                        way: 0,
                        die: 0,
                        plane: 0,
                    },
                    Placement {
                        chip: 1,
                        channel: 0,
                        way: 1,
                        die: 0,
                        plane: 0,
                    },
                ],
            ));
            queue
        };
        for mut scheduler in [SprinklerScheduler::spk1(), SprinklerScheduler::spk3()] {
            let queue = build_queue();
            let out = run_scheduler(&mut scheduler, &queue, &[0, 0, 0, 0]);
            let tag1_pages: Vec<u32> = out
                .iter()
                .filter(|c| c.tag == TagId(1))
                .map(|c| c.page)
                .collect();
            assert_eq!(
                tag1_pages,
                vec![1],
                "{}: exactly the unblocked page of the write must commit",
                scheduler.name()
            );
            assert!(
                out.contains(&Commitment {
                    tag: TagId(0),
                    page: 0
                }),
                "{}: the read must still be composed",
                scheduler.name()
            );
        }
    }
}
