//! The Virtual Address Scheduler (VAS) baseline.
//!
//! VAS decides the order of I/O requests purely from the device-level queue and
//! composes memory requests using only virtual addresses (§3, Fig 4).  Because it
//! never looks at the physical layout, its commitment pipeline is strictly
//! in-order: as soon as the next memory request in I/O order targets a chip that is
//! still occupied by a previously committed request, the whole pipeline stalls —
//! the request collisions of Fig 4 and the resulting inter-chip idleness.
//!
//! Implementation note: VAS itself has no physical knowledge.  The simulator uses
//! the per-chip occupancy view to model the *physical backpressure* the in-order
//! pipeline experiences, not to give VAS placement intelligence.

use std::sync::Arc;

use sprinkler_sim::TelemetryCounters;
use sprinkler_ssd::scheduler::{Commitment, IoScheduler, SchedulerContext};

use crate::hazard::HazardFilter;

/// The conventional FIFO (virtual address) scheduler.
#[derive(Debug, Default, Clone)]
pub struct VirtualAddressScheduler {
    hazards: HazardFilter,
    /// Scratch: per-chip commits made this round; only the chips listed in
    /// `newly_dirty` are non-zero between rounds.
    newly: Vec<usize>,
    newly_dirty: Vec<usize>,
    /// Hot-path counters shared with the SSD substrate, when attached.
    telemetry: Option<Arc<TelemetryCounters>>,
}

impl VirtualAddressScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IoScheduler for VirtualAddressScheduler {
    fn name(&self) -> &'static str {
        "VAS"
    }

    fn attach_telemetry(&mut self, telemetry: &Arc<TelemetryCounters>) {
        self.telemetry = Some(Arc::clone(telemetry));
    }

    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        if self.newly.len() < ctx.chip_count() {
            self.newly.resize(ctx.chip_count(), 0);
        }
        for &chip in &self.newly_dirty {
            self.newly[chip] = 0;
        }
        self.newly_dirty.clear();
        let bound = self.hazards.horizon_seq(ctx);
        for tag in ctx.tags() {
            if tag.seq > bound {
                if let Some(telemetry) = &self.telemetry {
                    TelemetryCounters::incr(&telemetry.hazard_horizon_clips);
                }
                break;
            }
            for page in tag.uncommitted_pages() {
                let chip = tag.placements[page as usize].chip;
                // In-order pipeline: a busy target chip blocks everything behind it.
                if ctx.outstanding(chip) + self.newly[chip] >= 1 {
                    return;
                }
                if self.newly[chip] == 0 {
                    self.newly_dirty.push(chip);
                }
                self.newly[chip] += 1;
                out.push(Commitment { tag: tag.id, page });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_flash::{FlashGeometry, Lpn};
    use sprinkler_sim::SimTime;
    use sprinkler_ssd::queue::DeviceQueue;
    use sprinkler_ssd::request::{Direction, HostRequest, Placement, TagId};
    use sprinkler_ssd::CommitmentLedger;

    fn admit_with_chips(queue: &mut DeviceQueue, id: u64, chips: &[usize]) {
        let host = HostRequest::new(
            id,
            SimTime::ZERO,
            Direction::Read,
            Lpn::new(id * 100),
            chips.len() as u32,
        );
        let placements = chips
            .iter()
            .map(|&chip| Placement {
                chip,
                channel: 0,
                way: chip as u32,
                die: 0,
                plane: 0,
            })
            .collect();
        assert!(queue.admit(TagId(id), host, SimTime::ZERO, placements));
    }

    fn schedule(queue: &DeviceQueue, outstanding: &[usize]) -> Vec<Commitment> {
        let geometry = FlashGeometry::small_test();
        let mut ledger = CommitmentLedger::from_outstanding(8, outstanding);
        for (chip, &n) in outstanding.iter().enumerate() {
            ledger.set_busy(chip, n > 0);
        }
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            geometry: &geometry,
            queue,
            ledger: &ledger,
        };
        VirtualAddressScheduler::new().schedule(&ctx)
    }

    #[test]
    fn commits_in_strict_io_order_when_no_conflicts() {
        let mut queue = DeviceQueue::new(8);
        admit_with_chips(&mut queue, 0, &[0, 1]);
        admit_with_chips(&mut queue, 1, &[2, 3]);
        let out = schedule(&queue, &[0, 0, 0, 0]);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].tag, TagId(0));
        assert_eq!(out[1].tag, TagId(0));
        assert_eq!(out[2].tag, TagId(1));
        assert_eq!(out[3].tag, TagId(1));
    }

    #[test]
    fn chip_conflict_blocks_everything_behind_it() {
        let mut queue = DeviceQueue::new(8);
        admit_with_chips(&mut queue, 0, &[0, 1]);
        admit_with_chips(&mut queue, 1, &[0, 3]); // collides with tag 0 on chip 0
        admit_with_chips(&mut queue, 2, &[2, 3]); // no collision, but behind tag 1
        let out = schedule(&queue, &[0, 0, 0, 0]);
        // Tag 0 commits both pages, then tag 1's first page collides on chip 0 and
        // the pipeline stops: tag 2 gets nothing even though chips 2/3 are idle.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|c| c.tag == TagId(0)));
    }

    #[test]
    fn busy_chip_at_head_of_queue_blocks_all_commits() {
        let mut queue = DeviceQueue::new(8);
        admit_with_chips(&mut queue, 0, &[1, 2]);
        let out = schedule(&queue, &[0, 1, 0, 0]); // chip 1 already has work
        assert!(out.is_empty());
    }

    #[test]
    fn already_committed_pages_are_skipped() {
        let mut queue = DeviceQueue::new(8);
        admit_with_chips(&mut queue, 0, &[0, 1]);
        assert!(queue.commit_page(TagId(0), 0, SimTime::ZERO));
        let out = schedule(&queue, &[0, 0, 0, 0]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].page, 1);
    }
}
