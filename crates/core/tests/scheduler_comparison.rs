//! End-to-end comparison of the five schedulers on the simulated SSD.
//!
//! These tests assert the *qualitative* results of the paper: Sprinkler (SPK3)
//! outperforms PAS, which outperforms VAS, on bursty multi-request workloads; the
//! Sprinkler variants reduce idleness and increase flash-level parallelism.

use sprinkler_core::SchedulerKind;
use sprinkler_flash::Lpn;
use sprinkler_sim::SimTime;
use sprinkler_ssd::request::{Direction, HostRequest};
use sprinkler_ssd::{RunMetrics, Ssd, SsdConfig};

/// A bursty mixed workload: back-to-back arrivals of variably sized requests whose
/// start offsets collide on some chips, like the examples of Figs 4, 5, and 7.
fn bursty_trace(requests: u64, seed: u64) -> Vec<HostRequest> {
    let mut trace = Vec::new();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..requests {
        // Arrive in bursts of 8 requests every 100 us.
        let arrival = SimTime::from_micros((i / 8) * 100);
        let r = next();
        let pages = 1 + (r % 24) as u32; // 2 KB .. 48 KB
        let lpn = (r >> 8) % 4096;
        let direction = if r % 10 < 7 {
            Direction::Read
        } else {
            Direction::Write
        };
        trace.push(HostRequest::new(
            i,
            arrival,
            direction,
            Lpn::new(lpn),
            pages,
        ));
    }
    trace
}

fn run(kind: SchedulerKind, requests: u64) -> RunMetrics {
    let config = SsdConfig::paper_default().with_blocks_per_plane(64);
    let ssd = Ssd::new(config, kind.build()).expect("valid config");
    ssd.run(bursty_trace(requests, 7))
}

#[test]
fn all_schedulers_complete_the_same_workload() {
    for kind in SchedulerKind::ALL {
        let metrics = run(kind, 120);
        assert_eq!(metrics.io_count, 120, "{kind} lost I/Os");
        assert!(metrics.avg_latency_ns > 0.0);
        assert!(metrics.bandwidth_kb_per_sec > 0.0);
        assert!(metrics.transactions >= 1);
    }
}

#[test]
fn sprinkler_outperforms_the_baselines_on_bandwidth() {
    let vas = run(SchedulerKind::Vas, 240);
    let pas = run(SchedulerKind::Pas, 240);
    let spk3 = run(SchedulerKind::Spk3, 240);
    assert!(
        spk3.bandwidth_kb_per_sec > vas.bandwidth_kb_per_sec,
        "SPK3 ({:.0} KB/s) must beat VAS ({:.0} KB/s)",
        spk3.bandwidth_kb_per_sec,
        vas.bandwidth_kb_per_sec
    );
    assert!(
        spk3.bandwidth_kb_per_sec >= pas.bandwidth_kb_per_sec,
        "SPK3 ({:.0} KB/s) must beat PAS ({:.0} KB/s)",
        spk3.bandwidth_kb_per_sec,
        pas.bandwidth_kb_per_sec
    );
    assert!(
        pas.bandwidth_kb_per_sec > vas.bandwidth_kb_per_sec,
        "PAS ({:.0} KB/s) must beat VAS ({:.0} KB/s)",
        pas.bandwidth_kb_per_sec,
        vas.bandwidth_kb_per_sec
    );
}

#[test]
fn sprinkler_reduces_latency_and_queue_stall() {
    let vas = run(SchedulerKind::Vas, 240);
    let spk3 = run(SchedulerKind::Spk3, 240);
    assert!(
        spk3.avg_latency_ns < vas.avg_latency_ns,
        "SPK3 latency {:.0} must be below VAS latency {:.0}",
        spk3.avg_latency_ns,
        vas.avg_latency_ns
    );
    assert!(
        spk3.queue_stall_ns <= vas.queue_stall_ns,
        "SPK3 stall {} must not exceed VAS stall {}",
        spk3.queue_stall_ns,
        vas.queue_stall_ns
    );
}

#[test]
fn rios_improves_chip_utilization_over_vas() {
    let vas = run(SchedulerKind::Vas, 240);
    let spk2 = run(SchedulerKind::Spk2, 240);
    let spk3 = run(SchedulerKind::Spk3, 240);
    assert!(
        spk2.chip_utilization > vas.chip_utilization,
        "SPK2 utilization {:.3} must beat VAS {:.3}",
        spk2.chip_utilization,
        vas.chip_utilization
    );
    assert!(
        spk3.inter_chip_idleness < vas.inter_chip_idleness,
        "SPK3 inter-chip idleness {:.3} must be below VAS {:.3}",
        spk3.inter_chip_idleness,
        vas.inter_chip_idleness
    );
}

#[test]
fn faro_increases_flash_level_parallelism() {
    let pas = run(SchedulerKind::Pas, 240);
    let spk1 = run(SchedulerKind::Spk1, 240);
    let spk3 = run(SchedulerKind::Spk3, 240);
    // FARO-enabled schedulers fold more requests per transaction than PAS.
    assert!(
        spk1.requests_per_transaction >= pas.requests_per_transaction,
        "SPK1 {:.2} req/txn must be at least PAS {:.2}",
        spk1.requests_per_transaction,
        pas.requests_per_transaction
    );
    assert!(
        spk3.requests_per_transaction > pas.requests_per_transaction,
        "SPK3 {:.2} req/txn must exceed PAS {:.2}",
        spk3.requests_per_transaction,
        pas.requests_per_transaction
    );
    // And therefore serve a larger fraction of requests with some FLP.
    assert!(
        spk3.flp.mean_level() > pas.flp.mean_level(),
        "SPK3 FLP {:.2} must exceed PAS FLP {:.2}",
        spk3.flp.mean_level(),
        pas.flp.mean_level()
    );
}

/// Differential testing across every scheduler pair on the *same* trace: the
/// schedulers may reorder work, but they must agree on everything that is a
/// function of the workload rather than of scheduling policy.
#[test]
fn every_scheduler_pair_agrees_on_workload_invariants() {
    let all: Vec<(SchedulerKind, RunMetrics)> = SchedulerKind::ALL
        .into_iter()
        .map(|kind| (kind, run(kind, 160)))
        .collect();
    for (i, (kind_a, a)) in all.iter().enumerate() {
        for (kind_b, b) in all.iter().skip(i + 1) {
            assert_eq!(
                a.io_count, b.io_count,
                "{kind_a} and {kind_b} disagree on completed I/O count"
            );
            assert_eq!(
                a.memory_requests, b.memory_requests,
                "{kind_a} and {kind_b} disagree on memory request count"
            );
            assert_eq!(
                a.bytes_read, b.bytes_read,
                "{kind_a} and {kind_b} disagree on bytes read"
            );
            assert_eq!(
                a.bytes_written, b.bytes_written,
                "{kind_a} and {kind_b} disagree on bytes written"
            );
        }
    }
}

/// The paper's performance hierarchy, asserted differentially on one shared
/// trace: every Sprinkler variant beats VAS on bandwidth, and full Sprinkler
/// (SPK3) is at least as good as every other scheduler while cutting latency
/// against the VAS baseline (§5.2, Fig 10).
#[test]
fn paper_hierarchy_holds_differentially_on_a_shared_trace() {
    let vas = run(SchedulerKind::Vas, 240);
    let pas = run(SchedulerKind::Pas, 240);
    let spk1 = run(SchedulerKind::Spk1, 240);
    let spk2 = run(SchedulerKind::Spk2, 240);
    let spk3 = run(SchedulerKind::Spk3, 240);
    for (kind, m) in [
        (SchedulerKind::Pas, &pas),
        (SchedulerKind::Spk1, &spk1),
        (SchedulerKind::Spk2, &spk2),
        (SchedulerKind::Spk3, &spk3),
    ] {
        assert!(
            m.bandwidth_kb_per_sec > vas.bandwidth_kb_per_sec,
            "{kind} bandwidth {:.0} KB/s must beat VAS {:.0} KB/s",
            m.bandwidth_kb_per_sec,
            vas.bandwidth_kb_per_sec
        );
    }
    for (kind, m) in [(SchedulerKind::Vas, &vas), (SchedulerKind::Pas, &pas)] {
        assert!(
            spk3.bandwidth_kb_per_sec >= m.bandwidth_kb_per_sec,
            "SPK3 bandwidth {:.0} KB/s must be at least {kind}'s {:.0} KB/s",
            spk3.bandwidth_kb_per_sec,
            m.bandwidth_kb_per_sec
        );
    }
    // The partial variants each drop one of RIOS/FARO, so on a single trace
    // they can tie with (or marginally beat) full Sprinkler; the paper's claim
    // is about the mean across workloads. Assert SPK3 stays within 2%.
    for (kind, m) in [(SchedulerKind::Spk1, &spk1), (SchedulerKind::Spk2, &spk2)] {
        assert!(
            spk3.bandwidth_kb_per_sec >= 0.98 * m.bandwidth_kb_per_sec,
            "SPK3 bandwidth {:.0} KB/s must be within 2% of {kind}'s {:.0} KB/s",
            spk3.bandwidth_kb_per_sec,
            m.bandwidth_kb_per_sec
        );
    }
    assert!(
        spk3.avg_latency_ns <= vas.avg_latency_ns,
        "SPK3 latency {:.0} ns must not exceed VAS latency {:.0} ns",
        spk3.avg_latency_ns,
        vas.avg_latency_ns
    );
}

#[test]
fn faro_reduces_the_number_of_transactions() {
    let vas = run(SchedulerKind::Vas, 240);
    let spk3 = run(SchedulerKind::Spk3, 240);
    assert!(
        spk3.transactions < vas.transactions,
        "SPK3 transactions {} must be below VAS {}",
        spk3.transactions,
        vas.transactions
    );
    // Both served the same memory requests.
    assert_eq!(spk3.memory_requests, vas.memory_requests);
}
