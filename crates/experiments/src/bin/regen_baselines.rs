//! Regenerates — and gates on — the repository benchmark baselines
//! (`BENCH_seed.json`, `BENCH_scaling.json`, `BENCH_array.json`,
//! `BENCH_tenants.json`) through the parallel experiment runner.
//!
//! ```sh
//! # Rewrite all four baselines (commitment-stream-changing PRs):
//! cargo run --release -p sprinkler_experiments --bin regen_baselines -- \
//!     --label "PR N: what changed the streams"
//!
//! # CI perf-regression gate: recompute the deterministic metrics_check
//! # sections and diff them against the committed files (nonzero exit on
//! # drift):
//! cargo run --release -p sprinkler_experiments --bin regen_baselines -- --check
//!
//! # Fire-and-forget smoke of the parallel fan-out paths:
//! cargo run --release -p sprinkler_experiments --bin regen_baselines -- --quick
//! ```
//!
//! `--label` stamps the rewritten files with the change they baseline (an
//! unlabeled run says so in the output).  Each baseline file carries two kinds
//! of content: *timings* (machine-dependent, informational) and a
//! `metrics_check` object of **simulated** figures — bandwidth ratios,
//! aggregate KB/s — that are deterministic across machines.  `--check`
//! recomputes only the latter and compares within [`CHECK_TOLERANCE`], so a
//! scheduler or replay change that silently shifts any headline result fails
//! CI until the baselines are regenerated deliberately.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use sprinkler_core::reference::ReferenceScheduler;
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::micro::{representative_run, standing_scene};
use sprinkler_experiments::runner::ExperimentScale;
use sprinkler_experiments::{fig10, fig15_scaling, scenario};
use sprinkler_flash::Lpn;
use sprinkler_sim::{AllocScope, CountingAllocator, SimTime};
use sprinkler_ssd::request::{Direction, HostRequest};
use sprinkler_ssd::scheduler::{IoScheduler, SchedulerContext};
use sprinkler_ssd::{RunMetrics, Ssd, SsdConfig};

/// Every baseline figure is measured under the counting allocator, so the
/// steady-state allocs-per-I/O figures below are real measurements, not
/// assertions carried over from the test suite.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Matches the vendored criterion shim: one untimed warmup, then `samples`
/// timed iterations.
const SAMPLES: usize = 10;

/// Relative tolerance of the `--check` gate.  The simulated metrics are
/// deterministic; the slack only absorbs the 4-decimal rounding the baseline
/// files store.
const CHECK_TOLERANCE: f64 = 1e-3;

struct Timing {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn time_runs(mut body: impl FnMut()) -> Timing {
    body(); // warmup
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        body();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    let sum: f64 = samples.iter().sum();
    Timing {
        mean_ns: sum / samples.len() as f64,
        min_ns: samples.iter().cloned().fold(f64::INFINITY, f64::min),
        max_ns: samples.iter().cloned().fold(0.0, f64::max),
    }
}

/// Escapes a string for interpolation into a JSON string literal.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn time_round(scheduler: &mut dyn IoScheduler, chips: usize) -> Timing {
    let (geometry, queue, ledger) = standing_scene(chips);
    scheduler.initialize(&geometry);
    let ctx = SchedulerContext {
        now: SimTime::ZERO,
        geometry: &geometry,
        queue: &queue,
        ledger: &ledger,
    };
    time_runs(|| {
        std::hint::black_box(scheduler.schedule(&ctx));
    })
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn today() -> String {
    // Derive a calendar date from the system clock without chrono: civil-date
    // conversion of days since the Unix epoch (Howard Hinnant's algorithm).
    let days = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() / 86_400)
        .unwrap_or(0) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

// ---------------------------------------------------------------------------
// Deterministic metric recipes: each baseline's `metrics_check` keys map to
// simulated figures recomputed by exactly one function below, shared by the
// regeneration path and the `--check` gate.
// ---------------------------------------------------------------------------

/// Replays the steady-state workload of tests/zero_alloc.rs (fixed 8-page
/// requests, a warm-up-mapped 512-LPN write footprint, roaming reads) through
/// `Ssd::run_stream` under SPK3, measuring allocation events after the
/// warm-up boundary.  Returns the run metrics and allocations per measured
/// I/O — 0.0 by construction, and baselined so the `--check` perf gate fails
/// alongside the release test gate if a per-I/O allocation sneaks back in.
fn steady_replay(chips: usize) -> (RunMetrics, f64) {
    const TOTAL: u64 = 6_000;
    const WARMUP: u64 = 3_000;
    const PAGES: u32 = 8;
    const WRITE_BASES: u64 = 64;
    let config = SsdConfig::paper_default()
        .with_chip_count(chips)
        .with_blocks_per_plane(64);
    let scope: Rc<Cell<Option<AllocScope>>> = Rc::new(Cell::new(None));
    let steady_allocs: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
    let (scope_w, allocs_w) = (Rc::clone(&scope), Rc::clone(&steady_allocs));
    let mut yielded = 0u64;
    let source = std::iter::from_fn(move || {
        if yielded == TOTAL {
            if let Some(open) = scope_w.get() {
                allocs_w.set(Some(open.allocations()));
            }
            return None;
        }
        let i = yielded;
        yielded += 1;
        if yielded == WARMUP {
            scope_w.set(Some(AllocScope::begin()));
        }
        let (direction, lpn) = if i.is_multiple_of(2) {
            (Direction::Read, Lpn::new((i * 13) % 4096))
        } else {
            (Direction::Write, Lpn::new((i % WRITE_BASES) * PAGES as u64))
        };
        Some(HostRequest::new(
            i,
            SimTime::from_nanos(i * 1_000),
            direction,
            lpn,
            PAGES,
        ))
    });
    let ssd = Ssd::new(config, SchedulerKind::Spk3.build()).expect("steady-replay config is valid");
    let metrics = ssd.run_stream(source);
    let allocs = steady_allocs.get().expect("the replay drained the source") as f64;
    (metrics, allocs / (TOTAL - WARMUP) as f64)
}

/// `BENCH_seed.json`: the fig10 headline comparison at bench scale, plus the
/// always-on telemetry counters and the steady-state allocation budget of the
/// paper-geometry replay.
fn seed_metrics() -> Vec<(&'static str, f64)> {
    let comparison = fig10::run(&ExperimentScale::bench(), None);
    let bandwidth_x = comparison.bandwidth_speedup(SchedulerKind::Spk3, SchedulerKind::Vas);
    let latency_pct = 100.0 * comparison.latency_reduction(SchedulerKind::Spk3, SchedulerKind::Vas);
    let spk3_rounds: u64 = comparison
        .workloads
        .iter()
        .filter_map(|w| comparison.metrics(w, SchedulerKind::Spk3))
        .map(|m| m.telemetry.sched_rounds)
        .sum();
    let spk3_faro: u64 = comparison
        .workloads
        .iter()
        .filter_map(|w| comparison.metrics(w, SchedulerKind::Spk3))
        .map(|m| m.telemetry.faro_fast_path_rounds)
        .sum();
    let (steady, allocs_per_io) = steady_replay(64);
    vec![
        ("fig10_spk3_vas_bandwidth_x", bandwidth_x),
        ("fig10_spk3_vas_latency_reduction_pct", latency_pct),
        ("fig10_spk3_sched_rounds_total", spk3_rounds as f64),
        ("fig10_spk3_faro_fast_path_rounds_total", spk3_faro as f64),
        (
            "steady_replay_stream_admissions",
            steady.telemetry.stream_admissions as f64,
        ),
        ("steady_state_allocs_per_io", allocs_per_io),
    ]
}

/// `BENCH_scaling.json`: the quick-scale scaling panel at 16 and 64 chips.
fn scaling_metrics() -> Vec<(&'static str, f64)> {
    let result = fig15_scaling::run(&ExperimentScale::quick(), Some(&[16, 64]), Some(&[32]));
    let point = |chips, kind| {
        result
            .point(chips, 32, kind)
            .expect("swept point exists")
            .bandwidth_kb_per_sec
    };
    let rounds = |chips, kind| {
        result
            .point(chips, 32, kind)
            .expect("swept point exists")
            .sched_rounds as f64
    };
    let (steady_1024, allocs_per_io_1024) = steady_replay(1024);
    vec![
        ("scaling_vas_16chips_kbps", point(16, SchedulerKind::Vas)),
        ("scaling_vas_64chips_kbps", point(64, SchedulerKind::Vas)),
        ("scaling_spk3_16chips_kbps", point(16, SchedulerKind::Spk3)),
        ("scaling_spk3_64chips_kbps", point(64, SchedulerKind::Spk3)),
        (
            "scaling_spk3_vas_speedup_64chips",
            result.speedup(64, 32).expect("both schedulers ran"),
        ),
        // Round totals are exact telemetry counts: any change to the round
        // loop's decision stream (not just its speed) moves these and trips
        // the 0.1% gate.
        (
            "scaling_vas_64chips_sched_rounds",
            rounds(64, SchedulerKind::Vas),
        ),
        (
            "scaling_spk3_64chips_sched_rounds",
            rounds(64, SchedulerKind::Spk3),
        ),
        (
            "steady_replay_1024chips_sched_rounds",
            steady_1024.telemetry.sched_rounds as f64,
        ),
        ("steady_state_allocs_per_io_1024chips", allocs_per_io_1024),
    ]
}

/// `BENCH_array.json`: the array scale-out sweep at quick scale, plus the
/// adaptive-placement figures — the skew acceptance triple (uniform /
/// hot-shard / hot-shard-rebalance at the skew figure horizon) and the
/// modular-hot-set and heterogeneous headline cells, with the rebalancer's
/// telemetry counters baselined from the merged summary so the whole
/// heat-track → migrate → merge path sits under the perf gate.
fn array_metrics() -> Vec<(&'static str, f64)> {
    let scale = ExperimentScale::quick();
    let spk3 = |devices| scenario::array_scaleout_metrics(&scale, devices, SchedulerKind::Spk3);
    let n1 = spk3(1);
    let n4 = spk3(4);
    let n16 = spk3(16);
    let vas16 = scenario::array_scaleout_metrics(&scale, 16, SchedulerKind::Vas);
    // The summary carries the merged per-device telemetry and latency
    // histogram; baselining counters from it keeps the array merge path
    // itself under the perf gate.
    let n16_summary = n16.summary_run_metrics();
    let skew = |label| scenario::array_skew_figure_metrics(&scale, label, SchedulerKind::Spk3);
    let uniform = skew("uniform");
    let hot = skew("hot-shard");
    let rebalanced = skew("hot-shard-rebalance");
    // The headline acceptance figure: what fraction of the hot shard's
    // bandwidth cost the rebalancer claws back (0 = no better than static,
    // 1 = fully recovered to the uniform workload's bandwidth).
    let recovered = (rebalanced.bandwidth_kb_per_sec - hot.bandwidth_kb_per_sec)
        / (uniform.bandwidth_kb_per_sec - hot.bandwidth_kb_per_sec);
    let reb_adaptive = scenario::array_rebalance_metrics(&scale, "adaptive", SchedulerKind::Spk3);
    let reb_static = scenario::array_rebalance_metrics(&scale, "static", SchedulerKind::Spk3);
    let reb_telemetry = reb_adaptive.summary_run_metrics().telemetry;
    let het_adaptive = scenario::array_hetero_metrics(&scale, "adaptive", SchedulerKind::Spk3);
    let het_static = scenario::array_hetero_metrics(&scale, "static", SchedulerKind::Spk3);
    vec![
        ("array_spk3_n1_kbps", n1.bandwidth_kb_per_sec),
        ("array_spk3_n4_kbps", n4.bandwidth_kb_per_sec),
        ("array_spk3_n16_kbps", n16.bandwidth_kb_per_sec),
        ("array_vas_n16_kbps", vas16.bandwidth_kb_per_sec),
        (
            "array_spk3_scaleout_x_n16_over_n1",
            n16.bandwidth_kb_per_sec / n1.bandwidth_kb_per_sec,
        ),
        ("array_spk3_n16_io_imbalance", n16.skew.io_imbalance),
        (
            "array_spk3_n16_sched_rounds",
            n16_summary.telemetry.sched_rounds as f64,
        ),
        (
            "array_spk3_n16_p99_latency_ns",
            n16_summary.p99_latency_ns as f64,
        ),
        ("array_skew_uniform_kbps", uniform.bandwidth_kb_per_sec),
        ("array_skew_hot_shard_kbps", hot.bandwidth_kb_per_sec),
        ("array_skew_rebalance_kbps", rebalanced.bandwidth_kb_per_sec),
        ("array_skew_hot_shard_io_imbalance", hot.skew.io_imbalance),
        (
            "array_skew_rebalance_io_imbalance",
            rebalanced.skew.io_imbalance,
        ),
        ("array_skew_gap_recovered_frac", recovered),
        (
            "array_skew_rebalance_stripes_migrated",
            rebalanced.stripes_migrated as f64,
        ),
        (
            "array_rebalance_static_kbps",
            reb_static.bandwidth_kb_per_sec,
        ),
        (
            "array_rebalance_adaptive_kbps",
            reb_adaptive.bandwidth_kb_per_sec,
        ),
        (
            "array_rebalance_adaptive_io_imbalance",
            reb_adaptive.skew.io_imbalance,
        ),
        (
            "array_rebalance_stripes_migrated",
            reb_telemetry.stripes_migrated as f64,
        ),
        (
            "array_rebalance_migration_bytes",
            reb_telemetry.migration_bytes as f64,
        ),
        (
            "array_rebalance_heat_decays",
            reb_telemetry.heat_decays as f64,
        ),
        ("array_hetero_static_kbps", het_static.bandwidth_kb_per_sec),
        (
            "array_hetero_adaptive_kbps",
            het_adaptive.bandwidth_kb_per_sec,
        ),
        (
            "array_hetero_static_weighted_io_imbalance",
            het_static.skew.weighted_io_imbalance,
        ),
        (
            "array_hetero_adaptive_weighted_io_imbalance",
            het_adaptive.skew.weighted_io_imbalance,
        ),
    ]
}

/// `BENCH_tenants.json`: the multi-tenant serving front at quick scale — the
/// tenant-mix fairness and per-class p99 figures, and the tenant-storm
/// isolation contract (victim p99 ratios pinned at 1.0-ish, storm-tenant p99
/// ratio showing the blast landed on the storming tenant), plus the mux's
/// admission telemetry so the DRR/bucket decision stream itself is gated.
fn tenant_metrics() -> Vec<(&'static str, f64)> {
    let scale = ExperimentScale::quick();
    let mix = scenario::tenant_mix_outcome(&scale, SchedulerKind::Spk3);
    let p99 = |outcome: &sprinkler_tenants::TenantOutcome, name: &str| {
        outcome
            .metrics
            .tenants
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.p99_latency_ns as f64)
            .expect("tenant lane exists")
    };
    let baseline = scenario::tenant_storm_outcome(&scale, "baseline", SchedulerKind::Spk3);
    let storm = scenario::tenant_storm_outcome(&scale, "storm", SchedulerKind::Spk3);
    let telemetry = &storm.metrics.telemetry;
    vec![
        ("tenant_mix_spk3_fairness_index", mix.fairness_index()),
        (
            "tenant_mix_spk3_interactive_p99_ns",
            p99(&mix, "interactive"),
        ),
        ("tenant_mix_spk3_streaming_p99_ns", p99(&mix, "streaming")),
        ("tenant_mix_spk3_batch_p99_ns", p99(&mix, "batch")),
        (
            "tenant_mix_spk3_interactive_slo_violations",
            mix.metrics
                .tenants
                .iter()
                .find(|t| t.name == "interactive")
                .map(|t| t.slo_violations as f64)
                .expect("interactive lane exists"),
        ),
        (
            "tenant_storm_spk3_interactive_p99_ratio",
            p99(&storm, "interactive") / p99(&baseline, "interactive"),
        ),
        (
            "tenant_storm_spk3_streaming_p99_ratio",
            p99(&storm, "streaming") / p99(&baseline, "streaming"),
        ),
        (
            "tenant_storm_spk3_batch_p99_ratio",
            p99(&storm, "batch") / p99(&baseline, "batch"),
        ),
        ("tenant_storm_spk3_fairness_index", storm.fairness_index()),
        (
            "tenant_storm_spk3_admissions",
            telemetry.tenant_admissions as f64,
        ),
        (
            "tenant_storm_spk3_deferrals",
            telemetry.tenant_deferrals as f64,
        ),
        (
            "tenant_storm_spk3_throttles",
            telemetry.tenant_throttles as f64,
        ),
    ]
}

/// Renders a metrics_check object (4-decimal values; the gate's tolerance
/// absorbs the rounding).
fn metrics_check_json(metrics: &[(&str, f64)]) -> String {
    let mut out = String::from("  \"metrics_check\": {\n");
    out.push_str(&format!(
        "    \"tolerance_rel\": {CHECK_TOLERANCE},\n    \"note\": \"simulated figures, deterministic across machines; checked by regen_baselines --check\",\n"
    ));
    for (i, (key, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{key}\": {value:.4}{comma}\n"));
    }
    out.push_str("  }");
    out
}

// ---------------------------------------------------------------------------
// Baseline regeneration
// ---------------------------------------------------------------------------

fn regen_seed_baseline(label: &str, date: &str) -> String {
    println!("== BENCH_seed.json: fig10 at bench scale ==");
    let spk3 = time_runs(|| {
        std::hint::black_box(representative_run(SchedulerKind::Spk3));
    });
    println!("fig10/spk3_run mean {:.1} ns", spk3.mean_ns);

    let start = Instant::now();
    let metrics = seed_metrics();
    let panel_s = start.elapsed().as_secs_f64();
    let bandwidth_x = metrics[0].1;
    let latency_pct = metrics[1].1;
    println!(
        "fig10 panel (parallel): {panel_s:.2} s; SPK3/VAS bandwidth {bandwidth_x:.2}x, latency -{latency_pct:.1}%"
    );

    format!(
        r#"{{
  "baseline": "{label}",
  "date": "{date}",
  "command": "cargo run --release -p sprinkler_experiments --bin regen_baselines -- --label '...'",
  "scale": {{
    "ios_per_workload": 200,
    "blocks_per_plane": 32,
    "note": "bench scale; the timed body is the 120-I/O representative_run recipe of sprinkler_bench"
  }},
  "profile": "release, 1 untimed warmup then {SAMPLES} timed iterations (regen_baselines)",
  "results": [
    {{
      "bench": "fig10/spk3_run",
      "mean_ns": {mean:.1},
      "min_ns": {min:.1},
      "max_ns": {max:.1},
      "samples": {SAMPLES}
    }}
  ],
  "figure_check": {{
    "spk3_vs_vas_bandwidth_x": {bandwidth_x:.2},
    "paper_range_x": [1.8, 2.2],
    "spk3_vs_vas_latency_reduction_pct": {latency_pct:.1},
    "paper_min_pct": 56.6,
    "fig10_panel_wall_clock_s": {panel_s:.2},
    "note": "bench-scale run overshoots the paper's bandwidth ratio; directionally correct"
  }},
{metrics_check}
}}
"#,
        mean = spk3.mean_ns,
        min = spk3.min_ns,
        max = spk3.max_ns,
        metrics_check = metrics_check_json(&metrics),
    )
}

fn regen_scaling_baseline(label: &str, date: &str) -> String {
    let scale = ExperimentScale::bench();
    println!("== BENCH_scaling.json: scaling_1024 + scheduler_rounds ==");
    let mut scaling_results = String::new();
    for (i, kind) in [SchedulerKind::Vas, SchedulerKind::Spk3].iter().enumerate() {
        let timing = time_runs(|| {
            std::hint::black_box(fig15_scaling::run_point(&scale, 1024, 32, *kind));
        });
        println!(
            "scaling_1024/{}_1024chips_32kb mean {:.1} ns",
            kind.label(),
            timing.mean_ns
        );
        if i > 0 {
            scaling_results.push_str(",\n");
        }
        scaling_results.push_str(&format!(
            r#"      {{ "bench": "scaling_1024/{}_1024chips_32kb", "mean_ns": {:.1}, "samples": {SAMPLES} }}"#,
            kind.label(),
            timing.mean_ns
        ));
    }

    let mut rounds_results = String::new();
    let mut speedups = String::new();
    for (i, &chips) in [256usize, 1024].iter().enumerate() {
        for (j, kind) in [SchedulerKind::Spk2, SchedulerKind::Spk3]
            .iter()
            .enumerate()
        {
            let fast = time_round(kind.build().as_mut(), chips);
            let mut reference = ReferenceScheduler::new(*kind);
            let naive = time_round(&mut reference, chips);
            println!(
                "scheduler_rounds/{}_{chips}chips mean {:.1} ns (reference {:.1} ns)",
                kind.label(),
                fast.mean_ns,
                naive.mean_ns
            );
            if i > 0 || j > 0 {
                rounds_results.push_str(",\n");
                speedups.push_str(",\n");
            }
            rounds_results.push_str(&format!(
                r#"      {{ "bench": "scheduler_rounds/{label}_{chips}chips", "mean_ns": {:.1}, "rounds_per_sec": {:.0} }},
      {{ "bench": "scheduler_rounds/{label}ref_{chips}chips", "mean_ns": {:.1} }}"#,
                fast.mean_ns,
                1e9 / fast.mean_ns,
                naive.mean_ns,
                label = kind.label(),
            ));
            speedups.push_str(&format!(
                r#"      "{}_{chips}chips_x": {:.1}"#,
                kind.label(),
                naive.mean_ns / fast.mean_ns
            ));
        }
    }

    let start = Instant::now();
    let result = fig15_scaling::run(&ExperimentScale::full(), None, None);
    let full_s = start.elapsed().as_secs_f64();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "fig15_scaling full panel ({} points, {workers} workers): {full_s:.2} s",
        result.points.len()
    );
    let metrics = scaling_metrics();

    format!(
        r#"{{
  "baseline": "{label}",
  "date": "{date}",
  "command": "cargo run --release -p sprinkler_experiments --bin regen_baselines -- --label '...'",
  "profile": "release, 1 untimed warmup then {SAMPLES} timed iterations (regen_baselines)",
  "scaling_1024": {{
    "scale": {{ "ios_per_workload": 200, "blocks_per_plane": 32, "transfer_kb": 32 }},
    "results": [
{scaling_results}
    ]
  }},
  "scheduler_rounds": {{
    "scene": "standing 32-deep queue of 256-page tags, all but 4 pages per tag committed (steady-state round shape), overlapping read/write LPN ranges",
    "note": "SPKn = optimized columnar path; SPKnref = full-scan reference twin; both against the CommitmentLedger semantics; rounds_per_sec is informational (1e9/mean_ns), not gated",
    "results": [
{rounds_results}
    ],
    "round_speedup_vs_reference": {{
{speedups}
    }}
  }},
  "full_scale_sweep_point": {{
    "note": "fig15_scaling at ExperimentScale::full() (2000 I/Os, 64 blocks/plane), all 4 chip counts x 3 transfer panels x 2 schedulers, via the parallel cell runner",
    "wall_clock_s": {full_s:.2},
    "worker_threads": {workers},
    "budget_s": 60
  }},
{metrics_check}
}}
"#,
        metrics_check = metrics_check_json(&metrics),
    )
}

fn regen_array_baseline(label: &str, date: &str) -> String {
    println!("== BENCH_array.json: array-scaleout (bench-scale timing, quick-scale metrics) ==");
    // The timed body runs at bench scale — the same recipe the
    // `array_scaleout/spk3_n4_256kb` criterion bench times — so the committed
    // mean is directly comparable to a local `cargo bench` run.  The
    // metrics_check figures below stay at quick scale, matching the scenario
    // CI runs.
    let timing = time_runs(|| {
        std::hint::black_box(scenario::array_scaleout_metrics(
            &ExperimentScale::bench(),
            4,
            SchedulerKind::Spk3,
        ));
    });
    println!("array_scaleout/spk3_n4_256kb mean {:.1} ns", timing.mean_ns);
    let start = Instant::now();
    let metrics = array_metrics();
    let panel_s = start.elapsed().as_secs_f64();
    println!(
        "array metrics (n1/n4/n16): {panel_s:.2} s; SPK3 n16/n1 scale-out {:.2}x",
        metrics[4].1
    );

    format!(
        r#"{{
  "baseline": "{label}",
  "date": "{date}",
  "command": "cargo run --release -p sprinkler_experiments --bin regen_baselines -- --label '...'",
  "scenario": "array-scaleout: one 256KB-transfer workload striped over n devices at a fixed 64-chip budget and fixed 512MB footprint (32KB stripes); plus adaptive-placement figures: array-skew uniform/hot-shard/hot-shard-rebalance at the 12x figure horizon, array-rebalance and array-hetero static/adaptive cells with the rebalancer's migration telemetry; timing at bench scale to match the array_scaleout criterion bench, metrics_check at quick scale to match the CI scenario run",
  "profile": "release, 1 untimed warmup then {SAMPLES} timed iterations (regen_baselines)",
  "results": [
    {{
      "bench": "array_scaleout/spk3_n4_256kb",
      "mean_ns": {mean:.1},
      "min_ns": {min:.1},
      "max_ns": {max:.1},
      "samples": {SAMPLES}
    }}
  ],
{metrics_check}
}}
"#,
        mean = timing.mean_ns,
        min = timing.min_ns,
        max = timing.max_ns,
        metrics_check = metrics_check_json(&metrics),
    )
}

fn regen_tenant_baseline(label: &str, date: &str) -> String {
    println!("== BENCH_tenants.json: tenant-mix + tenant-storm (quick-scale metrics) ==");
    // The timed body matches the `tenant_fairness/spk3_mix_3tenants` criterion
    // bench: the whole admission front — slicing, DRR, buckets, per-tenant
    // attribution — at bench scale.
    let timing = time_runs(|| {
        std::hint::black_box(scenario::tenant_mix_outcome(
            &ExperimentScale::bench(),
            SchedulerKind::Spk3,
        ));
    });
    println!(
        "tenant_fairness/spk3_mix_3tenants mean {:.1} ns",
        timing.mean_ns
    );
    let start = Instant::now();
    let metrics = tenant_metrics();
    let panel_s = start.elapsed().as_secs_f64();
    println!(
        "tenant metrics (mix + storm pair): {panel_s:.2} s; storm victim p99 ratio {:.2}",
        metrics[5].1
    );

    format!(
        r#"{{
  "baseline": "{label}",
  "date": "{date}",
  "command": "cargo run --release -p sprinkler_experiments --bin regen_baselines -- --label '...'",
  "scenario": "tenant-mix: interactive (95% 4KB random reads, 5ms SLO) + streaming (sequential 256KB reads, 50ms SLO) + batch (128KB writes behind a 64MB/s token bucket) sharing one device through the deficit-round-robin admission front; tenant-storm: the same tenants with the batch lane at 8x volume in one dense burst — the *_p99_ratio keys are storm/baseline per victim and must stay within the isolation bound while the batch ratio shows the storm cost its sender; timing at bench scale to match the tenant_fairness criterion bench, metrics_check at quick scale to match the CI scenario run",
  "profile": "release, 1 untimed warmup then {SAMPLES} timed iterations (regen_baselines)",
  "results": [
    {{
      "bench": "tenant_fairness/spk3_mix_3tenants",
      "mean_ns": {mean:.1},
      "min_ns": {min:.1},
      "max_ns": {max:.1},
      "samples": {SAMPLES}
    }}
  ],
  "isolation_contract": {{
    "storm_factor": 8,
    "victim_p99_bound_x": 2.0,
    "note": "tenant_storm_spk3_interactive_p99_ratio and tenant_storm_spk3_streaming_p99_ratio must hold under victim_p99_bound_x; asserted by scenario::tests::tenant_storm_holds_isolated_tenant_p99 and gated here"
  }},
{metrics_check}
}}
"#,
        mean = timing.mean_ns,
        min = timing.min_ns,
        max = timing.max_ns,
        metrics_check = metrics_check_json(&metrics),
    )
}

// ---------------------------------------------------------------------------
// The --check gate
// ---------------------------------------------------------------------------

/// Pulls the number following `"key":` out of a baseline file written by this
/// binary (flat keys, one per line — not a general JSON parser).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Recomputes one baseline's deterministic metrics and diffs them against the
/// committed file.  Returns the number of drifted or missing keys.
fn check_file(root: &std::path::Path, file: &str, expected: &[(&str, f64)]) -> usize {
    let path = root.join(file);
    let committed = match std::fs::read_to_string(&path) {
        Ok(content) => content,
        Err(error) => {
            println!("FAIL {file}: cannot read {}: {error}", path.display());
            return expected.len();
        }
    };
    let mut drifted = 0;
    for (key, actual) in expected {
        match extract_number(&committed, key) {
            None => {
                println!("FAIL {file}: key {key} missing (regenerate the baselines)");
                drifted += 1;
            }
            Some(baseline) => {
                let scale = baseline.abs().max(1e-12);
                let rel = (actual - baseline).abs() / scale;
                if rel > CHECK_TOLERANCE {
                    println!(
                        "FAIL {file}: {key} drifted: baseline {baseline:.4}, recomputed \
                         {actual:.4} (rel {rel:.2e} > {CHECK_TOLERANCE:.0e})"
                    );
                    drifted += 1;
                } else {
                    println!("  ok {file}: {key} = {actual:.4} (baseline {baseline:.4})");
                }
            }
        }
    }
    drifted
}

/// The CI perf-regression gate: recompute every deterministic metrics_check
/// value and compare against the committed baselines.  Exits nonzero on any
/// drift so a change that shifts a headline simulated result cannot land
/// without a deliberate re-baseline.
fn check_gate() -> ! {
    let root = workspace_root();
    let start = Instant::now();
    let mut drifted = 0;
    drifted += check_file(&root, "BENCH_seed.json", &seed_metrics());
    drifted += check_file(&root, "BENCH_scaling.json", &scaling_metrics());
    drifted += check_file(&root, "BENCH_array.json", &array_metrics());
    drifted += check_file(&root, "BENCH_tenants.json", &tenant_metrics());
    let elapsed = start.elapsed().as_secs_f64();
    if drifted > 0 {
        println!(
            "perf gate FAILED: {drifted} metric(s) drifted ({elapsed:.2} s). If the change is \
             intentional, regenerate with: cargo run --release -p sprinkler_experiments --bin \
             regen_baselines -- --label '<PR description>'"
        );
        std::process::exit(1);
    }
    println!("perf gate OK: all committed baseline metrics reproduced ({elapsed:.2} s)");
    std::process::exit(0);
}

fn quick_smoke() {
    let scale = ExperimentScale::quick();
    let start = Instant::now();
    let comparison = fig10::run(&scale, Some(4));
    println!(
        "quick fig10 panel via parallel runner: {} cells in {:.2} s",
        comparison.cells.len(),
        start.elapsed().as_secs_f64()
    );
    println!("{}", comparison.bandwidth_table().render());
    assert!(
        comparison.bandwidth_speedup(SchedulerKind::Spk3, SchedulerKind::Vas) > 1.0,
        "SPK3 must beat VAS at quick scale"
    );

    let start = Instant::now();
    let result = fig15_scaling::run(&scale, Some(&[16, 64]), Some(&[32]));
    println!(
        "quick scaling panel via parallel runner: {} points in {:.2} s",
        result.points.len(),
        start.elapsed().as_secs_f64()
    );
    println!("{}", result.panel(32).render());

    let start = Instant::now();
    let outcomes = sprinkler_experiments::scenario::run_all(&scale);
    let cells: usize = outcomes.iter().map(|o| o.cells.len()).sum();
    println!(
        "scenario registry via parallel runner: {cells} cells in {:.2} s",
        { start.elapsed().as_secs_f64() }
    );
    for outcome in &outcomes {
        assert!(
            outcome.cells.iter().all(|c| c.metrics.io_count > 0),
            "scenario {} dropped I/Os",
            outcome.scenario
        );
    }
    println!("quick smoke OK (no baseline files written)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|arg| arg == "--check") {
        check_gate();
    }
    if args.iter().any(|arg| arg == "--quick") {
        quick_smoke();
        return;
    }
    let date = today();
    // Every committed re-baseline should say which change it belongs to; an
    // unlabeled run is still usable but self-identifies as such.
    let label = json_escape(
        &args
            .iter()
            .position(|arg| arg == "--label")
            .and_then(|at| args.get(at + 1))
            .cloned()
            .unwrap_or_else(|| {
                format!("unlabeled regen_baselines run ({date}); pass --label '<PR description>'")
            }),
    );
    let root = workspace_root();
    let seed = regen_seed_baseline(&label, &date);
    std::fs::write(root.join("BENCH_seed.json"), seed).expect("write BENCH_seed.json");
    let scaling = regen_scaling_baseline(&label, &date);
    std::fs::write(root.join("BENCH_scaling.json"), scaling).expect("write BENCH_scaling.json");
    let array = regen_array_baseline(&label, &date);
    std::fs::write(root.join("BENCH_array.json"), array).expect("write BENCH_array.json");
    let tenants = regen_tenant_baseline(&label, &date);
    std::fs::write(root.join("BENCH_tenants.json"), tenants).expect("write BENCH_tenants.json");
    println!(
        "rewrote BENCH_seed.json, BENCH_scaling.json, BENCH_array.json, and BENCH_tenants.json \
         ({label})"
    );
}
