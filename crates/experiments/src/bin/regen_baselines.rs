//! Regenerates the repository benchmark baselines (`BENCH_seed.json` and
//! `BENCH_scaling.json`) through the parallel experiment runner, so that
//! commitment-stream-changing PRs can refresh every baseline with one command
//! instead of hand-running each bench target:
//!
//! ```sh
//! cargo run --release -p sprinkler_experiments --bin regen_baselines -- \
//!     --label "PR N: what changed the streams"
//! ```
//!
//! `--label` stamps the rewritten files with the change they baseline (an
//! unlabeled run says so in the output).  With `--quick`, runs the quick-scale
//! fig10 panel and a reduced scaling panel through the same parallel path and
//! prints the tables without writing any file — the CI smoke mode that keeps
//! the fan-out code exercised.

use std::time::Instant;

use sprinkler_core::reference::ReferenceScheduler;
use sprinkler_core::SchedulerKind;
use sprinkler_experiments::micro::{bench_scale, representative_run, standing_scene};
use sprinkler_experiments::runner::ExperimentScale;
use sprinkler_experiments::{fig10, fig15_scaling};
use sprinkler_sim::SimTime;
use sprinkler_ssd::scheduler::{IoScheduler, SchedulerContext};

/// Matches the vendored criterion shim: one untimed warmup, then `samples`
/// timed iterations.
const SAMPLES: usize = 10;

struct Timing {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn time_runs(mut body: impl FnMut()) -> Timing {
    body(); // warmup
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        body();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    let sum: f64 = samples.iter().sum();
    Timing {
        mean_ns: sum / samples.len() as f64,
        min_ns: samples.iter().cloned().fold(f64::INFINITY, f64::min),
        max_ns: samples.iter().cloned().fold(0.0, f64::max),
    }
}

/// Escapes a string for interpolation into a JSON string literal.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn time_round(scheduler: &mut dyn IoScheduler, chips: usize) -> Timing {
    let (geometry, queue, ledger) = standing_scene(chips);
    scheduler.initialize(&geometry);
    let ctx = SchedulerContext {
        now: SimTime::ZERO,
        geometry: &geometry,
        queue: &queue,
        ledger: &ledger,
    };
    time_runs(|| {
        std::hint::black_box(scheduler.schedule(&ctx));
    })
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn today() -> String {
    // Derive a calendar date from the system clock without chrono: civil-date
    // conversion of days since the Unix epoch (Howard Hinnant's algorithm).
    let days = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() / 86_400)
        .unwrap_or(0) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn regen_seed_baseline(label: &str, date: &str) -> String {
    println!("== BENCH_seed.json: fig10 at bench scale ==");
    let spk3 = time_runs(|| {
        std::hint::black_box(representative_run(SchedulerKind::Spk3));
    });
    println!("fig10/spk3_run mean {:.1} ns", spk3.mean_ns);

    let start = Instant::now();
    let comparison = fig10::run(&bench_scale(), None);
    let panel_s = start.elapsed().as_secs_f64();
    let bandwidth_x = comparison.bandwidth_speedup(SchedulerKind::Spk3, SchedulerKind::Vas);
    let latency_pct = 100.0 * comparison.latency_reduction(SchedulerKind::Spk3, SchedulerKind::Vas);
    println!(
        "fig10 panel ({} cells, parallel): {panel_s:.2} s; SPK3/VAS bandwidth {bandwidth_x:.2}x, latency -{latency_pct:.1}%",
        comparison.cells.len()
    );

    format!(
        r#"{{
  "baseline": "{label}",
  "date": "{date}",
  "command": "cargo run --release -p sprinkler_experiments --bin regen_baselines -- --label '...'",
  "scale": {{
    "ios_per_workload": 200,
    "blocks_per_plane": 32,
    "note": "bench scale; the timed body is the 120-I/O representative_run recipe of sprinkler_bench"
  }},
  "profile": "release, 1 untimed warmup then {SAMPLES} timed iterations (regen_baselines)",
  "results": [
    {{
      "bench": "fig10/spk3_run",
      "mean_ns": {mean:.1},
      "min_ns": {min:.1},
      "max_ns": {max:.1},
      "samples": {SAMPLES}
    }}
  ],
  "figure_check": {{
    "spk3_vs_vas_bandwidth_x": {bandwidth_x:.2},
    "paper_range_x": [1.8, 2.2],
    "spk3_vs_vas_latency_reduction_pct": {latency_pct:.1},
    "paper_min_pct": 56.6,
    "fig10_panel_wall_clock_s": {panel_s:.2},
    "note": "bench-scale run overshoots the paper's bandwidth ratio; directionally correct"
  }}
}}
"#,
        mean = spk3.mean_ns,
        min = spk3.min_ns,
        max = spk3.max_ns,
    )
}

fn regen_scaling_baseline(label: &str, date: &str) -> String {
    let scale = bench_scale();
    println!("== BENCH_scaling.json: scaling_1024 + scheduler_rounds ==");
    let mut scaling_results = String::new();
    for (i, kind) in [SchedulerKind::Vas, SchedulerKind::Spk3].iter().enumerate() {
        let timing = time_runs(|| {
            std::hint::black_box(fig15_scaling::run_point(&scale, 1024, 32, *kind));
        });
        println!(
            "scaling_1024/{}_1024chips_32kb mean {:.1} ns",
            kind.label(),
            timing.mean_ns
        );
        if i > 0 {
            scaling_results.push_str(",\n");
        }
        scaling_results.push_str(&format!(
            r#"      {{ "bench": "scaling_1024/{}_1024chips_32kb", "mean_ns": {:.1}, "samples": {SAMPLES} }}"#,
            kind.label(),
            timing.mean_ns
        ));
    }

    let mut rounds_results = String::new();
    let mut speedups = String::new();
    for (i, &chips) in [256usize, 1024].iter().enumerate() {
        for (j, kind) in [SchedulerKind::Spk2, SchedulerKind::Spk3]
            .iter()
            .enumerate()
        {
            let fast = time_round(kind.build().as_mut(), chips);
            let mut reference = ReferenceScheduler::new(*kind);
            let naive = time_round(&mut reference, chips);
            println!(
                "scheduler_rounds/{}_{chips}chips mean {:.1} ns (reference {:.1} ns)",
                kind.label(),
                fast.mean_ns,
                naive.mean_ns
            );
            if i > 0 || j > 0 {
                rounds_results.push_str(",\n");
                speedups.push_str(",\n");
            }
            rounds_results.push_str(&format!(
                r#"      {{ "bench": "scheduler_rounds/{label}_{chips}chips", "mean_ns": {:.1} }},
      {{ "bench": "scheduler_rounds/{label}ref_{chips}chips", "mean_ns": {:.1} }}"#,
                fast.mean_ns,
                naive.mean_ns,
                label = kind.label(),
            ));
            speedups.push_str(&format!(
                r#"      "{}_{chips}chips_x": {:.1}"#,
                kind.label(),
                naive.mean_ns / fast.mean_ns
            ));
        }
    }

    let start = Instant::now();
    let result = fig15_scaling::run(&ExperimentScale::full(), None, None);
    let full_s = start.elapsed().as_secs_f64();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "fig15_scaling full panel ({} points, {workers} workers): {full_s:.2} s",
        result.points.len()
    );

    format!(
        r#"{{
  "baseline": "{label}",
  "date": "{date}",
  "command": "cargo run --release -p sprinkler_experiments --bin regen_baselines -- --label '...'",
  "profile": "release, 1 untimed warmup then {SAMPLES} timed iterations (regen_baselines)",
  "scaling_1024": {{
    "scale": {{ "ios_per_workload": 200, "blocks_per_plane": 32, "transfer_kb": 32 }},
    "results": [
{scaling_results}
    ]
  }},
  "scheduler_rounds": {{
    "scene": "standing 32-deep queue of 256-page tags, all but 4 pages per tag committed (steady-state round shape), overlapping read/write LPN ranges",
    "note": "SPKn = optimized index-driven path; SPKnref = full-scan reference twin; both against the CommitmentLedger semantics",
    "results": [
{rounds_results}
    ],
    "round_speedup_vs_reference": {{
{speedups}
    }}
  }},
  "full_scale_sweep_point": {{
    "note": "fig15_scaling at ExperimentScale::full() (2000 I/Os, 64 blocks/plane), all 4 chip counts x 3 transfer panels x 2 schedulers, via the parallel cell runner",
    "wall_clock_s": {full_s:.2},
    "worker_threads": {workers},
    "budget_s": 60
  }}
}}
"#,
    )
}

fn quick_smoke() {
    let scale = ExperimentScale::quick();
    let start = Instant::now();
    let comparison = fig10::run(&scale, Some(4));
    println!(
        "quick fig10 panel via parallel runner: {} cells in {:.2} s",
        comparison.cells.len(),
        start.elapsed().as_secs_f64()
    );
    println!("{}", comparison.bandwidth_table().render());
    assert!(
        comparison.bandwidth_speedup(SchedulerKind::Spk3, SchedulerKind::Vas) > 1.0,
        "SPK3 must beat VAS at quick scale"
    );

    let start = Instant::now();
    let result = fig15_scaling::run(&scale, Some(&[16, 64]), Some(&[32]));
    println!(
        "quick scaling panel via parallel runner: {} points in {:.2} s",
        result.points.len(),
        start.elapsed().as_secs_f64()
    );
    println!("{}", result.panel(32).render());

    let start = Instant::now();
    let outcomes = sprinkler_experiments::scenario::run_all(&scale);
    let cells: usize = outcomes.iter().map(|o| o.cells.len()).sum();
    println!(
        "scenario registry via parallel runner: {cells} cells in {:.2} s",
        { start.elapsed().as_secs_f64() }
    );
    for outcome in &outcomes {
        assert!(
            outcome.cells.iter().all(|c| c.metrics.io_count > 0),
            "scenario {} dropped I/Os",
            outcome.scenario
        );
    }
    println!("quick smoke OK (no baseline files written)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|arg| arg == "--quick") {
        quick_smoke();
        return;
    }
    let date = today();
    // Every committed re-baseline should say which change it belongs to; an
    // unlabeled run is still usable but self-identifies as such.
    let label = json_escape(
        &args
            .iter()
            .position(|arg| arg == "--label")
            .and_then(|at| args.get(at + 1))
            .cloned()
            .unwrap_or_else(|| {
                format!("unlabeled regen_baselines run ({date}); pass --label '<PR description>'")
            }),
    );
    let root = workspace_root();
    let seed = regen_seed_baseline(&label, &date);
    std::fs::write(root.join("BENCH_seed.json"), seed).expect("write BENCH_seed.json");
    let scaling = regen_scaling_baseline(&label, &date);
    std::fs::write(root.join("BENCH_scaling.json"), scaling).expect("write BENCH_scaling.json");
    println!("rewrote BENCH_seed.json and BENCH_scaling.json ({label})");
}
