//! Runs the named-scenario registry from the command line:
//!
//! ```sh
//! cargo run --release -p sprinkler_experiments --bin scenarios -- --quick
//! cargo run --release -p sprinkler_experiments --bin scenarios -- enterprise-replay
//! ```
//!
//! With no arguments, runs every registered scenario at full scale.  Pass
//! `--quick` for the CI-sized run, and/or scenario names to run a subset.

use std::time::Instant;

use sprinkler_experiments::runner::ExperimentScale;
use sprinkler_experiments::{scenario, SCENARIO_NAMES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Scale flags (--quick / --bench / --full) resolve through the shared
    // helper so every binary agrees on what each mode means.
    let scale = ExperimentScale::from_args(args.iter().map(String::as_str));
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let names: Vec<&str> = if requested.is_empty() {
        SCENARIO_NAMES.to_vec()
    } else {
        requested
    };

    for name in names {
        let start = Instant::now();
        let Some(outcome) = scenario::run(name, &scale) else {
            eprintln!(
                "unknown scenario {name:?}; registered: {}",
                SCENARIO_NAMES.join(", ")
            );
            std::process::exit(2);
        };
        println!("{}", outcome.table().render());
        println!(
            "{} cells in {:.2} s\n",
            outcome.cells.len(),
            start.elapsed().as_secs_f64()
        );
        // Every scenario must complete all of its work; a silent empty cell
        // set would let CI pass while covering nothing.
        assert!(!outcome.cells.is_empty());
        assert!(outcome.cells.iter().all(|c| c.metrics.io_count > 0));
    }
}
