//! Fig 1 — performance stagnation, chip utilization, and memory-level idleness as
//! the number of flash dies grows, under a conventional (VAS) controller.

use serde::{Deserialize, Serialize};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::SsdConfig;

use crate::report::{fmt_f64, fmt_pct, Table};
use crate::runner::{run_one, ExperimentScale};

/// One measured point of Fig 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig01Point {
    /// Number of flash dies in the configuration.
    pub dies: usize,
    /// Data transfer size in KB.
    pub transfer_kb: u64,
    /// Read bandwidth in KB/s (Fig 1a).
    pub bandwidth_kb_per_sec: f64,
    /// Chip utilization (Fig 1b).
    pub chip_utilization: f64,
    /// Memory-level idleness (Fig 1b).
    pub idleness: f64,
}

/// The full Fig 1 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig01Result {
    /// All measured points.
    pub points: Vec<Fig01Point>,
}

/// The chip counts swept (dies = 2 × chips in the paper's flash package).
pub const CHIP_COUNTS: [usize; 4] = [16, 64, 256, 1024];

/// Transfer sizes (KB) of the Fig 1 curves.
pub const TRANSFER_SIZES_KB: [u64; 4] = [4, 16, 64, 128];

/// Runs the Fig 1 sweep with the conventional controller.
pub fn run(scale: &ExperimentScale) -> Fig01Result {
    let mut points = Vec::new();
    for &chips in &CHIP_COUNTS {
        let config = SsdConfig::paper_default()
            .with_chip_count(chips)
            .with_blocks_per_plane(scale.blocks_per_plane);
        for &transfer_kb in &TRANSFER_SIZES_KB {
            let trace = scale.sweep_trace(transfer_kb, 1.0, 0x01);
            let metrics = run_one(&config, SchedulerKind::Vas, &trace);
            points.push(Fig01Point {
                dies: chips * config.geometry.dies_per_chip,
                transfer_kb,
                bandwidth_kb_per_sec: metrics.bandwidth_kb_per_sec,
                chip_utilization: metrics.chip_utilization,
                idleness: metrics.inter_chip_idleness,
            });
        }
    }
    Fig01Result { points }
}

impl Fig01Result {
    /// The bandwidth series of Fig 1a.
    pub fn bandwidth_table(&self) -> Table {
        let mut table = Table::new(
            "Fig 1a: read bandwidth (KB/s) vs number of dies, conventional controller",
            std::iter::once("dies".to_string())
                .chain(TRANSFER_SIZES_KB.iter().map(|kb| format!("{kb}KB")))
                .collect(),
        );
        for &chips in &CHIP_COUNTS {
            let dies = chips * 2;
            let mut row = vec![dies.to_string()];
            for &kb in &TRANSFER_SIZES_KB {
                let point = self
                    .points
                    .iter()
                    .find(|p| p.dies == dies && p.transfer_kb == kb);
                row.push(point.map_or_else(String::new, |p| fmt_f64(p.bandwidth_kb_per_sec)));
            }
            table.add_row(row);
        }
        table
    }

    /// The utilization / idleness series of Fig 1b.
    pub fn utilization_table(&self) -> Table {
        let mut table = Table::new(
            "Fig 1b: chip utilization and memory-level idleness vs number of dies",
            vec![
                "dies".into(),
                "transfer".into(),
                "utilization".into(),
                "idleness".into(),
            ],
        );
        for point in &self.points {
            table.add_row(vec![
                point.dies.to_string(),
                format!("{}KB", point.transfer_kb),
                fmt_pct(point.chip_utilization),
                fmt_pct(point.idleness),
            ]);
        }
        table
    }

    /// Bandwidth for a given transfer size across the die counts, smallest first.
    pub fn bandwidth_series(&self, transfer_kb: u64) -> Vec<f64> {
        CHIP_COUNTS
            .iter()
            .filter_map(|&chips| {
                self.points
                    .iter()
                    .find(|p| p.dies == chips * 2 && p.transfer_kb == transfer_kb)
                    .map(|p| p.bandwidth_kb_per_sec)
            })
            .collect()
    }

    /// True when bandwidth stops scaling with the die count: the last doubling of
    /// dies yields less than a 1.3× bandwidth gain for the given transfer size —
    /// the stagnation the paper motivates with.
    pub fn stagnates(&self, transfer_kb: u64) -> bool {
        let series = self.bandwidth_series(transfer_kb);
        match series.as_slice() {
            [.., prev, last] => *last < *prev * 1.3,
            _ => false,
        }
    }

    /// Utilization for a given transfer size across the die counts.
    pub fn utilization_series(&self, transfer_kb: u64) -> Vec<f64> {
        CHIP_COUNTS
            .iter()
            .filter_map(|&chips| {
                self.points
                    .iter()
                    .find(|p| p.dies == chips * 2 && p.transfer_kb == transfer_kb)
                    .map(|p| p.chip_utilization)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_transfers_stagnate_and_utilization_collapses() {
        let scale = ExperimentScale {
            ios_per_workload: 200,
            blocks_per_plane: 16,
        };
        let result = run(&scale);
        assert_eq!(
            result.points.len(),
            CHIP_COUNTS.len() * TRANSFER_SIZES_KB.len()
        );
        // Small transfers cannot feed thousands of dies: bandwidth stagnates.
        assert!(result.stagnates(4), "4KB bandwidth must stop scaling");
        // Utilization falls monotonically as dies grow for the small transfer.
        let util = result.utilization_series(4);
        assert!(util.first().unwrap() > util.last().unwrap());
        // Idleness is the complement of utilization.
        for p in &result.points {
            assert!((p.chip_utilization + p.idleness - 1.0).abs() < 1e-6);
        }
        let rendered = result.bandwidth_table().render();
        assert!(rendered.contains("dies"));
        assert!(result.utilization_table().row_count() > 0);
    }
}
