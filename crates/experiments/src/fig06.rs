//! Fig 6 — resource utilization and improvement potential: chip utilization under
//! VAS (the typical scenario), PAS (resource conflicts addressed), and the relaxed
//! scenario where both parallelism dependency and transactional-locality are solved
//! (realized here by SPK3).

use serde::{Deserialize, Serialize};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::SsdConfig;
use sprinkler_workloads::paper_workloads;

use crate::report::{fmt_pct, Table};
use crate::runner::{find_cell, run_matrix, ExperimentScale, MatrixCell};

/// The Fig 6 measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig06Result {
    /// One cell per workload and scenario scheduler.
    pub cells: Vec<MatrixCell>,
    /// Workload names in Table 1 order.
    pub workloads: Vec<String>,
}

/// The three scenarios of Fig 6, expressed as schedulers.
pub const SCENARIOS: [SchedulerKind; 3] =
    [SchedulerKind::Vas, SchedulerKind::Pas, SchedulerKind::Spk3];

/// Runs the Fig 6 sweep.
pub fn run(scale: &ExperimentScale, workload_limit: Option<usize>) -> Fig06Result {
    let limit = workload_limit.unwrap_or(usize::MAX);
    let traces: Vec<_> = paper_workloads()
        .into_iter()
        .take(limit)
        .map(|spec| spec.generate(scale.ios_per_workload, 0xF06))
        .collect();
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);
    let cells = run_matrix(&config, &SCENARIOS, &traces);
    Fig06Result {
        workloads: traces.iter().map(|t| t.name().to_string()).collect(),
        cells,
    }
}

impl Fig06Result {
    /// Chip utilization of one workload under one scenario.
    pub fn utilization(&self, workload: &str, scenario: SchedulerKind) -> Option<f64> {
        find_cell(&self.cells, workload, scenario).map(|c| c.metrics.chip_utilization)
    }

    /// Mean chip utilization of a scenario across the workloads.
    pub fn mean_utilization(&self, scenario: SchedulerKind) -> f64 {
        let values: Vec<f64> = self
            .workloads
            .iter()
            .filter_map(|w| self.utilization(w, scenario))
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Renders the figure: utilization per workload for the three scenarios plus
    /// the improvement potential (relaxed − typical).
    pub fn render(&self) -> Table {
        let mut table = Table::new(
            "Fig 6: chip utilization and improvement potential",
            vec![
                "workload".into(),
                "VAS (typical)".into(),
                "PAS (improved)".into(),
                "relaxed (SPK3)".into(),
                "potential".into(),
            ],
        );
        for workload in &self.workloads {
            let vas = self
                .utilization(workload, SchedulerKind::Vas)
                .unwrap_or(0.0);
            let pas = self
                .utilization(workload, SchedulerKind::Pas)
                .unwrap_or(0.0);
            let relaxed = self
                .utilization(workload, SchedulerKind::Spk3)
                .unwrap_or(0.0);
            table.add_row(vec![
                workload.clone(),
                fmt_pct(vas),
                fmt_pct(pas),
                fmt_pct(relaxed),
                fmt_pct((relaxed - vas).max(0.0)),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxing_both_challenges_raises_utilization() {
        let scale = ExperimentScale {
            ios_per_workload: 150,
            blocks_per_plane: 16,
        };
        let result = run(&scale, Some(3));
        let vas = result.mean_utilization(SchedulerKind::Vas);
        let pas = result.mean_utilization(SchedulerKind::Pas);
        let relaxed = result.mean_utilization(SchedulerKind::Spk3);
        assert!(pas >= vas, "PAS {pas:.3} must not fall below VAS {vas:.3}");
        assert!(
            relaxed > vas,
            "relaxed {relaxed:.3} must exceed VAS {vas:.3}"
        );
        assert_eq!(result.render().row_count(), 3);
    }
}
