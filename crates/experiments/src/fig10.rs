//! Fig 10 — the headline comparison: bandwidth, IOPS, average latency, and queue
//! stall time for VAS, PAS, SPK1, SPK2, and SPK3 across the sixteen Table 1
//! workloads.  The same scheduler × workload matrix feeds Figs 11, 13, and 14.

use serde::{Deserialize, Serialize};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::{RunMetrics, SsdConfig};
use sprinkler_workloads::paper_workloads;

use crate::report::{fmt_f64, Table};
use crate::runner::{find_cell, run_matrix, ExperimentScale, MatrixCell};

/// The scheduler × workload matrix underlying Figs 10, 11, 13, and 14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MainComparison {
    /// Every (workload, scheduler) run.
    pub cells: Vec<MatrixCell>,
    /// Workload names in Table 1 order.
    pub workloads: Vec<String>,
}

/// Runs the main comparison over all sixteen workloads (or the first
/// `workload_limit` of them) and all five schedulers.
pub fn run(scale: &ExperimentScale, workload_limit: Option<usize>) -> MainComparison {
    let limit = workload_limit.unwrap_or(usize::MAX);
    let traces: Vec<_> = paper_workloads()
        .into_iter()
        .take(limit)
        .map(|spec| spec.generate(scale.ios_per_workload, 0x000F_1610))
        .collect();
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);
    let cells = run_matrix(&config, &SchedulerKind::ALL, &traces);
    MainComparison {
        workloads: traces.iter().map(|t| t.name().to_string()).collect(),
        cells,
    }
}

impl MainComparison {
    /// Metrics of one workload under one scheduler.
    pub fn metrics(&self, workload: &str, scheduler: SchedulerKind) -> Option<&RunMetrics> {
        find_cell(&self.cells, workload, scheduler).map(|c| &c.metrics)
    }

    fn table_of(&self, title: &str, value: impl Fn(&RunMetrics) -> String) -> Table {
        let mut table = Table::new(
            title,
            std::iter::once("workload".to_string())
                .chain(SchedulerKind::ALL.iter().map(|k| k.label().to_string()))
                .collect(),
        );
        for workload in &self.workloads {
            let mut row = vec![workload.clone()];
            for kind in SchedulerKind::ALL {
                row.push(
                    self.metrics(workload, kind)
                        .map_or_else(String::new, &value),
                );
            }
            table.add_row(row);
        }
        table
    }

    /// Fig 10a: I/O bandwidth (KB/s).
    pub fn bandwidth_table(&self) -> Table {
        self.table_of("Fig 10a: I/O bandwidth (KB/s)", |m| {
            fmt_f64(m.bandwidth_kb_per_sec)
        })
    }

    /// Fig 10b: IOPS.
    pub fn iops_table(&self) -> Table {
        self.table_of("Fig 10b: IOPS", |m| fmt_f64(m.iops))
    }

    /// Fig 10c: average device-level latency (ns).
    pub fn latency_table(&self) -> Table {
        self.table_of("Fig 10c: average I/O latency (ns)", |m| {
            fmt_f64(m.avg_latency_ns)
        })
    }

    /// Fig 10d: queue stall time normalized to VAS.
    pub fn queue_stall_table(&self) -> Table {
        let mut table = Table::new(
            "Fig 10d: device queue stall time (normalized to VAS)",
            std::iter::once("workload".to_string())
                .chain(SchedulerKind::ALL.iter().map(|k| k.label().to_string()))
                .collect(),
        );
        for workload in &self.workloads {
            let vas_stall = self
                .metrics(workload, SchedulerKind::Vas)
                .map(|m| m.queue_stall_ns as f64)
                .unwrap_or(0.0);
            let mut row = vec![workload.clone()];
            for kind in SchedulerKind::ALL {
                let value = self
                    .metrics(workload, kind)
                    .map(|m| {
                        if vas_stall <= 0.0 {
                            0.0
                        } else {
                            m.queue_stall_ns as f64 / vas_stall
                        }
                    })
                    .unwrap_or(0.0);
                row.push(fmt_f64(value));
            }
            table.add_row(row);
        }
        table
    }

    /// Geometric-mean speedup of `kind` over `baseline` in bandwidth.
    pub fn bandwidth_speedup(&self, kind: SchedulerKind, baseline: SchedulerKind) -> f64 {
        let mut product = 1.0f64;
        let mut count = 0usize;
        for workload in &self.workloads {
            let (Some(a), Some(b)) = (
                self.metrics(workload, kind),
                self.metrics(workload, baseline),
            ) else {
                continue;
            };
            if b.bandwidth_kb_per_sec > 0.0 {
                product *= a.bandwidth_kb_per_sec / b.bandwidth_kb_per_sec;
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            product.powf(1.0 / count as f64)
        }
    }

    /// Mean latency reduction of `kind` relative to `baseline` (0.3 = 30% shorter).
    pub fn latency_reduction(&self, kind: SchedulerKind, baseline: SchedulerKind) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for workload in &self.workloads {
            let (Some(a), Some(b)) = (
                self.metrics(workload, kind),
                self.metrics(workload, baseline),
            ) else {
                continue;
            };
            if b.avg_latency_ns > 0.0 {
                sum += 1.0 - a.avg_latency_ns / b.avg_latency_ns;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_reproduces_the_paper_ordering_on_a_subset() {
        let scale = ExperimentScale {
            ios_per_workload: 150,
            blocks_per_plane: 16,
        };
        let comparison = run(&scale, Some(3));
        assert_eq!(comparison.workloads.len(), 3);
        assert_eq!(comparison.cells.len(), 15);

        // SPK3 beats VAS in bandwidth and latency on average.
        assert!(comparison.bandwidth_speedup(SchedulerKind::Spk3, SchedulerKind::Vas) > 1.0);
        assert!(comparison.latency_reduction(SchedulerKind::Spk3, SchedulerKind::Vas) > 0.0);

        // Tables render one row per workload.
        assert_eq!(comparison.bandwidth_table().row_count(), 3);
        assert_eq!(comparison.iops_table().row_count(), 3);
        assert_eq!(comparison.latency_table().row_count(), 3);
        assert_eq!(comparison.queue_stall_table().row_count(), 3);
        assert!(comparison.bandwidth_table().render().contains("SPK3"));
    }
}
