//! Fig 11 — inter-chip and intra-chip idleness under the five schedulers.

use sprinkler_core::SchedulerKind;

use crate::fig10::MainComparison;
use crate::report::{fmt_pct, Table};

/// Fig 11a: inter-chip idleness (%) per workload and scheduler.
pub fn inter_chip_table(comparison: &MainComparison) -> Table {
    idleness_table(comparison, "Fig 11a: inter-chip idleness", |m| {
        m.inter_chip_idleness
    })
}

/// Fig 11b: intra-chip idleness (%) per workload and scheduler.
pub fn intra_chip_table(comparison: &MainComparison) -> Table {
    idleness_table(comparison, "Fig 11b: intra-chip idleness", |m| {
        m.intra_chip_idleness
    })
}

fn idleness_table(
    comparison: &MainComparison,
    title: &str,
    value: impl Fn(&sprinkler_ssd::RunMetrics) -> f64,
) -> Table {
    let mut table = Table::new(
        title,
        std::iter::once("workload".to_string())
            .chain(SchedulerKind::ALL.iter().map(|k| k.label().to_string()))
            .collect(),
    );
    for workload in &comparison.workloads {
        let mut row = vec![workload.clone()];
        for kind in SchedulerKind::ALL {
            row.push(
                comparison
                    .metrics(workload, kind)
                    .map_or_else(String::new, |m| fmt_pct(value(m))),
            );
        }
        table.add_row(row);
    }
    table
}

/// Average idleness reduction (in percentage points) of `kind` relative to
/// `baseline` for inter-chip idleness.
pub fn inter_chip_improvement(
    comparison: &MainComparison,
    kind: SchedulerKind,
    baseline: SchedulerKind,
) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for workload in &comparison.workloads {
        if let (Some(a), Some(b)) = (
            comparison.metrics(workload, kind),
            comparison.metrics(workload, baseline),
        ) {
            sum += b.inter_chip_idleness - a.inter_chip_idleness;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig10;
    use crate::runner::ExperimentScale;

    #[test]
    fn sprinkler_reduces_inter_chip_idleness() {
        let scale = ExperimentScale {
            ios_per_workload: 150,
            blocks_per_plane: 16,
        };
        let comparison = fig10::run(&scale, Some(3));
        let improvement =
            inter_chip_improvement(&comparison, SchedulerKind::Spk3, SchedulerKind::Vas);
        assert!(
            improvement > 0.0,
            "SPK3 must reduce inter-chip idleness vs VAS (improvement={improvement})"
        );
        assert_eq!(inter_chip_table(&comparison).row_count(), 3);
        assert_eq!(intra_chip_table(&comparison).row_count(), 3);
    }
}
