//! Fig 12 — latency time-series analysis over the first requests of `msnfs1`,
//! comparing VAS against PAS and against SPK3.

use serde::{Deserialize, Serialize};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::{RunMetrics, SsdConfig};
use sprinkler_workloads::workload;

use crate::report::{fmt_f64, Table};
use crate::runner::{run_one_detailed, ExperimentScale};

/// The schedulers plotted in Fig 12.
pub const FIG12_SCHEDULERS: [SchedulerKind; 3] =
    [SchedulerKind::Vas, SchedulerKind::Pas, SchedulerKind::Spk3];

/// The Fig 12 measurement: per-I/O latency series per scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Per-scheduler run metrics including the latency series.
    pub runs: Vec<(SchedulerKind, RunMetrics)>,
    /// How many I/O requests were replayed.
    pub io_count: u64,
}

/// Runs the time-series experiment over the first `io_count` requests of msnfs1
/// (the paper uses three thousand).
pub fn run(scale: &ExperimentScale, io_count: u64) -> Fig12Result {
    let spec = workload("msnfs1").expect("msnfs1 is part of Table 1");
    let trace = spec
        .generate(io_count.max(1), 0xF12)
        .truncated(io_count as usize);
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);
    let runs = FIG12_SCHEDULERS
        .iter()
        .map(|&kind| (kind, run_one_detailed(&config, kind, &trace, true, None)))
        .collect();
    Fig12Result { runs, io_count }
}

impl Fig12Result {
    /// The latency series of one scheduler, in request order.
    pub fn series(&self, kind: SchedulerKind) -> Option<&[(u64, u64)]> {
        self.runs
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| m.latency_series.as_slice())
    }

    /// Mean latency (ns) of one scheduler over the replayed window.
    pub fn mean_latency(&self, kind: SchedulerKind) -> f64 {
        self.runs
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| m.avg_latency_ns)
            .unwrap_or(0.0)
    }

    /// Renders a summary table (mean / p99 / max latency per scheduler).
    pub fn render(&self) -> Table {
        let mut table = Table::new(
            format!(
                "Fig 12: msnfs1 latency time series summary (first {} I/Os)",
                self.io_count
            ),
            vec![
                "scheduler".into(),
                "mean (ns)".into(),
                "p99 (ns)".into(),
                "max (ns)".into(),
            ],
        );
        for (kind, metrics) in &self.runs {
            table.add_row(vec![
                kind.label().to_string(),
                fmt_f64(metrics.avg_latency_ns),
                metrics.p99_latency_ns.to_string(),
                metrics.max_latency_ns.to_string(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spk3_series_is_faster_than_vas() {
        let scale = ExperimentScale {
            ios_per_workload: 150,
            blocks_per_plane: 16,
        };
        let result = run(&scale, 200);
        assert_eq!(result.io_count, 200);
        let vas_series = result.series(SchedulerKind::Vas).unwrap();
        let spk3_series = result.series(SchedulerKind::Spk3).unwrap();
        assert_eq!(vas_series.len(), 200);
        assert_eq!(spk3_series.len(), 200);
        assert!(
            result.mean_latency(SchedulerKind::Spk3) < result.mean_latency(SchedulerKind::Vas),
            "SPK3 must be faster than VAS over the msnfs1 window"
        );
        assert_eq!(result.render().row_count(), 3);
    }
}
