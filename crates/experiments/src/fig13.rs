//! Fig 13 — execution-time breakdown (bus operation, bus contention, memory
//! operation, system idle) for PAS and SPK3.

use sprinkler_core::SchedulerKind;

use crate::fig10::MainComparison;
use crate::report::{fmt_pct, Table};

/// Renders the execution breakdown of one scheduler across all workloads.
pub fn breakdown_table(comparison: &MainComparison, kind: SchedulerKind) -> Table {
    let mut table = Table::new(
        format!("Fig 13: execution time breakdown ({})", kind.label()),
        vec![
            "workload".into(),
            "bus op".into(),
            "bus contention".into(),
            "memory op".into(),
            "idle".into(),
        ],
    );
    for workload in &comparison.workloads {
        if let Some(m) = comparison.metrics(workload, kind) {
            table.add_row(vec![
                workload.clone(),
                fmt_pct(m.execution.bus_operation),
                fmt_pct(m.execution.bus_contention),
                fmt_pct(m.execution.memory_operation),
                fmt_pct(m.execution.idle),
            ]);
        }
    }
    table
}

/// Average system-idle fraction of a scheduler over all workloads.
pub fn mean_idle(comparison: &MainComparison, kind: SchedulerKind) -> f64 {
    let values: Vec<f64> = comparison
        .workloads
        .iter()
        .filter_map(|w| comparison.metrics(w, kind))
        .map(|m| m.execution.idle)
        .collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig10;
    use crate::runner::ExperimentScale;

    #[test]
    fn spk3_spends_less_time_idle_than_pas() {
        // Five workloads rather than three: on very small subsets the mean
        // idle gap between PAS and SPK3 is within workload-to-workload noise.
        let scale = ExperimentScale {
            ios_per_workload: 200,
            blocks_per_plane: 16,
        };
        let comparison = fig10::run(&scale, Some(5));
        let pas_idle = mean_idle(&comparison, SchedulerKind::Pas);
        let spk3_idle = mean_idle(&comparison, SchedulerKind::Spk3);
        assert!(
            spk3_idle < pas_idle,
            "SPK3 idle {spk3_idle:.3} must be below PAS idle {pas_idle:.3}"
        );
        let table = breakdown_table(&comparison, SchedulerKind::Spk3);
        assert_eq!(table.row_count(), 5);
        assert!(table.render().contains("memory op"));
    }
}
