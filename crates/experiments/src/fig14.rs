//! Fig 14 — flash-level parallelism breakdown (NON-PAL / PAL1 / PAL2 / PAL3) for
//! PAS, SPK1, SPK2, and SPK3.

use sprinkler_core::SchedulerKind;

use crate::fig10::MainComparison;
use crate::report::{fmt_pct, Table};

/// The schedulers Fig 14 plots.
pub const FIG14_SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Pas,
    SchedulerKind::Spk1,
    SchedulerKind::Spk2,
    SchedulerKind::Spk3,
];

/// Renders the FLP breakdown of one scheduler across all workloads.
pub fn flp_table(comparison: &MainComparison, kind: SchedulerKind) -> Table {
    let mut table = Table::new(
        format!("Fig 14: FLP breakdown ({})", kind.label()),
        vec![
            "workload".into(),
            "NON-PAL".into(),
            "PAL1".into(),
            "PAL2".into(),
            "PAL3".into(),
        ],
    );
    for workload in &comparison.workloads {
        if let Some(m) = comparison.metrics(workload, kind) {
            let flp = m.flp.as_array();
            table.add_row(vec![
                workload.clone(),
                fmt_pct(flp[0]),
                fmt_pct(flp[1]),
                fmt_pct(flp[2]),
                fmt_pct(flp[3]),
            ]);
        }
    }
    table
}

/// Mean FLP level (0 = NON-PAL … 3 = PAL3) of a scheduler over all workloads.
pub fn mean_flp_level(comparison: &MainComparison, kind: SchedulerKind) -> f64 {
    let values: Vec<f64> = comparison
        .workloads
        .iter()
        .filter_map(|w| comparison.metrics(w, kind))
        .map(|m| m.flp.mean_level())
        .collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Mean fraction of requests served with *some* flash-level parallelism.
pub fn mean_parallel_fraction(comparison: &MainComparison, kind: SchedulerKind) -> f64 {
    let values: Vec<f64> = comparison
        .workloads
        .iter()
        .filter_map(|w| comparison.metrics(w, kind))
        .map(|m| 1.0 - m.flp.non_pal)
        .collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig10;
    use crate::runner::ExperimentScale;

    #[test]
    fn faro_variants_achieve_more_flp_than_pas() {
        let scale = ExperimentScale {
            ios_per_workload: 150,
            blocks_per_plane: 16,
        };
        let comparison = fig10::run(&scale, Some(3));
        let pas = mean_flp_level(&comparison, SchedulerKind::Pas);
        let spk1 = mean_flp_level(&comparison, SchedulerKind::Spk1);
        let spk3 = mean_flp_level(&comparison, SchedulerKind::Spk3);
        assert!(
            spk1 >= pas,
            "SPK1 FLP {spk1:.3} must be at least PAS {pas:.3}"
        );
        assert!(spk3 > pas, "SPK3 FLP {spk3:.3} must exceed PAS {pas:.3}");
        for kind in FIG14_SCHEDULERS {
            assert_eq!(flp_table(&comparison, kind).row_count(), 3);
        }
        assert!(mean_parallel_fraction(&comparison, SchedulerKind::Spk3) > 0.0);
    }
}
