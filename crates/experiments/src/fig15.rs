//! Fig 15 — chip utilization as a function of the data transfer size (4 KB – 4 MB)
//! and the SSD population (64, 256, 1024 chips) for VAS, SPK1, SPK2, and SPK3.

use serde::{Deserialize, Serialize};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::SsdConfig;

use crate::report::{fmt_pct, Table};
use crate::runner::{run_cells, run_one, ExperimentScale};

/// The schedulers Fig 15 plots.
pub const FIG15_SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Vas,
    SchedulerKind::Spk1,
    SchedulerKind::Spk2,
    SchedulerKind::Spk3,
];

/// The chip counts of Fig 15's three panels.
pub const CHIP_COUNTS: [usize; 3] = [64, 256, 1024];

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig15Point {
    /// Total flash chips in the SSD.
    pub chips: usize,
    /// Transfer size in KB.
    pub transfer_kb: u64,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Measured chip utilization.
    pub utilization: f64,
}

/// The full Fig 15 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Result {
    /// All measured points.
    pub points: Vec<Fig15Point>,
    /// The transfer sizes swept.
    pub transfer_sizes_kb: Vec<u64>,
    /// The chip counts swept.
    pub chip_counts: Vec<usize>,
}

/// Runs the sweep.  `chip_counts` defaults to the paper's 64/256/1024 panels when
/// `None`; pass a subset for quicker runs.  The (chip-count × transfer ×
/// scheduler) cells are independent simulations and fan out over [`run_cells`];
/// point order matches the serial loop.
pub fn run(scale: &ExperimentScale, chip_counts: Option<&[usize]>) -> Fig15Result {
    let chip_counts: Vec<usize> = chip_counts.unwrap_or(&CHIP_COUNTS).to_vec();
    let transfer_sizes = scale.sweep_sizes_kb();
    // One trace per transfer size, shared by every (chips, scheduler) cell.
    let traces: Vec<_> = transfer_sizes
        .iter()
        .map(|&transfer_kb| (transfer_kb, scale.sweep_trace(transfer_kb, 1.0, 0xF15)))
        .collect();
    let cells: Vec<(usize, &(u64, sprinkler_workloads::Trace), SchedulerKind)> = chip_counts
        .iter()
        .flat_map(|&chips| {
            traces.iter().flat_map(move |trace| {
                FIG15_SCHEDULERS
                    .iter()
                    .map(move |&scheduler| (chips, trace, scheduler))
            })
        })
        .collect();
    let points = run_cells(&cells, |&(chips, (transfer_kb, trace), scheduler)| {
        let config = SsdConfig::paper_default()
            .with_chip_count(chips)
            .with_blocks_per_plane(scale.blocks_per_plane);
        let metrics = run_one(&config, scheduler, trace);
        Fig15Point {
            chips,
            transfer_kb: *transfer_kb,
            scheduler,
            utilization: metrics.chip_utilization,
        }
    });
    Fig15Result {
        points,
        transfer_sizes_kb: transfer_sizes,
        chip_counts,
    }
}

impl Fig15Result {
    /// Utilization for a specific point.
    pub fn utilization(
        &self,
        chips: usize,
        transfer_kb: u64,
        scheduler: SchedulerKind,
    ) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.chips == chips && p.transfer_kb == transfer_kb && p.scheduler == scheduler)
            .map(|p| p.utilization)
    }

    /// Mean utilization of a scheduler over all transfer sizes at one chip count.
    pub fn mean_utilization(&self, chips: usize, scheduler: SchedulerKind) -> f64 {
        let values: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.chips == chips && p.scheduler == scheduler)
            .map(|p| p.utilization)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Renders one panel (one chip count) of the figure.
    pub fn panel(&self, chips: usize) -> Table {
        let mut table = Table::new(
            format!("Fig 15: chip utilization vs transfer size ({chips} chips)"),
            std::iter::once("transfer".to_string())
                .chain(FIG15_SCHEDULERS.iter().map(|k| k.label().to_string()))
                .collect(),
        );
        for &kb in &self.transfer_sizes_kb {
            let mut row = vec![format!("{kb}KB")];
            for &scheduler in &FIG15_SCHEDULERS {
                row.push(
                    self.utilization(chips, kb, scheduler)
                        .map_or_else(String::new, fmt_pct),
                );
            }
            table.add_row(row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spk3_sustains_utilization_where_vas_does_not() {
        let scale = ExperimentScale {
            ios_per_workload: 150,
            blocks_per_plane: 16,
        };
        let result = run(&scale, Some(&[64]));
        assert!(!result.points.is_empty());
        let vas = result.mean_utilization(64, SchedulerKind::Vas);
        let spk3 = result.mean_utilization(64, SchedulerKind::Spk3);
        assert!(
            spk3 > vas,
            "SPK3 utilization {spk3:.3} must exceed VAS {vas:.3}"
        );
        let panel = result.panel(64);
        assert_eq!(panel.row_count(), result.transfer_sizes_kb.len());
    }
}
