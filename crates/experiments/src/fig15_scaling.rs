//! The many-chip scaling sweep (Fig 1 + Fig 15 composite): bandwidth and chip
//! utilization as the SSD grows from 16 to 1024 chips, under the conventional
//! controller (VAS) and full Sprinkler (SPK3).
//!
//! This is the paper's headline claim made first-class: the conventional
//! controller stagnates as chips are added (Fig 1) while Sprinkler keeps
//! converting the added parallelism into bandwidth (Fig 15).  Unlike
//! [`crate::fig15`] — which sweeps transfer sizes at three fixed populations for
//! four schedulers — this experiment sweeps the *population* itself, including
//! the full 1024-chip point, and is designed to run at
//! [`ExperimentScale::full`]: the scheduler hot path is index-driven, so round
//! cost tracks queued work rather than queue depth × pages or the chip count.

use serde::{Deserialize, Serialize};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::SsdConfig;

use crate::report::{fmt_f64, fmt_pct, Table};
use crate::runner::{run_cells, run_one, ExperimentScale};

/// The schedulers the scaling sweep compares.
pub const SCHEDULERS: [SchedulerKind; 2] = [SchedulerKind::Vas, SchedulerKind::Spk3];

/// The chip populations swept, up to the paper's 1024-chip point.
pub const CHIP_COUNTS: [usize; 4] = [16, 64, 256, 1024];

/// Transfer sizes (KB) of the sweep's panels.
pub const TRANSFER_SIZES_KB: [u64; 3] = [4, 32, 128];

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Total flash chips in the SSD.
    pub chips: usize,
    /// Transfer size in KB.
    pub transfer_kb: u64,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Read bandwidth in KB/s.
    pub bandwidth_kb_per_sec: f64,
    /// Measured chip utilization.
    pub utilization: f64,
    /// I/Os per second.
    pub iops: f64,
    /// Scheduling rounds the run took — a deterministic telemetry total, so
    /// baseline checks can gate the scheduler core's decision stream, not just
    /// its bandwidth outcome.
    pub sched_rounds: u64,
}

/// The full scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingResult {
    /// All measured points.
    pub points: Vec<ScalingPoint>,
    /// The chip counts swept.
    pub chip_counts: Vec<usize>,
    /// The transfer sizes swept.
    pub transfer_sizes_kb: Vec<u64>,
}

/// Measures one point of the sweep.
pub fn run_point(
    scale: &ExperimentScale,
    chips: usize,
    transfer_kb: u64,
    scheduler: SchedulerKind,
) -> ScalingPoint {
    let config = SsdConfig::paper_default()
        .with_chip_count(chips)
        .with_blocks_per_plane(scale.blocks_per_plane);
    let trace = scale.sweep_trace(transfer_kb, 1.0, 0x5CA1E);
    let metrics = run_one(&config, scheduler, &trace);
    ScalingPoint {
        chips,
        transfer_kb,
        scheduler,
        bandwidth_kb_per_sec: metrics.bandwidth_kb_per_sec,
        utilization: metrics.chip_utilization,
        iops: metrics.iops,
        sched_rounds: metrics.telemetry.sched_rounds,
    }
}

/// Runs the sweep.  `chip_counts` and `transfer_sizes_kb` default to the full
/// 16→1024 panels when `None`; pass subsets for quicker runs.  Every
/// (transfer × chip-count × scheduler) cell is an independent simulation, so
/// the sweep fans out over [`run_cells`]; point order matches the serial loop.
pub fn run(
    scale: &ExperimentScale,
    chip_counts: Option<&[usize]>,
    transfer_sizes_kb: Option<&[u64]>,
) -> ScalingResult {
    let chip_counts: Vec<usize> = chip_counts.unwrap_or(&CHIP_COUNTS).to_vec();
    let transfer_sizes_kb: Vec<u64> = transfer_sizes_kb.unwrap_or(&TRANSFER_SIZES_KB).to_vec();
    let cells: Vec<(u64, usize, SchedulerKind)> = transfer_sizes_kb
        .iter()
        .flat_map(|&transfer_kb| {
            chip_counts.iter().flat_map(move |&chips| {
                SCHEDULERS
                    .iter()
                    .map(move |&scheduler| (transfer_kb, chips, scheduler))
            })
        })
        .collect();
    let points = run_cells(&cells, |&(transfer_kb, chips, scheduler)| {
        run_point(scale, chips, transfer_kb, scheduler)
    });
    ScalingResult {
        points,
        chip_counts,
        transfer_sizes_kb,
    }
}

impl ScalingResult {
    /// The point for one (chips, transfer, scheduler) triple.
    pub fn point(
        &self,
        chips: usize,
        transfer_kb: u64,
        scheduler: SchedulerKind,
    ) -> Option<&ScalingPoint> {
        self.points
            .iter()
            .find(|p| p.chips == chips && p.transfer_kb == transfer_kb && p.scheduler == scheduler)
    }

    /// SPK3-over-VAS bandwidth ratio at one point.
    pub fn speedup(&self, chips: usize, transfer_kb: u64) -> Option<f64> {
        let vas = self.point(chips, transfer_kb, SchedulerKind::Vas)?;
        let spk3 = self.point(chips, transfer_kb, SchedulerKind::Spk3)?;
        (vas.bandwidth_kb_per_sec > 0.0)
            .then(|| spk3.bandwidth_kb_per_sec / vas.bandwidth_kb_per_sec)
    }

    /// Bandwidth across the chip counts for one scheduler and transfer size,
    /// smallest population first.
    pub fn bandwidth_series(&self, transfer_kb: u64, scheduler: SchedulerKind) -> Vec<f64> {
        self.chip_counts
            .iter()
            .filter_map(|&chips| {
                self.point(chips, transfer_kb, scheduler)
                    .map(|p| p.bandwidth_kb_per_sec)
            })
            .collect()
    }

    /// Renders one panel (one transfer size) of the sweep.
    pub fn panel(&self, transfer_kb: u64) -> Table {
        let mut table = Table::new(
            format!("Scaling: bandwidth and utilization vs chip count ({transfer_kb}KB transfers)"),
            vec![
                "chips".into(),
                "VAS KB/s".into(),
                "VAS util".into(),
                "SPK3 KB/s".into(),
                "SPK3 util".into(),
                "SPK3/VAS".into(),
            ],
        );
        for &chips in &self.chip_counts {
            let mut row = vec![chips.to_string()];
            for &scheduler in &SCHEDULERS {
                match self.point(chips, transfer_kb, scheduler) {
                    Some(p) => {
                        row.push(fmt_f64(p.bandwidth_kb_per_sec));
                        row.push(fmt_pct(p.utilization));
                    }
                    None => {
                        row.push(String::new());
                        row.push(String::new());
                    }
                }
            }
            row.push(
                self.speedup(chips, transfer_kb)
                    .map_or_else(String::new, |s| format!("{s:.2}x")),
            );
            table.add_row(row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprinkler_scales_where_the_conventional_controller_stagnates() {
        let scale = ExperimentScale {
            ios_per_workload: 150,
            blocks_per_plane: 16,
        };
        let result = run(&scale, Some(&[16, 64]), Some(&[32]));
        assert_eq!(result.points.len(), 4);
        // Sprinkler converts the added chips into more bandwidth than VAS does.
        let speedup = result.speedup(64, 32).unwrap();
        assert!(
            speedup > 1.0,
            "SPK3 must beat VAS at 64 chips (got {speedup:.2}x)"
        );
        // Growing the population must not shrink Sprinkler's bandwidth.
        let series = result.bandwidth_series(32, SchedulerKind::Spk3);
        assert_eq!(series.len(), 2);
        assert!(
            series[1] >= series[0] * 0.9,
            "SPK3 bandwidth must scale with chips: {series:?}"
        );
        // Every point carries the deterministic round total for baseline gates.
        assert!(result.points.iter().all(|p| p.sched_rounds > 0));
        let panel = result.panel(32);
        assert_eq!(panel.row_count(), 2);
        assert!(panel.render().contains("SPK3/VAS"));
    }
}
