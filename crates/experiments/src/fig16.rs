//! Fig 16 — the number of flash transactions executed as a function of the data
//! transfer size, for 64-chip and 1024-chip SSDs.  FARO's over-commitment lets the
//! controllers coalesce memory requests, roughly halving the transaction count.

use serde::{Deserialize, Serialize};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::SsdConfig;

use crate::report::Table;
use crate::runner::{run_one, ExperimentScale};

/// The schedulers Fig 16 plots.
pub const FIG16_SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Vas,
    SchedulerKind::Spk1,
    SchedulerKind::Spk2,
    SchedulerKind::Spk3,
];

/// The chip counts of Fig 16's two panels.
pub const CHIP_COUNTS: [usize; 2] = [64, 1024];

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig16Point {
    /// Total flash chips.
    pub chips: usize,
    /// Transfer size in KB.
    pub transfer_kb: u64,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Flash transactions executed.
    pub transactions: u64,
    /// Memory requests served.
    pub memory_requests: u64,
}

/// The full Fig 16 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig16Result {
    /// All measured points.
    pub points: Vec<Fig16Point>,
    /// The transfer sizes swept.
    pub transfer_sizes_kb: Vec<u64>,
    /// The chip counts swept.
    pub chip_counts: Vec<usize>,
}

/// Runs the sweep.
pub fn run(scale: &ExperimentScale, chip_counts: Option<&[usize]>) -> Fig16Result {
    let chip_counts: Vec<usize> = chip_counts.unwrap_or(&CHIP_COUNTS).to_vec();
    let transfer_sizes = scale.sweep_sizes_kb();
    let mut points = Vec::new();
    for &chips in &chip_counts {
        let config = SsdConfig::paper_default()
            .with_chip_count(chips)
            .with_blocks_per_plane(scale.blocks_per_plane);
        for &transfer_kb in &transfer_sizes {
            let trace = scale.sweep_trace(transfer_kb, 1.0, 0xF16);
            for &scheduler in &FIG16_SCHEDULERS {
                let metrics = run_one(&config, scheduler, &trace);
                points.push(Fig16Point {
                    chips,
                    transfer_kb,
                    scheduler,
                    transactions: metrics.transactions,
                    memory_requests: metrics.memory_requests,
                });
            }
        }
    }
    Fig16Result {
        points,
        transfer_sizes_kb: transfer_sizes,
        chip_counts,
    }
}

impl Fig16Result {
    /// Transactions for a specific point.
    pub fn transactions(
        &self,
        chips: usize,
        transfer_kb: u64,
        scheduler: SchedulerKind,
    ) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.chips == chips && p.transfer_kb == transfer_kb && p.scheduler == scheduler)
            .map(|p| p.transactions)
    }

    /// Total transactions of one scheduler over the whole sweep at one chip count.
    pub fn total_transactions(&self, chips: usize, scheduler: SchedulerKind) -> u64 {
        self.points
            .iter()
            .filter(|p| p.chips == chips && p.scheduler == scheduler)
            .map(|p| p.transactions)
            .sum()
    }

    /// The reduction rate of SPK3's transaction count relative to VAS (0.5 = half
    /// the transactions).
    pub fn reduction_vs_vas(&self, chips: usize) -> f64 {
        let vas = self.total_transactions(chips, SchedulerKind::Vas) as f64;
        let spk3 = self.total_transactions(chips, SchedulerKind::Spk3) as f64;
        if vas <= 0.0 {
            0.0
        } else {
            1.0 - spk3 / vas
        }
    }

    /// Renders one panel (one chip count) of the figure.
    pub fn panel(&self, chips: usize) -> Table {
        let mut table = Table::new(
            format!("Fig 16: number of flash transactions vs transfer size ({chips} chips)"),
            std::iter::once("transfer".to_string())
                .chain(FIG16_SCHEDULERS.iter().map(|k| k.label().to_string()))
                .collect(),
        );
        for &kb in &self.transfer_sizes_kb {
            let mut row = vec![format!("{kb}KB")];
            for &scheduler in &FIG16_SCHEDULERS {
                row.push(
                    self.transactions(chips, kb, scheduler)
                        .map_or_else(String::new, |t| t.to_string()),
                );
            }
            table.add_row(row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faro_reduces_transactions_relative_to_vas() {
        let scale = ExperimentScale {
            ios_per_workload: 150,
            blocks_per_plane: 16,
        };
        let result = run(&scale, Some(&[64]));
        let reduction = result.reduction_vs_vas(64);
        assert!(
            reduction > 0.0,
            "SPK3 must execute fewer transactions than VAS (reduction={reduction:.3})"
        );
        // Same memory requests served either way for the same points.
        for &kb in &result.transfer_sizes_kb {
            let vas = result
                .points
                .iter()
                .find(|p| p.transfer_kb == kb && p.scheduler == SchedulerKind::Vas)
                .unwrap();
            let spk3 = result
                .points
                .iter()
                .find(|p| p.transfer_kb == kb && p.scheduler == SchedulerKind::Spk3)
                .unwrap();
            assert_eq!(vas.memory_requests, spk3.memory_requests);
        }
        assert_eq!(result.panel(64).row_count(), result.transfer_sizes_kb.len());
    }
}
