//! Fig 17 — garbage collection and readdressing impact: bandwidth versus transfer
//! size on pristine and fragmented (95 % pre-filled) SSDs for VAS, PAS, and SPK3.

use serde::{Deserialize, Serialize};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::{GcConfig, SsdConfig};

use crate::report::{fmt_f64, Table};
use crate::runner::{run_one_detailed, ExperimentScale};

/// The schedulers Fig 17 plots.
pub const FIG17_SCHEDULERS: [SchedulerKind; 3] =
    [SchedulerKind::Vas, SchedulerKind::Pas, SchedulerKind::Spk3];

/// The chip counts of Fig 17's two panels.
pub const CHIP_COUNTS: [usize; 2] = [64, 256];

/// Fraction of physical capacity pre-filled for the fragmented (GC) runs.
pub const FRAGMENTED_FILL: f64 = 0.95;

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig17Point {
    /// Total flash chips.
    pub chips: usize,
    /// Transfer size in KB.
    pub transfer_kb: u64,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Whether the SSD was pre-fragmented so GC runs during the measurement.
    pub fragmented: bool,
    /// Measured bandwidth in KB/s.
    pub bandwidth_kb_per_sec: f64,
    /// GC invocations observed.
    pub gc_invocations: u64,
}

/// The full Fig 17 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig17Result {
    /// All measured points.
    pub points: Vec<Fig17Point>,
    /// The transfer sizes swept.
    pub transfer_sizes_kb: Vec<u64>,
    /// The chip counts swept.
    pub chip_counts: Vec<usize>,
}

/// Runs the sweep.  The workload is write-heavy (the paper fragments with 1 MB
/// random writes and then measures mixed traffic).
pub fn run(scale: &ExperimentScale, chip_counts: Option<&[usize]>) -> Fig17Result {
    let chip_counts: Vec<usize> = chip_counts.unwrap_or(&CHIP_COUNTS).to_vec();
    // GC runs amplify every host write by an order of magnitude once the SSD is
    // fragmented, so this figure sweeps up to 512 KB transfers (the qualitative
    // crossover is already visible there) and keeps per-plane capacity small.
    let transfer_sizes: Vec<u64> = scale
        .sweep_sizes_kb()
        .into_iter()
        .filter(|&kb| kb <= 512)
        .collect();
    let blocks_per_plane = scale.blocks_per_plane.min(16);
    let mut points = Vec::new();
    for &chips in &chip_counts {
        let base = SsdConfig::paper_default()
            .with_chip_count(chips)
            .with_blocks_per_plane(blocks_per_plane)
            .with_gc(GcConfig::enabled());
        for &transfer_kb in &transfer_sizes {
            let trace = scale.sweep_trace(transfer_kb, 0.3, 0xF17);
            for &scheduler in &FIG17_SCHEDULERS {
                for fragmented in [false, true] {
                    let precondition = fragmented.then_some(FRAGMENTED_FILL);
                    let metrics = run_one_detailed(&base, scheduler, &trace, false, precondition);
                    points.push(Fig17Point {
                        chips,
                        transfer_kb,
                        scheduler,
                        fragmented,
                        bandwidth_kb_per_sec: metrics.bandwidth_kb_per_sec,
                        gc_invocations: metrics.gc.invocations,
                    });
                }
            }
        }
    }
    Fig17Result {
        points,
        transfer_sizes_kb: transfer_sizes,
        chip_counts,
    }
}

impl Fig17Result {
    /// Bandwidth for a specific point.
    pub fn bandwidth(
        &self,
        chips: usize,
        transfer_kb: u64,
        scheduler: SchedulerKind,
        fragmented: bool,
    ) -> Option<f64> {
        self.points
            .iter()
            .find(|p| {
                p.chips == chips
                    && p.transfer_kb == transfer_kb
                    && p.scheduler == scheduler
                    && p.fragmented == fragmented
            })
            .map(|p| p.bandwidth_kb_per_sec)
    }

    /// Mean bandwidth of one (scheduler, fragmented) series at one chip count.
    pub fn mean_bandwidth(&self, chips: usize, scheduler: SchedulerKind, fragmented: bool) -> f64 {
        let values: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.chips == chips && p.scheduler == scheduler && p.fragmented == fragmented)
            .map(|p| p.bandwidth_kb_per_sec)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Total GC invocations observed in the fragmented runs at one chip count.
    pub fn gc_invocations(&self, chips: usize) -> u64 {
        self.points
            .iter()
            .filter(|p| p.chips == chips && p.fragmented)
            .map(|p| p.gc_invocations)
            .sum()
    }

    /// Renders one panel (one chip count) of the figure.
    pub fn panel(&self, chips: usize) -> Table {
        let mut header = vec!["transfer".to_string()];
        for &scheduler in &FIG17_SCHEDULERS {
            header.push(scheduler.label().to_string());
            header.push(format!("{}-GC", scheduler.label()));
        }
        let mut table = Table::new(
            format!("Fig 17: GC and readdressing impact, bandwidth KB/s ({chips} chips)"),
            header,
        );
        for &kb in &self.transfer_sizes_kb {
            let mut row = vec![format!("{kb}KB")];
            for &scheduler in &FIG17_SCHEDULERS {
                row.push(
                    self.bandwidth(chips, kb, scheduler, false)
                        .map_or_else(String::new, fmt_f64),
                );
                row.push(
                    self.bandwidth(chips, kb, scheduler, true)
                        .map_or_else(String::new, fmt_f64),
                );
            }
            table.add_row(row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_degrades_bandwidth_but_spk3_stays_ahead() {
        let scale = ExperimentScale {
            ios_per_workload: 120,
            blocks_per_plane: 8,
        };
        let result = run(&scale, Some(&[64]));
        assert!(
            result.gc_invocations(64) > 0,
            "fragmented runs must trigger GC"
        );
        let spk3 = result.mean_bandwidth(64, SchedulerKind::Spk3, false);
        let spk3_gc = result.mean_bandwidth(64, SchedulerKind::Spk3, true);
        let vas_gc = result.mean_bandwidth(64, SchedulerKind::Vas, true);
        assert!(
            spk3_gc <= spk3,
            "GC must not speed SPK3 up ({spk3_gc:.0} vs {spk3:.0})"
        );
        assert!(
            spk3_gc > vas_gc,
            "SPK3 under GC ({spk3_gc:.0}) must still beat VAS under GC ({vas_gc:.0})"
        );
        assert_eq!(result.panel(64).row_count(), result.transfer_sizes_kb.len());
    }
}
