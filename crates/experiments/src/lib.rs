//! Experiment harness: regenerates every table and figure of the Sprinkler paper.
//!
//! Each module corresponds to one published result:
//!
//! | module      | paper content |
//! |-------------|----------------|
//! | [`table1`]  | Table 1 — trace characteristics |
//! | [`fig01`]   | Fig 1 — performance stagnation / utilization vs. number of dies |
//! | [`fig06`]   | Fig 6 — resource utilization and improvement potential |
//! | [`fig10`]   | Fig 10 — bandwidth, IOPS, latency, queue stall for VAS/PAS/SPK1-3 |
//! | [`fig11`]   | Fig 11 — inter- and intra-chip idleness |
//! | [`fig12`]   | Fig 12 — latency time series (msnfs1) |
//! | [`fig13`]   | Fig 13 — execution-time breakdown |
//! | [`fig14`]   | Fig 14 — flash-level parallelism breakdown |
//! | [`fig15`]   | Fig 15 — chip utilization vs. transfer size and chip count |
//! | [`fig15_scaling`] | Fig 1 + Fig 15 composite — the 16→1024-chip scaling sweep |
//! | [`fig16`]   | Fig 16 — flash transaction counts vs. transfer size |
//! | [`fig17`]   | Fig 17 — garbage collection / readdressing impact |
//!
//! The [`runner`] module holds the shared machinery (trace → host-request
//! conversion, scheduler × workload matrices, parallel execution), [`replay`]
//! is the streaming [`sprinkler_workloads::TraceSource`] → SSD boundary every
//! experiment feeds through (bounded admission + logical-capacity validation),
//! [`scenario`] is the named-scenario registry (enterprise replay, GC
//! steady-state, queue-depth sweep, mixed bursts, array scale-out and skew on
//! the `sprinkler_array` frontend), and [`report`] renders plain-text tables
//! whose rows mirror the paper's series.
//!
//! Absolute numbers differ from the paper (our substrate is a from-scratch
//! simulator, not the authors' testbed); the comparisons the paper draws — who
//! wins, by roughly what factor, and where the crossovers fall — are what these
//! experiments reproduce.  `EXPERIMENTS.md` at the repository root records the
//! paper-vs-measured comparison for every experiment.
//!
//! # Example
//!
//! Replay one trace through one scheduler — the primitive every figure is
//! built from:
//!
//! ```
//! use sprinkler_core::SchedulerKind;
//! use sprinkler_experiments::runner::run_one;
//! use sprinkler_ssd::SsdConfig;
//! use sprinkler_workloads::SyntheticSpec;
//!
//! let config = SsdConfig::paper_default().with_blocks_per_plane(16);
//! let trace = SyntheticSpec::new("doc").generate(50, 7);
//! let metrics = run_one(&config, SchedulerKind::Spk3, &trace);
//! assert_eq!(metrics.io_count, 50);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fig01;
pub mod fig06;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig15_scaling;
pub mod fig16;
pub mod fig17;
pub mod micro;
pub mod replay;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod table1;

pub use replay::{run_source, run_source_detailed, CapacityPolicy, ReplayError};
pub use report::Table;
pub use runner::{
    run_cells, run_matrix, run_one, to_host_requests, ExperimentScale, MatrixCell, ScaleMode,
};
pub use scenario::{ScenarioCell, ScenarioOutcome, SCENARIO_NAMES};
