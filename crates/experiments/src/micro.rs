//! Shared micro-benchmark fixtures.
//!
//! The standing scheduling scene below is timed by two consumers that must stay
//! in lockstep: the `scheduler_rounds` group of the `scheduler_micro` bench
//! target (`crates/bench/benches/scheduler_micro.rs`) and the
//! `regen_baselines` binary that rewrites `BENCH_scaling.json`.  Keeping the
//! fixture here guarantees the committed baseline numbers describe exactly the
//! scene `cargo bench` measures.

use sprinkler_core::SchedulerKind;
use sprinkler_flash::{FlashGeometry, Lpn};
use sprinkler_sim::SimTime;
use sprinkler_ssd::queue::DeviceQueue;
use sprinkler_ssd::request::{Direction, HostRequest, Placement, TagId};
use sprinkler_ssd::{CommitmentLedger, RunMetrics, SsdConfig};
use sprinkler_workloads::SyntheticSpec;

use crate::runner::{run_one, ExperimentScale};

/// The scale used by bench targets and the baseline regenerator — an alias
/// for [`ExperimentScale::bench`], the shared scale-resolution source of
/// truth.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::bench()
}

/// A single small simulation run used as the timed measurement body by both the
/// criterion bench targets (via `sprinkler_bench`) and `regen_baselines` — one
/// recipe, so the committed `fig10/spk3_run` baseline always describes the
/// scene `cargo bench` times.
pub fn representative_run(kind: SchedulerKind) -> RunMetrics {
    let scale = bench_scale();
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);
    let trace = SyntheticSpec::new("bench")
        .with_read_fraction(0.7)
        .with_mean_sizes_kb(16.0, 16.0)
        .generate(120, 0xBE);
    run_one(&config, kind, &trace)
}

/// A standing steady-state scheduling scene: a full 32-deep queue of 256-page
/// tags striped over `chips` chips, with all but the last four pages of every
/// tag already committed — the shape a mid-simulation round sees, where a
/// full-queue scan walks thousands of committed bitmap slots to find a handful
/// of schedulable pages.  Read/write LPN ranges overlap so the §4.4
/// write-after-read checks stay hot.
pub fn standing_scene(chips: usize) -> (FlashGeometry, DeviceQueue, CommitmentLedger) {
    const PAGES: u32 = 256;
    let geometry = FlashGeometry::paper_default().with_chip_count(chips);
    let mut queue = DeviceQueue::new(32);
    for t in 0..32u64 {
        let dir = if t.is_multiple_of(3) {
            Direction::Write
        } else {
            Direction::Read
        };
        let host = HostRequest::new(t, SimTime::ZERO, dir, Lpn::new(t * 8), PAGES);
        let placements = (0..PAGES as usize)
            .map(|i| {
                let chip = (t as usize * 37 + i * 13) % chips;
                let loc = geometry.chip_location(chip);
                Placement {
                    chip,
                    channel: loc.channel,
                    way: loc.way,
                    die: (i % 2) as u32,
                    plane: (i % 4) as u32,
                }
            })
            .collect();
        assert!(queue.admit(TagId(t), host, SimTime::ZERO, placements));
    }
    for t in 0..32u64 {
        for page in 0..PAGES - 4 {
            assert!(queue.commit_page(TagId(t), page, SimTime::ZERO));
        }
    }
    let ledger = CommitmentLedger::new(chips, 32);
    (geometry, queue, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standing_scene_exposes_four_uncommitted_pages_per_tag() {
        let (geometry, queue, ledger) = standing_scene(256);
        assert_eq!(geometry.total_chips(), 256);
        assert_eq!(queue.len(), 32);
        assert_eq!(queue.total_uncommitted_pages(), 32 * 4);
        assert_eq!(ledger.chip_count(), 256);
        assert_eq!(ledger.max_committed_per_chip(), 32);
    }
}
