//! The streaming replay boundary: [`TraceSource`] → [`HostRequest`] → SSD.
//!
//! Every experiment feeds the simulator through this module.  A trace source
//! (in-memory, lazily generated, or parsed from text) is adapted record by
//! record into page-granular host requests and pushed through
//! [`Ssd::run_stream`]'s bounded-admission loop, so replay memory is
//! O(outstanding I/Os) rather than O(trace length).
//!
//! The adapter is also the **capacity boundary**: each record's logical page
//! range is validated against the device's logical capacity.  The seed
//! silently admitted out-of-capacity pages (the FTL maps arbitrary LPNs, so a
//! workload bigger than the device aliased into a sparse address space no real
//! SSD could serve); now the replay either rejects the record with a
//! [`ReplayError`] or deterministically wraps its page range into capacity,
//! per [`CapacityPolicy`].

use std::cell::Cell;
use std::fmt;

use sprinkler_core::SchedulerKind;
use sprinkler_flash::Lpn;
use sprinkler_ssd::request::{Direction, HostRequest};
use sprinkler_ssd::{RunMetrics, Ssd, SsdConfig};
use sprinkler_workloads::{TraceRecord, TraceSource};

/// How the replay boundary treats a record whose logical page range exceeds
/// the device's logical capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapacityPolicy {
    /// Stop the replay with a [`ReplayError`] naming the record.
    Reject,
    /// Deterministically wrap the record's page range into capacity: the first
    /// page is reduced modulo the capacity, then shifted down (and, for
    /// device-sized requests, truncated) so the whole range fits.
    #[default]
    Wrap,
}

/// A record that addressed pages past the device's logical capacity, under
/// [`CapacityPolicy::Reject`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// The offending record's id.
    pub record_id: u64,
    /// First logical page the record addressed.
    pub first_lpn: u64,
    /// Number of pages the record spanned.
    pub pages: u32,
    /// The device's logical capacity in pages.
    pub capacity_pages: u64,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace record {} addresses logical pages [{}, {}) past the device's logical \
             capacity of {} pages",
            self.record_id,
            self.first_lpn,
            self.first_lpn + self.pages as u64,
            self.capacity_pages
        )
    }
}

impl std::error::Error for ReplayError {}

/// Converts one trace record into a host request without any capacity bound
/// (the conversion [`crate::runner::to_host_requests`] applies).
pub fn record_to_request(record: &TraceRecord, page_size: usize) -> HostRequest {
    let (lpn, pages) = record.pages(page_size);
    HostRequest::new(
        record.id,
        record.arrival,
        if record.op.is_read() {
            Direction::Read
        } else {
            Direction::Write
        },
        Lpn::new(lpn),
        pages,
    )
}

/// Applies a [`CapacityPolicy`] to a converted request.  Returns `Err` only
/// under [`CapacityPolicy::Reject`].
fn bound_request(
    mut request: HostRequest,
    capacity_pages: u64,
    policy: CapacityPolicy,
) -> Result<HostRequest, ReplayError> {
    let first = request.start_lpn.value();
    let span = request.pages as u64;
    if first + span <= capacity_pages {
        return Ok(request);
    }
    match policy {
        CapacityPolicy::Reject => Err(ReplayError {
            record_id: request.id,
            first_lpn: first,
            pages: request.pages,
            capacity_pages,
        }),
        CapacityPolicy::Wrap => {
            if span >= capacity_pages {
                // Degenerate: the request alone covers the device.
                request.start_lpn = Lpn::new(0);
                request.pages = capacity_pages.min(u32::MAX as u64) as u32;
            } else {
                let wrapped = first % capacity_pages;
                request.start_lpn = Lpn::new(wrapped.min(capacity_pages - span));
            }
            Ok(request)
        }
    }
}

/// The streaming adapter: pulls records from a [`TraceSource`], converts and
/// capacity-bounds them, and yields [`HostRequest`]s.  A rejection stops the
/// stream and parks the error in the shared cell for the caller to collect
/// after the run.
struct RequestStream<'a> {
    source: &'a mut dyn TraceSource,
    page_size: usize,
    capacity_pages: u64,
    policy: CapacityPolicy,
    error: &'a Cell<Option<ReplayError>>,
}

impl Iterator for RequestStream<'_> {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        let record = self.source.next_record()?;
        let request = record_to_request(&record, self.page_size);
        match bound_request(request, self.capacity_pages, self.policy) {
            Ok(request) => Some(request),
            Err(error) => {
                self.error.set(Some(error));
                None
            }
        }
    }
}

/// Replays a [`TraceSource`] through one scheduler on one SSD configuration,
/// streaming end to end: records are pulled lazily, validated against the
/// device's logical capacity, and admitted under the simulator's bounded
/// backpressure loop.
///
/// # Errors
///
/// Under [`CapacityPolicy::Reject`], returns the first out-of-capacity record
/// (the partial run's metrics are discarded).  [`CapacityPolicy::Wrap`] never
/// fails.
pub fn run_source(
    config: &SsdConfig,
    kind: SchedulerKind,
    source: &mut dyn TraceSource,
    policy: CapacityPolicy,
) -> Result<RunMetrics, ReplayError> {
    run_source_detailed(config, kind, source, policy, false, None)
}

/// Like [`run_source`] but optionally records the per-I/O latency series
/// (Fig 12) and pre-conditions the SSD into a fragmented state (Fig 17 / the
/// GC steady-state scenario).
pub fn run_source_detailed(
    config: &SsdConfig,
    kind: SchedulerKind,
    source: &mut dyn TraceSource,
    policy: CapacityPolicy,
    record_series: bool,
    precondition: Option<f64>,
) -> Result<RunMetrics, ReplayError> {
    let mut ssd = Ssd::with_series(config.clone(), kind.build(), record_series)
        .expect("experiment config must be valid");
    if let Some(utilization) = precondition {
        ssd.precondition(utilization, 0xF17);
    }
    let error = Cell::new(None);
    let metrics = ssd.run_stream(RequestStream {
        source,
        page_size: config.page_size(),
        capacity_pages: config.geometry.total_pages() as u64,
        policy,
        error: &error,
    });
    match error.take() {
        Some(error) => Err(error),
        None => Ok(metrics),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_sim::SimTime;
    use sprinkler_workloads::{SyntheticSpec, Trace, TraceOp};

    fn record(id: u64, offset: u64, bytes: u64) -> TraceRecord {
        TraceRecord {
            id,
            arrival: SimTime::from_micros(id * 10),
            op: TraceOp::Write,
            offset,
            bytes,
        }
    }

    #[test]
    fn in_capacity_traces_replay_identically_under_both_policies() {
        let config = SsdConfig::small_test();
        let trace = SyntheticSpec::new("ok")
            .with_footprint_mb(1)
            .generate(80, 3);
        // small_test capacity comfortably exceeds a 1 MB footprint.
        assert!(trace.footprint_bytes() <= config.geometry.capacity_bytes());
        let reject = run_source(
            &config,
            SchedulerKind::Spk3,
            &mut trace.source(),
            CapacityPolicy::Reject,
        )
        .expect("in-capacity trace must replay");
        let wrap = run_source(
            &config,
            SchedulerKind::Spk3,
            &mut trace.source(),
            CapacityPolicy::Wrap,
        )
        .unwrap();
        assert_eq!(reject, wrap);
        assert_eq!(reject.io_count, 80);
    }

    /// Locks the former spill behaviour as rejected: the seed converted
    /// out-of-capacity records into LPNs past the device's logical capacity
    /// and replayed them silently.
    #[test]
    fn out_of_capacity_records_are_rejected_not_aliased() {
        let config = SsdConfig::small_test();
        let capacity_bytes = config.geometry.capacity_bytes();
        let trace = Trace::new(
            "spill",
            vec![record(0, 0, 4096), record(1, capacity_bytes, 4096)],
        );
        let error = run_source(
            &config,
            SchedulerKind::Vas,
            &mut trace.source(),
            CapacityPolicy::Reject,
        )
        .expect_err("the spilling record must be rejected");
        assert_eq!(error.record_id, 1);
        assert_eq!(error.capacity_pages, config.geometry.total_pages() as u64);
        assert!(error.to_string().contains("logical capacity"));
    }

    /// Locks the former spill behaviour as wrapped: under the wrap policy no
    /// replayed request maps a page at or past the logical capacity.
    #[test]
    fn wrap_policy_folds_every_record_into_capacity() {
        let config = SsdConfig::small_test();
        let capacity_pages = config.geometry.total_pages() as u64;
        let capacity_bytes = config.geometry.capacity_bytes();
        let trace = Trace::new(
            "spill",
            vec![
                record(0, 0, 4096),
                record(1, capacity_bytes - 2048, 8192),
                record(2, 3 * capacity_bytes + 4096, 2048),
                record(3, 0, 2 * capacity_bytes),
            ],
        );
        let error = Cell::new(None);
        let requests: Vec<HostRequest> = RequestStream {
            source: &mut trace.source(),
            page_size: config.page_size(),
            capacity_pages,
            policy: CapacityPolicy::Wrap,
            error: &error,
        }
        .collect();
        assert!(error.take().is_none());
        assert_eq!(requests.len(), 4);
        for request in &requests {
            assert!(
                request.start_lpn.value() + request.pages as u64 <= capacity_pages,
                "request {} still spills: lpn {} + {} pages",
                request.id,
                request.start_lpn.value(),
                request.pages
            );
        }
        // Wrapping is deterministic and offset-preserving where possible.
        assert_eq!(requests[2].start_lpn.value(), 2);
        // And the wrapped trace actually replays.
        let metrics = run_source(
            &config,
            SchedulerKind::Spk3,
            &mut trace.source(),
            CapacityPolicy::Wrap,
        )
        .unwrap();
        assert_eq!(metrics.io_count, 4);
    }

    #[test]
    fn replay_is_streaming_not_materialized() {
        let config = SsdConfig::small_test();
        let spec = SyntheticSpec::new("stream").with_footprint_mb(1);
        let metrics = run_source(
            &config,
            SchedulerKind::Spk3,
            &mut spec.stream(2_000, 9),
            CapacityPolicy::Reject,
        )
        .unwrap();
        assert_eq!(metrics.io_count, 2_000);
        // The host-side backlog stayed bounded by the device queue depth.
        assert!(
            metrics.peak_host_backlog <= config.queue_depth as u64,
            "backlog {} exceeded queue depth {}",
            metrics.peak_host_backlog,
            config.queue_depth
        );
    }
}
