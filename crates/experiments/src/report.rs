//! Plain-text table rendering for experiment results.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use sprinkler_experiments::Table;
///
/// let mut t = Table::new("Demo", vec!["workload".into(), "VAS".into(), "SPK3".into()]);
/// t.add_row(vec!["cfs0".into(), "100.0".into(), "220.0".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("Demo"));
/// assert!(rendered.contains("cfs0"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: Vec<String>) -> Self {
        Table {
            title: title.into(),
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.  Rows shorter than the header are padded with blanks.
    pub fn add_row(&mut self, mut row: Vec<String>) {
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let format_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(columns) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&format_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with a sensible number of digits for table cells.
pub fn fmt_f64(value: f64) -> String {
    if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

/// Formats a fraction as a percentage cell.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_counts_rows() {
        let mut t = Table::new("T", vec!["a".into(), "bbbb".into()]);
        t.add_row(vec!["xxxxx".into(), "1".into()]);
        t.add_row(vec!["y".into()]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.header().len(), 2);
        let s = t.render();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, and two data rows after the title.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("a"));
        assert!(lines[3].starts_with("xxxxx"));
        assert_eq!(format!("{t}"), s);
    }

    #[test]
    fn float_formatting_scales_precision() {
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.42), "42.4");
        assert_eq!(fmt_f64(1.2345), "1.234");
        assert_eq!(fmt_pct(0.1234), "12.3%");
    }
}
