//! Shared experiment machinery.

use serde::{Deserialize, Serialize};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::request::HostRequest;
use sprinkler_ssd::{RunMetrics, SsdConfig};
use sprinkler_workloads::Trace;

use crate::replay::{self, CapacityPolicy};

/// How large each experiment should be.  The full scale approximates the paper's
/// runs; the quick scale keeps `cargo bench`/CI runs in the seconds range while
/// preserving every qualitative trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Host I/O requests per workload run.
    pub ios_per_workload: u64,
    /// Blocks per plane used in experiment geometries (keeps GC working sets and
    /// mapping tables tractable).
    pub blocks_per_plane: usize,
}

/// The named scales experiments run at.  Every scenario, binary, and bench
/// resolves its knobs through [`ExperimentScale::resolve`] (or
/// [`ExperimentScale::from_args`] for CLI flags), so `--quick` semantics are
/// defined in exactly one place and cannot diverge per consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleMode {
    /// CI/smoke scale: seconds-range runs preserving every qualitative trend.
    Quick,
    /// Benchmark scale: milliseconds-range timed bodies (`cargo bench` and the
    /// committed baselines).
    Bench,
    /// The scale used when regenerating the figures for the record.
    Full,
}

impl ExperimentScale {
    /// The scale used when regenerating the figures for the record.
    pub fn full() -> Self {
        ExperimentScale {
            ios_per_workload: 2000,
            blocks_per_plane: 64,
        }
    }

    /// A fast scale for smoke tests and CI runs.
    pub fn quick() -> Self {
        ExperimentScale {
            ios_per_workload: 300,
            blocks_per_plane: 32,
        }
    }

    /// The scale used by bench targets and the baseline regenerator: small
    /// enough that a timed run finishes in milliseconds, large enough that
    /// every qualitative trend of the paper still shows.
    pub fn bench() -> Self {
        ExperimentScale {
            ios_per_workload: 200,
            blocks_per_plane: 32,
        }
    }

    /// Resolves a named mode to its scale — the single source of truth.
    pub fn resolve(mode: ScaleMode) -> Self {
        match mode {
            ScaleMode::Quick => Self::quick(),
            ScaleMode::Bench => Self::bench(),
            ScaleMode::Full => Self::full(),
        }
    }

    /// Resolves CLI arguments (`--quick`, `--bench`, `--full`; last one wins,
    /// default full) to a scale.  Shared by every experiment binary.
    pub fn from_args<'a>(args: impl IntoIterator<Item = &'a str>) -> Self {
        let mut mode = ScaleMode::Full;
        for arg in args {
            match arg {
                "--quick" => mode = ScaleMode::Quick,
                "--bench" => mode = ScaleMode::Bench,
                "--full" => mode = ScaleMode::Full,
                _ => {}
            }
        }
        Self::resolve(mode)
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::full()
    }
}

impl ExperimentScale {
    /// The transfer sizes (KB) swept by the microbenchmark figures at this scale.
    pub fn sweep_sizes_kb(&self) -> Vec<u64> {
        if self.ios_per_workload >= 1000 {
            sprinkler_workloads::sweep::TRANSFER_SIZES_KB.to_vec()
        } else {
            vec![4, 16, 64, 256, 1024, 4096]
        }
    }

    /// Page budget for one sweep run; bounds the memory-request count so very
    /// large transfer sizes do not dominate the run time.
    pub fn sweep_page_budget(&self) -> u64 {
        self.ios_per_workload * 24
    }

    /// Builds the fixed-transfer-size trace for one sweep point: the request count
    /// shrinks as the transfer size grows so each point issues roughly the same
    /// number of page-level memory requests.
    pub fn sweep_trace(&self, transfer_kb: u64, read_fraction: f64, seed: u64) -> Trace {
        let pages_per_io = (transfer_kb * 1024).div_ceil(2048).max(1);
        // The lower bound keeps large-transfer points statistically meaningful
        // but must never exceed the scale's own I/O budget: `clamp` panics when
        // its bounds invert, which the seed hit for `ios_per_workload < 12`
        // (and a zero-I/O scale still yields one record rather than panicking).
        let floor = 12.min(self.ios_per_workload).max(1);
        let ceiling = self.ios_per_workload.max(floor);
        let ios = (self.sweep_page_budget() / pages_per_io).clamp(floor, ceiling);
        sprinkler_workloads::SweepSpec::new(transfer_kb)
            .with_read_fraction(read_fraction)
            .generate(ios, seed)
    }
}

/// Converts a block-level trace into page-granular host requests for the SSD.
///
/// Pure conversion, no capacity bound — the streaming replay boundary
/// ([`crate::replay::run_source`]) is where records are validated against the
/// device's logical capacity; this eager helper exists for tests and
/// hand-assembled runs.
pub fn to_host_requests(trace: &Trace, page_size: usize) -> Vec<HostRequest> {
    trace
        .iter()
        .map(|record| replay::record_to_request(record, page_size))
        .collect()
}

/// Runs one scheduler over one trace on the given SSD configuration, through
/// the streaming replay boundary: records are pulled from the trace lazily,
/// validated against the device's logical capacity (out-of-capacity ranges
/// wrap deterministically), and admitted under bounded backpressure.
pub fn run_one(config: &SsdConfig, kind: SchedulerKind, trace: &Trace) -> RunMetrics {
    replay::run_source(config, kind, &mut trace.source(), CapacityPolicy::Wrap)
        .expect("the wrap policy never rejects a record")
}

/// Like [`run_one`] but records the per-I/O latency series (Fig 12) and optionally
/// pre-conditions the SSD into a fragmented state (Fig 17).
pub fn run_one_detailed(
    config: &SsdConfig,
    kind: SchedulerKind,
    trace: &Trace,
    record_series: bool,
    precondition: Option<f64>,
) -> RunMetrics {
    replay::run_source_detailed(
        config,
        kind,
        &mut trace.source(),
        CapacityPolicy::Wrap,
        record_series,
        precondition,
    )
    .expect("the wrap policy never rejects a record")
}

/// Runs one closure per cell on a bounded pool of scoped worker threads and
/// returns the results in input order.
///
/// Every experiment cell — a (scheduler × workload × chip-count) triple — is an
/// independent simulation, so regenerating a whole figure is embarrassingly
/// parallel.  Workers pull cells from a shared cursor, so uneven cell costs
/// (the 1024-chip points dominate a scaling panel) still balance; the pool is
/// capped at `available_parallelism` so a full-scale regeneration never
/// oversubscribes the host.  Results are reassembled in input order, keeping
/// every figure's output byte-identical to a serial run.
pub fn run_cells<T, R, F>(cells: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cells.len());
    if workers <= 1 {
        return cells.iter().map(run).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(cells.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(cell) = cells.get(index) else {
                            break;
                        };
                        local.push((index, run(cell)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            indexed.extend(handle.join().expect("experiment worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(index, _)| index);
    indexed.into_iter().map(|(_, result)| result).collect()
}

/// One cell of a scheduler × workload matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Workload name.
    pub workload: String,
    /// Scheduler evaluated.
    pub scheduler: SchedulerKind,
    /// The collected metrics.
    pub metrics: RunMetrics,
}

/// Runs every scheduler over every trace, in parallel across the independent
/// cells via [`run_cells`].  Cells come back in deterministic order: by
/// workload, then by scheduler order in the request.
pub fn run_matrix(
    config: &SsdConfig,
    schedulers: &[SchedulerKind],
    traces: &[Trace],
) -> Vec<MatrixCell> {
    let cells: Vec<(&Trace, SchedulerKind)> = traces
        .iter()
        .flat_map(|trace| schedulers.iter().map(move |&kind| (trace, kind)))
        .collect();
    run_cells(&cells, |&(trace, kind)| MatrixCell {
        workload: trace.name().to_string(),
        scheduler: kind,
        metrics: run_one(config, kind, trace),
    })
}

/// Finds the cell for a workload/scheduler pair.
pub fn find_cell<'a>(
    cells: &'a [MatrixCell],
    workload: &str,
    scheduler: SchedulerKind,
) -> Option<&'a MatrixCell> {
    cells
        .iter()
        .find(|c| c.workload == workload && c.scheduler == scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_workloads::SyntheticSpec;

    #[test]
    fn host_request_conversion_preserves_counts_and_direction() {
        let trace = SyntheticSpec::new("conv")
            .with_read_fraction(1.0)
            .generate(50, 3);
        let requests = to_host_requests(&trace, 2048);
        assert_eq!(requests.len(), 50);
        assert!(requests.iter().all(|r| r.direction.is_read()));
        assert!(requests.iter().all(|r| r.pages >= 1));
    }

    #[test]
    fn run_one_completes_every_io() {
        let config = SsdConfig::paper_default().with_blocks_per_plane(32);
        let trace = SyntheticSpec::new("small").generate(60, 5);
        let metrics = run_one(&config, SchedulerKind::Spk3, &trace);
        assert_eq!(metrics.io_count, 60);
    }

    #[test]
    fn run_cells_matches_a_serial_map_in_order() {
        let cells: Vec<usize> = (0..97).collect();
        let parallel = run_cells(&cells, |&i| i * i + 1);
        let serial: Vec<usize> = cells.iter().map(|&i| i * i + 1).collect();
        assert_eq!(parallel, serial);
        // Degenerate shapes.
        assert!(run_cells(&[] as &[usize], |&i: &usize| i).is_empty());
        assert_eq!(run_cells(&[7usize], |&i| i + 1), vec![8]);
    }

    #[test]
    fn matrix_covers_every_pair_in_order() {
        let config = SsdConfig::paper_default().with_blocks_per_plane(32);
        let traces = vec![
            SyntheticSpec::new("w0").generate(40, 1),
            SyntheticSpec::new("w1").generate(40, 2),
        ];
        let schedulers = [SchedulerKind::Vas, SchedulerKind::Spk3];
        let cells = run_matrix(&config, &schedulers, &traces);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].workload, "w0");
        assert_eq!(cells[0].scheduler, SchedulerKind::Vas);
        assert_eq!(cells[3].workload, "w1");
        assert_eq!(cells[3].scheduler, SchedulerKind::Spk3);
        assert!(find_cell(&cells, "w1", SchedulerKind::Vas).is_some());
        assert!(find_cell(&cells, "w2", SchedulerKind::Vas).is_none());
    }

    #[test]
    fn detailed_run_supports_series_and_precondition() {
        let config = SsdConfig::paper_default()
            .with_blocks_per_plane(8)
            .with_gc(sprinkler_ssd::GcConfig::enabled());
        let trace = SyntheticSpec::new("d")
            .with_read_fraction(0.0)
            .generate(40, 9);
        let metrics = run_one_detailed(&config, SchedulerKind::Spk3, &trace, true, Some(0.5));
        assert_eq!(metrics.io_count, 40);
        assert_eq!(metrics.latency_series.len(), 40);
    }

    #[test]
    fn scales_expose_sane_values() {
        assert!(
            ExperimentScale::full().ios_per_workload > ExperimentScale::quick().ios_per_workload
        );
        assert!(
            ExperimentScale::quick().ios_per_workload >= ExperimentScale::bench().ios_per_workload
        );
        assert_eq!(ExperimentScale::default(), ExperimentScale::full());
    }

    #[test]
    fn scale_resolution_is_shared_and_cli_flags_resolve() {
        assert_eq!(
            ExperimentScale::resolve(ScaleMode::Quick),
            ExperimentScale::quick()
        );
        assert_eq!(
            ExperimentScale::resolve(ScaleMode::Bench),
            ExperimentScale::bench()
        );
        assert_eq!(
            ExperimentScale::resolve(ScaleMode::Full),
            ExperimentScale::full()
        );
        assert_eq!(ExperimentScale::from_args([]), ExperimentScale::full());
        assert_eq!(
            ExperimentScale::from_args(["--quick"]),
            ExperimentScale::quick()
        );
        assert_eq!(
            ExperimentScale::from_args(["ignored", "--bench"]),
            ExperimentScale::bench()
        );
        // Last flag wins.
        assert_eq!(
            ExperimentScale::from_args(["--quick", "--full"]),
            ExperimentScale::full()
        );
    }

    /// Regression: `sweep_trace` panicked ("assertion failed: min <= max") for
    /// any scale below 12 I/Os per workload, because the clamp's fixed lower
    /// bound exceeded the upper bound.
    #[test]
    fn sweep_trace_survives_tiny_scales() {
        for ios in [0, 1, 2, 5, 11, 12, 13] {
            let scale = ExperimentScale {
                ios_per_workload: ios,
                blocks_per_plane: 8,
            };
            for transfer_kb in [4, 4096] {
                let trace = scale.sweep_trace(transfer_kb, 1.0, 7);
                assert!(!trace.is_empty());
                assert!(trace.len() as u64 <= ios.max(1));
            }
        }
        // At normal scales the floor still applies to huge transfers.
        let scale = ExperimentScale::quick();
        assert!(scale.sweep_trace(4096, 1.0, 7).len() >= 12);
    }
}
