//! The named-scenario registry.
//!
//! The figure modules reproduce the paper's published panels; the registry
//! covers the *operational* situations a production many-chip SSD must handle,
//! each as a named, deterministic, scale-aware experiment that fans out over
//! [`run_cells`]:
//!
//! | scenario            | what it exercises |
//! |---------------------|-------------------|
//! | `enterprise-replay` | parsed text traces (the embedded MSR + blkparse corpora) and a streamed Table 1 workload, replayed through the capacity-validating boundary |
//! | `gc-steady-state`   | a pre-conditioned, fragmented SSD under sustained overwrites with garbage collection on |
//! | `queue-depth-sweep` | the same bursty workload across device queue depths 8→64 |
//! | `mixed-burst`       | half-read/half-write bursts at high and low transactional locality |
//! | `array-scaleout`    | the multi-SSD frontend: one trace striped over 1→16 devices at a fixed 64-chip budget and fixed footprint (the array analogue of the fig15 sweep) |
//! | `array-skew`        | hot-shard imbalance: clustered offsets against coarse stripes vs a uniform workload on a 4-device array, plus the same hot shard with the adaptive rebalancer on — the regression the placement layer must win |
//! | `array-rebalance`   | a modular hot set (every hot stripe ≡ 0 mod width, so round-robin deals them all to one device) replayed static vs adaptive — only the placement indirection can spread the heat |
//! | `array-hetero`      | heterogeneous devices (32/16/8/8 chips) with the hot set dealt to a small device: weight-aware migration moves it toward the big device |
//! | `tenant-mix`        | three tenant classes (interactive / streaming / batch) share one device through the fair-share admission front; per-tenant p99, SLO counts, and the weighted fairness index ride the run metrics |
//! | `tenant-storm`      | the batch tenant storms (8× its baseline submission volume, arriving all at once); the token bucket plus deficit round-robin must hold the isolated tenants' p99 while the storming tenant eats its own queueing |
//!
//! Every scenario compares the conventional controller (VAS) against full
//! Sprinkler (SPK3) and returns per-cell [`RunMetrics`], so regressions in any
//! operating regime — not just the paper's figures — are visible from one
//! `run_all` call.  The `scenarios` binary runs the registry from the command
//! line (CI runs it at quick scale).

use serde::{Deserialize, Serialize};
use sprinkler_array::{run_array, ArrayConfig, ArrayMetrics, RebalanceConfig};
use sprinkler_core::SchedulerKind;
use sprinkler_sim::{SimTime, SplitMix64};
use sprinkler_ssd::{GcConfig, RunMetrics, SsdConfig};
use sprinkler_workloads::{parse, workload, SweepSpec, SyntheticSpec, Trace, TraceOp, TraceRecord};

use sprinkler_tenants::{
    run_tenants, PriorityClass, TenantMux, TenantOutcome, TenantSpec, TokenBucketConfig,
};
use sprinkler_workloads::{FootprintSlice, SlicedSource, TraceSource};

use crate::replay::{run_source, run_source_detailed, CapacityPolicy};
use crate::report::{fmt_f64, Table};
use crate::runner::{run_cells, ExperimentScale};

/// The registered scenario names, in run order.
pub const SCENARIO_NAMES: [&str; 10] = [
    "enterprise-replay",
    "gc-steady-state",
    "queue-depth-sweep",
    "mixed-burst",
    "array-scaleout",
    "array-skew",
    "array-rebalance",
    "array-hetero",
    "tenant-mix",
    "tenant-storm",
];

/// Array widths the scale-out scenario sweeps; the chip budget is fixed, so
/// width `n` runs `n` devices of `ARRAY_CHIP_BUDGET / n` chips each.
pub const ARRAY_SCALEOUT_DEVICES: [usize; 5] = [1, 2, 4, 8, 16];

/// Total flash chips across the array in the scale-out sweep (the paper
/// platform's 64-chip budget, re-partitioned instead of grown).
pub const ARRAY_CHIP_BUDGET: usize = 64;

/// The schedulers every scenario compares.
const SCHEDULERS: [SchedulerKind; 2] = [SchedulerKind::Vas, SchedulerKind::Spk3];

/// One measured cell of a scenario: a workload variant under one scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// The workload variant (e.g. `"sample_msr"`, `"qd16"`).
    pub label: String,
    /// Scheduler evaluated.
    pub scheduler: SchedulerKind,
    /// Collected metrics.
    pub metrics: RunMetrics,
}

/// The result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario's registry name.
    pub scenario: String,
    /// Every (variant × scheduler) cell, in deterministic order.
    pub cells: Vec<ScenarioCell>,
}

impl ScenarioOutcome {
    /// The cell for one variant/scheduler pair.
    pub fn cell(&self, label: &str, scheduler: SchedulerKind) -> Option<&ScenarioCell> {
        self.cells
            .iter()
            .find(|c| c.label == label && c.scheduler == scheduler)
    }

    /// Bandwidth/latency summary table, one row per variant.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            format!("Scenario: {}", self.scenario),
            vec![
                "variant".into(),
                "VAS KB/s".into(),
                "SPK3 KB/s".into(),
                "VAS lat us".into(),
                "SPK3 lat us".into(),
            ],
        );
        let mut variants: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !variants.contains(&cell.label.as_str()) {
                variants.push(&cell.label);
            }
        }
        for variant in variants {
            let metric = |kind, f: fn(&RunMetrics) -> f64| {
                self.cell(variant, kind)
                    .map_or_else(String::new, |c| fmt_f64(f(&c.metrics)))
            };
            table.add_row(vec![
                variant.to_string(),
                metric(SchedulerKind::Vas, |m| m.bandwidth_kb_per_sec),
                metric(SchedulerKind::Spk3, |m| m.bandwidth_kb_per_sec),
                metric(SchedulerKind::Vas, |m| m.avg_latency_ns / 1000.0),
                metric(SchedulerKind::Spk3, |m| m.avg_latency_ns / 1000.0),
            ]);
        }
        table
    }
}

/// Runs one named scenario at the given scale.  Returns `None` for an unknown
/// name (see [`SCENARIO_NAMES`]).
pub fn run(name: &str, scale: &ExperimentScale) -> Option<ScenarioOutcome> {
    let cells = match name {
        "enterprise-replay" => enterprise_replay(scale),
        "gc-steady-state" => gc_steady_state(scale),
        "queue-depth-sweep" => queue_depth_sweep(scale),
        "mixed-burst" => mixed_burst(scale),
        "array-scaleout" => array_scaleout(scale),
        "array-skew" => array_skew(scale),
        "array-rebalance" => array_rebalance(scale),
        "array-hetero" => array_hetero(scale),
        "tenant-mix" => tenant_mix(scale),
        "tenant-storm" => tenant_storm(scale),
        _ => return None,
    };
    Some(ScenarioOutcome {
        scenario: name.to_string(),
        cells,
    })
}

/// Runs every registered scenario, in [`SCENARIO_NAMES`] order.
pub fn run_all(scale: &ExperimentScale) -> Vec<ScenarioOutcome> {
    SCENARIO_NAMES
        .iter()
        .map(|name| run(name, scale).expect("registry names are valid"))
        .collect()
}

/// The baseline configuration scenarios run on.
fn scenario_config(scale: &ExperimentScale) -> SsdConfig {
    SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane)
}

/// enterprise-replay: the embedded text corpora stream through the parser and
/// the capacity-rejecting replay boundary (proving validation is active on
/// real trace text), plus one Table 1 workload streamed lazily at scale.
fn enterprise_replay(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let config = scenario_config(scale);
    let cells: Vec<(&str, SchedulerKind)> = ["sample_msr", "sample_blkparse", "msnfs1"]
        .into_iter()
        .flat_map(|label| SCHEDULERS.iter().map(move |&kind| (label, kind)))
        .collect();
    run_cells(&cells, |&(label, kind)| {
        let metrics = match label {
            "sample_msr" => run_source(
                &config,
                kind,
                &mut parse::sample_msr(),
                CapacityPolicy::Reject,
            ),
            "sample_blkparse" => run_source(
                &config,
                kind,
                &mut parse::sample_blkparse(),
                CapacityPolicy::Reject,
            ),
            _ => {
                let spec = workload(label).expect("msnfs1 is a Table 1 workload");
                run_source(
                    &config,
                    kind,
                    &mut spec.stream(scale.ios_per_workload, 0x5CE0),
                    CapacityPolicy::Reject,
                )
            }
        }
        .expect("enterprise traces fit the device's logical capacity");
        ScenarioCell {
            label: label.to_string(),
            scheduler: kind,
            metrics,
        }
    })
}

/// gc-steady-state: a small, fragmented SSD (pre-conditioned to 90% physical
/// utilization) under sustained overwrites, garbage collection enabled — the
/// regime of Fig 17, held as a standing scenario.
fn gc_steady_state(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let config = SsdConfig::paper_default()
        .with_chip_count(16)
        .with_blocks_per_plane(8)
        .with_gc(GcConfig::enabled());
    // A footprint of half the logical capacity keeps overwrites hot.
    let footprint_mb = (config.geometry.capacity_bytes() / (2 * 1024 * 1024)).max(1);
    let cells: Vec<SchedulerKind> = SCHEDULERS.to_vec();
    run_cells(&cells, |&kind| {
        let spec = SyntheticSpec::new("gc-steady")
            .with_read_fraction(0.3)
            .with_mean_sizes_kb(16.0, 16.0)
            .with_footprint_mb(footprint_mb)
            .with_randomness(0.95, 0.95);
        let metrics = run_source_detailed(
            &config,
            kind,
            &mut spec.stream(scale.ios_per_workload, 0x6C),
            CapacityPolicy::Reject,
            false,
            Some(0.90),
        )
        .expect("the GC workload fits the device");
        ScenarioCell {
            label: "fragmented-90pct".to_string(),
            scheduler: kind,
            metrics,
        }
    })
}

/// queue-depth-sweep: one bursty, read-heavy workload replayed at device
/// queue depths 8 → 64.
fn queue_depth_sweep(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let depths: [usize; 4] = [8, 16, 32, 64];
    let cells: Vec<(usize, SchedulerKind)> = depths
        .into_iter()
        .flat_map(|depth| SCHEDULERS.iter().map(move |&kind| (depth, kind)))
        .collect();
    run_cells(&cells, |&(depth, kind)| {
        let config = scenario_config(scale).with_queue_depth(depth);
        let spec = SyntheticSpec::new("qd-sweep")
            .with_read_fraction(0.8)
            .with_bursts(16, 80.0)
            .with_footprint_mb(1024);
        let metrics = run_source(
            &config,
            kind,
            &mut spec.stream(scale.ios_per_workload, 0x9D),
            CapacityPolicy::Reject,
        )
        .expect("the sweep workload fits the device");
        ScenarioCell {
            label: format!("qd{depth}"),
            scheduler: kind,
            metrics,
        }
    })
}

/// mixed-burst: half-read/half-write bursts, at high and low transactional
/// locality.
fn mixed_burst(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    use sprinkler_workloads::Locality;
    let variants: [(&str, Locality); 2] = [
        ("burst-high-locality", Locality::High),
        ("burst-low-locality", Locality::Low),
    ];
    let cells: Vec<((&str, Locality), SchedulerKind)> = variants
        .into_iter()
        .flat_map(|variant| SCHEDULERS.iter().map(move |&kind| (variant, kind)))
        .collect();
    run_cells(&cells, |&((label, locality), kind)| {
        let config = scenario_config(scale);
        let spec = SyntheticSpec::new(label)
            .with_read_fraction(0.5)
            .with_mean_sizes_kb(32.0, 32.0)
            .with_bursts(32, 60.0)
            .with_locality(locality)
            .with_footprint_mb(1024);
        let metrics = run_source(
            &config,
            kind,
            &mut spec.stream(scale.ios_per_workload, 0xB5),
            CapacityPolicy::Reject,
        )
        .expect("the burst workload fits the device");
        ScenarioCell {
            label: label.to_string(),
            scheduler: kind,
            metrics,
        }
    })
}

/// The device configuration of one scale-out array cell: the fixed chip
/// budget split evenly across `devices` devices.
fn array_scaleout_config(scale: &ExperimentScale, devices: usize) -> ArrayConfig {
    ArrayConfig::new(scenario_config(scale).with_chip_count(ARRAY_CHIP_BUDGET / devices))
        .with_devices(devices)
        .with_stripe_kb(32)
}

/// The fixed-footprint workload every scale-out cell stripes: 256 KB
/// transfers (8 stripes each, so every request fans out across devices) in
/// read-heavy bursts, saturating enough that the single-device point is
/// completion-bound.  Public so the bench target and the baseline gate time
/// and check exactly the cells the scenario runs.
pub fn array_scaleout_metrics(
    scale: &ExperimentScale,
    devices: usize,
    kind: SchedulerKind,
) -> ArrayMetrics {
    let spec = SweepSpec::new(256)
        .with_read_fraction(0.8)
        .with_footprint_mb(512)
        .with_bursts(16, 50.0);
    run_array(
        &array_scaleout_config(scale, devices),
        kind,
        &mut spec.stream(scale.ios_per_workload, 0xA44A),
    )
    .expect("the scale-out workload fits the array")
}

/// array-scaleout: one trace, striped across 1→16 devices at a fixed total
/// chip budget and fixed footprint — does the host-level frontend convert
/// added devices into aggregate bandwidth, and how does scheduler choice
/// compose with striping?
fn array_scaleout(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let cells: Vec<(usize, SchedulerKind)> = ARRAY_SCALEOUT_DEVICES
        .into_iter()
        .flat_map(|devices| SCHEDULERS.iter().map(move |&kind| (devices, kind)))
        .collect();
    run_cells(&cells, |&(devices, kind)| ScenarioCell {
        label: format!("n{devices}"),
        scheduler: kind,
        metrics: array_scaleout_metrics(scale, devices, kind).summary_run_metrics(),
    })
}

/// Logical stripes the skew workload spans (64 MB at 4 MB stripes).
const ARRAY_SKEW_TOTAL_STRIPES: u64 = 16;

/// Standing hot stripes in the skew workload, all ≡ 0 (mod 4): round-robin
/// deals every one to device 0.
const ARRAY_SKEW_HOT_STRIPES: u64 = 4;

/// The skew workload family: one deterministic generator serves all three
/// variants so the hot-shard and rebalance cells replay *byte-identical*
/// streams and the uniform cell differs only in where offsets land.  The
/// hot variants aim 40% of the requests at a standing 4-stripe hot set whose
/// 2 MB offset clusters sit inside single 4 MB stripes — and every hot
/// stripe index is ≡ 0 (mod 4), so static round-robin concentrates the
/// whole shard on device 0.
fn array_skew_trace(label: &str, records: u64) -> Trace {
    let stripe_bytes = 4 * 1024 * 1024;
    modular_hot_trace(
        label,
        records,
        0x5E,
        &HotSetSpec {
            stripe_bytes,
            width: 4,
            residue: 0,
            hot_stripes: ARRAY_SKEW_HOT_STRIPES,
            total_stripes: ARRAY_SKEW_TOTAL_STRIPES,
            hot_percent: if label == "uniform" { 0 } else { 40 },
            // Clustered offsets: hot requests stay inside a 2 MB window of
            // their stripe.
            hot_span: stripe_bytes / 2,
            request_bytes: 64 * 1024,
        },
    )
}

/// The rebalance tuning the skew scenario's third variant runs.  Coarse
/// 4 MB stripes make migration expensive (each move injects ~8 MB of copy
/// traffic), so the window is long enough for an accurate heat estimate and
/// the budget is tight: two or three decisive moves spread the standing hot
/// set, then the trigger guard goes quiet.
fn array_skew_rebalance() -> RebalanceConfig {
    RebalanceConfig {
        window_records: 48,
        decay: 0.9,
        trigger_ratio: 1.2,
        max_migrations_per_window: 1,
        max_total_migrations: 3,
    }
}

/// One array-skew cell, exposed for tests that assert on the imbalance
/// statistics the [`ScenarioCell`] summary flattens away.  The
/// `"hot-shard-rebalance"` variant replays the *byte-identical* hot-shard
/// stream with the adaptive placement layer on, so any difference in the
/// metrics is attributable to migration alone.
pub fn array_skew_metrics(
    scale: &ExperimentScale,
    label: &str,
    kind: SchedulerKind,
) -> ArrayMetrics {
    let mut config =
        ArrayConfig::new(scenario_config(scale).with_chip_count(ARRAY_CHIP_BUDGET / 4))
            .with_devices(4)
            .with_stripe_kb(4096);
    let trace_label = if label == "hot-shard-rebalance" {
        config = config.with_rebalance(array_skew_rebalance());
        "hot-shard"
    } else {
        label
    };
    let trace = array_skew_trace(trace_label, scale.ios_per_workload);
    run_array(&config, kind, &mut trace.source()).expect("the skew workload fits the array")
}

/// The horizon multiplier for the skew acceptance figures.  A 4 MB stripe
/// copy is ~8 MB of injected device traffic — more than the whole quick-scale
/// payload — so the quick cell cannot amortize even one migration.  The
/// recorded figures replay the same cells over this many quick horizons,
/// the way a standing hot shard would amortize a one-time move.
pub const ARRAY_SKEW_FIGURE_IOS_FACTOR: u64 = 12;

/// The array-skew cell at the figure horizon
/// ([`ARRAY_SKEW_FIGURE_IOS_FACTOR`] × the scale's record count) — the
/// deterministic basis for the recorded skew/rebalance figures.
pub fn array_skew_figure_metrics(
    scale: &ExperimentScale,
    label: &str,
    kind: SchedulerKind,
) -> ArrayMetrics {
    let horizon = ExperimentScale {
        ios_per_workload: scale.ios_per_workload * ARRAY_SKEW_FIGURE_IOS_FACTOR,
        ..*scale
    };
    array_skew_metrics(&horizon, label, kind)
}

/// array-skew: hot-shard imbalance on a 4-device array — clustered offsets
/// against coarse 4 MB stripes concentrate bursts on one shard at a time,
/// vs. the same burst shape spread uniformly, vs. the same hot shard with
/// the adaptive rebalancer migrating stripes off the hot device.
fn array_skew(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let variants = ["uniform", "hot-shard", "hot-shard-rebalance"];
    let cells: Vec<(&str, SchedulerKind)> = variants
        .into_iter()
        .flat_map(|label| SCHEDULERS.iter().map(move |&kind| (label, kind)))
        .collect();
    run_cells(&cells, |&(label, kind)| ScenarioCell {
        label: label.to_string(),
        scheduler: kind,
        metrics: array_skew_metrics(scale, label, kind).summary_run_metrics(),
    })
}

/// Shape of a deterministic "modular hot set" workload (see
/// [`modular_hot_trace`]).
struct HotSetSpec {
    /// Stripe size the offsets are laid out against.
    stripe_bytes: u64,
    /// Array width the hot residue is chosen against.
    width: u64,
    /// Hot stripe indices are `residue + width * k` — all the same device
    /// under chunked round-robin.
    residue: u64,
    /// Number of stripes in the hot set.
    hot_stripes: u64,
    /// Total logical stripes (the footprint).
    total_stripes: u64,
    /// Percent of requests aimed at the hot set (0 = uniform workload).
    hot_percent: u64,
    /// Bytes of each hot stripe the hot requests cluster within.
    hot_span: u64,
    /// Fixed request size.
    request_bytes: u64,
}

/// A deterministic "modular hot set" trace: `hot_percent` of the requests
/// cycle through `hot_stripes` stripe indices that are all ≡ `residue`
/// (mod `width`), so chunked round-robin deals every hot stripe to the same
/// device and no *static* layout can spread the heat — only the placement
/// indirection can.  The rest of the requests scatter uniformly over
/// `total_stripes` stripes.  Arrivals outpace any single device, so the
/// replay is completion-bound and imbalance shows up directly as elapsed
/// time (and therefore bandwidth).
fn modular_hot_trace(name: &str, records: u64, seed: u64, spec: &HotSetSpec) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let out: Vec<TraceRecord> = (0..records)
        .map(|i| {
            let (stripe, span) = if rng.next_u64() % 100 < spec.hot_percent {
                (
                    spec.residue + spec.width * (rng.next_u64() % spec.hot_stripes),
                    spec.hot_span,
                )
            } else {
                (rng.next_u64() % spec.total_stripes, spec.stripe_bytes)
            };
            let slots = span / spec.request_bytes;
            TraceRecord {
                id: i,
                arrival: SimTime::from_micros(i * 20),
                op: if rng.next_u64().is_multiple_of(4) {
                    TraceOp::Write
                } else {
                    TraceOp::Read
                },
                offset: stripe * spec.stripe_bytes + (rng.next_u64() % slots) * spec.request_bytes,
                bytes: spec.request_bytes,
            }
        })
        .collect();
    Trace::new(name, out)
}

/// Stripes in the modular-hot-set scenarios: 256 KB keeps a migration's copy
/// bill (two ~512 KB device transfers) small next to the payload.
const ARRAY_REBALANCE_STRIPE_KB: u64 = 256;

/// Logical stripes the modular hot set scatters over (64 MB of footprint).
const ARRAY_REBALANCE_TOTAL_STRIPES: u64 = 256;

/// Hot stripes in the modular hot set.
const ARRAY_REBALANCE_HOT_STRIPES: u64 = 8;

/// The rebalance tuning for the modular-hot-set scenarios: cheap 256 KB
/// stripes afford a budget wide enough to re-home the whole hot set.
fn array_rebalance_tuning() -> RebalanceConfig {
    RebalanceConfig {
        window_records: 16,
        decay: 0.5,
        trigger_ratio: 1.2,
        max_migrations_per_window: 2,
        max_total_migrations: 12,
    }
}

/// One array-rebalance cell: the modular hot set (every hot stripe on device
/// 0 under round-robin) replayed `"static"` or `"adaptive"`.  Public so the
/// bench target and the baseline gate time and check exactly the cells the
/// scenario runs.
pub fn array_rebalance_metrics(
    scale: &ExperimentScale,
    label: &str,
    kind: SchedulerKind,
) -> ArrayMetrics {
    let stripe_bytes = ARRAY_REBALANCE_STRIPE_KB * 1024;
    let mut config =
        ArrayConfig::new(scenario_config(scale).with_chip_count(ARRAY_CHIP_BUDGET / 4))
            .with_devices(4)
            .with_stripe_kb(ARRAY_REBALANCE_STRIPE_KB);
    if label == "adaptive" {
        config = config.with_rebalance(array_rebalance_tuning());
    }
    let trace = modular_hot_trace(
        "modular-hot",
        scale.ios_per_workload,
        0xC1A0,
        &HotSetSpec {
            stripe_bytes,
            width: 4,
            residue: 0,
            hot_stripes: ARRAY_REBALANCE_HOT_STRIPES,
            total_stripes: ARRAY_REBALANCE_TOTAL_STRIPES,
            hot_percent: 75,
            hot_span: stripe_bytes,
            request_bytes: 64 * 1024,
        },
    );
    run_array(&config, kind, &mut trace.source()).expect("the modular hot set fits the array")
}

/// array-rebalance: the adaptive placement layer against its adversarial
/// best case — a hot set round-robin provably cannot spread (every hot
/// stripe ≡ 0 mod width lands on device 0), static vs adaptive.
fn array_rebalance(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let variants = ["static", "adaptive"];
    let cells: Vec<(&str, SchedulerKind)> = variants
        .into_iter()
        .flat_map(|label| SCHEDULERS.iter().map(move |&kind| (label, kind)))
        .collect();
    run_cells(&cells, |&(label, kind)| ScenarioCell {
        label: label.to_string(),
        scheduler: kind,
        metrics: array_rebalance_metrics(scale, label, kind).summary_run_metrics(),
    })
}

/// Chip counts of the heterogeneous array's devices (the fixed
/// [`ARRAY_CHIP_BUDGET`], split unevenly).
pub const ARRAY_HETERO_CHIPS: [usize; 4] = [32, 16, 8, 8];

/// One array-hetero cell: the same modular hot set, but dealt (residue 2) to
/// an 8-chip device of a 32/16/8/8-chip array.  Static round-robin pins the
/// hot set to the weakest device; the weight-aware rebalancer migrates it
/// toward spare capability.  Public for the baseline gate and tests.
pub fn array_hetero_metrics(
    scale: &ExperimentScale,
    label: &str,
    kind: SchedulerKind,
) -> ArrayMetrics {
    let stripe_bytes = ARRAY_REBALANCE_STRIPE_KB * 1024;
    let base = scenario_config(scale);
    let devices = ARRAY_HETERO_CHIPS
        .iter()
        .map(|&chips| base.clone().with_chip_count(chips))
        .collect();
    let mut config = ArrayConfig::heterogeneous(devices).with_stripe_kb(ARRAY_REBALANCE_STRIPE_KB);
    if label == "adaptive" {
        config = config.with_rebalance(array_rebalance_tuning());
    }
    let trace = modular_hot_trace(
        "hetero-hot",
        scale.ios_per_workload,
        0x4E70,
        &HotSetSpec {
            stripe_bytes,
            width: 4,
            residue: 2,
            hot_stripes: ARRAY_REBALANCE_HOT_STRIPES,
            total_stripes: ARRAY_REBALANCE_TOTAL_STRIPES,
            hot_percent: 75,
            hot_span: stripe_bytes,
            request_bytes: 64 * 1024,
        },
    );
    run_array(&config, kind, &mut trace.source()).expect("the hetero hot set fits the array")
}

/// array-hetero: heterogeneous devices under a hot set that round-robin
/// deals to a small device — does weight-aware migration convert spare
/// big-device capability into aggregate bandwidth?
fn array_hetero(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let variants = ["static", "adaptive"];
    let cells: Vec<(&str, SchedulerKind)> = variants
        .into_iter()
        .flat_map(|label| SCHEDULERS.iter().map(move |&kind| (label, kind)))
        .collect();
    run_cells(&cells, |&(label, kind)| ScenarioCell {
        label: label.to_string(),
        scheduler: kind,
        metrics: array_hetero_metrics(scale, label, kind).summary_run_metrics(),
    })
}

// ---------------------------------------------------------------------------
// Multi-tenant scenarios
// ---------------------------------------------------------------------------

/// Storm multiplier: the storming tenant submits this many times its baseline
/// record count, all arriving in a dense front-loaded burst.
pub const TENANT_STORM_FACTOR: u64 = 8;

/// The pinned isolation bound the tenant-storm scenario must hold: each
/// isolated tenant's p99 under the storm stays within this factor of its
/// baseline p99 (asserted by a test and gated in `BENCH_tenants.json`).
pub const TENANT_ISOLATION_P99_BOUND: f64 = 2.0;

/// Carves the device's logical capacity into `n` page-aligned tenant slices.
fn tenant_slices(config: &SsdConfig, n: usize) -> Vec<FootprintSlice> {
    FootprintSlice::split_even(
        config.geometry.capacity_bytes(),
        n,
        config.page_size() as u64,
    )
}

/// Wraps a synthetic workload into one tenant's footprint slice.  The
/// generator's footprint is clamped to the slice (64 MB keeps offsets hot
/// enough to exercise parallelism without touching the whole device).
fn tenant_source(
    spec: SyntheticSpec,
    slice: FootprintSlice,
    count: u64,
    seed: u64,
) -> Box<dyn TraceSource + Send + 'static> {
    let footprint_mb = (slice.len / (1024 * 1024)).clamp(1, 64);
    Box::new(SlicedSource::new(
        spec.with_footprint_mb(footprint_mb).stream(count, seed),
        slice,
    ))
}

/// The interactive tenant every tenant scenario runs: small, latency-critical
/// random reads with a 5 ms SLO.
fn interactive_tenant(
    slice: FootprintSlice,
    count: u64,
) -> (TenantSpec, Box<dyn TraceSource + Send>) {
    let spec = SyntheticSpec::new("interactive")
        .with_read_fraction(0.95)
        .with_mean_sizes_kb(4.0, 4.0)
        .with_randomness(1.0, 1.0)
        .with_bursts(4, 120.0);
    (
        TenantSpec::new("interactive", PriorityClass::Interactive).with_slo_latency_ns(5_000_000),
        tenant_source(spec, slice, count, 0x7E01),
    )
}

/// The streaming tenant: deadline-driven sequential 256 KB reads (the
/// video-allocation class from PAPERS.md) with a 50 ms SLO.
fn streaming_tenant(
    slice: FootprintSlice,
    count: u64,
) -> (TenantSpec, Box<dyn TraceSource + Send>) {
    let spec = SyntheticSpec::new("streaming")
        .with_read_fraction(1.0)
        .with_mean_sizes_kb(256.0, 256.0)
        .with_randomness(0.05, 0.05)
        .with_bursts(2, 500.0);
    (
        TenantSpec::new("streaming", PriorityClass::Streaming).with_slo_latency_ns(50_000_000),
        tenant_source(spec, slice, count, 0x7E02),
    )
}

/// The batch tenant: large, throughput-oriented writes behind a token bucket
/// (the burst-isolation mechanism the storm scenario stresses).
fn batch_tenant(
    slice: FootprintSlice,
    count: u64,
    storming: bool,
) -> (TenantSpec, Box<dyn TraceSource + Send>) {
    let spec = if storming {
        // The storm: everything submitted in one dense front-loaded burst.
        SyntheticSpec::new("batch")
            .with_read_fraction(0.1)
            .with_mean_sizes_kb(128.0, 128.0)
            .with_bursts(4096, 1.0)
    } else {
        SyntheticSpec::new("batch")
            .with_read_fraction(0.1)
            .with_mean_sizes_kb(128.0, 128.0)
            .with_bursts(16, 400.0)
    };
    (
        TenantSpec::new("batch", PriorityClass::Batch)
            .with_bucket(TokenBucketConfig::new(64 * 1024 * 1024, 1024 * 1024)),
        tenant_source(spec, slice, count, 0x7E03),
    )
}

/// One tenant-mix cell: interactive + streaming + batch sharing one device
/// through the fair-share front.  Public so the bench target, the baseline
/// gate, and tests measure exactly the cell the scenario runs.
pub fn tenant_mix_outcome(scale: &ExperimentScale, kind: SchedulerKind) -> TenantOutcome {
    let config = scenario_config(scale);
    let slices = tenant_slices(&config, 3);
    let n = scale.ios_per_workload;
    let mux = TenantMux::new(vec![
        interactive_tenant(slices[0], n / 2),
        streaming_tenant(slices[1], n / 4),
        batch_tenant(slices[2], n / 4, false),
    ]);
    run_tenants(&config, kind, mux).expect("tenant slices are provisioned within capacity")
}

/// One tenant-storm cell.  `"baseline"` runs the same tenants as tenant-mix;
/// `"storm"` multiplies the batch tenant's submission volume by
/// [`TENANT_STORM_FACTOR`] and front-loads its arrivals, leaving the isolated
/// tenants' streams byte-identical — any change in their latency is
/// attributable to the storm alone.  Public for the bench target, the
/// baseline gate, and tests.
pub fn tenant_storm_outcome(
    scale: &ExperimentScale,
    label: &str,
    kind: SchedulerKind,
) -> TenantOutcome {
    let config = scenario_config(scale);
    let slices = tenant_slices(&config, 3);
    let n = scale.ios_per_workload;
    let storming = label == "storm";
    let batch_count = if storming {
        (n / 4) * TENANT_STORM_FACTOR
    } else {
        n / 4
    };
    let mux = TenantMux::new(vec![
        interactive_tenant(slices[0], n / 2),
        streaming_tenant(slices[1], n / 4),
        batch_tenant(slices[2], batch_count, storming),
    ]);
    run_tenants(&config, kind, mux).expect("tenant slices are provisioned within capacity")
}

/// tenant-mix: the three tenant classes share one device through the
/// deficit-round-robin admission front; per-tenant figures ride
/// [`RunMetrics::tenants`].
fn tenant_mix(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let cells: Vec<SchedulerKind> = SCHEDULERS.to_vec();
    run_cells(&cells, |&kind| ScenarioCell {
        label: "mix".to_string(),
        scheduler: kind,
        metrics: tenant_mix_outcome(scale, kind).metrics,
    })
}

/// tenant-storm: burst isolation under a storming batch tenant, baseline vs
/// storm — the isolated tenants' p99 must hold within
/// [`TENANT_ISOLATION_P99_BOUND`] of baseline.
fn tenant_storm(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let variants = ["baseline", "storm"];
    let cells: Vec<(&str, SchedulerKind)> = variants
        .into_iter()
        .flat_map(|label| SCHEDULERS.iter().map(move |&kind| (label, kind)))
        .collect();
    run_cells(&cells, |&(label, kind)| ScenarioCell {
        label: label.to_string(),
        scheduler: kind,
        metrics: tenant_storm_outcome(scale, label, kind).metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_workloads::TraceSource;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            ios_per_workload: 120,
            blocks_per_plane: 16,
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(run("no-such-scenario", &tiny()).is_none());
    }

    #[test]
    fn every_registered_scenario_runs_and_reports() {
        let outcomes = run_all(&tiny());
        assert_eq!(outcomes.len(), SCENARIO_NAMES.len());
        for (outcome, name) in outcomes.iter().zip(SCENARIO_NAMES) {
            assert_eq!(outcome.scenario, name);
            assert!(!outcome.cells.is_empty(), "{name} produced no cells");
            for cell in &outcome.cells {
                assert!(
                    cell.metrics.io_count > 0,
                    "{name}/{} completed no I/Os",
                    cell.label
                );
                assert!(cell.metrics.bandwidth_kb_per_sec > 0.0);
            }
            let rendered = outcome.table().render();
            assert!(rendered.contains(name));
        }
    }

    #[test]
    fn enterprise_replay_covers_both_text_formats() {
        let outcome = run("enterprise-replay", &tiny()).unwrap();
        for label in ["sample_msr", "sample_blkparse", "msnfs1"] {
            let cell = outcome
                .cell(label, SchedulerKind::Spk3)
                .unwrap_or_else(|| panic!("missing cell {label}"));
            assert!(cell.metrics.io_count > 0);
        }
        // The parsed corpora replay every record they contain.
        let mut msr = parse::sample_msr();
        let msr_records = std::iter::from_fn(|| msr.next_record()).count() as u64;
        assert_eq!(
            outcome
                .cell("sample_msr", SchedulerKind::Vas)
                .unwrap()
                .metrics
                .io_count,
            msr_records
        );
    }

    #[test]
    fn gc_steady_state_actually_garbage_collects() {
        let outcome = run("gc-steady-state", &tiny()).unwrap();
        for cell in &outcome.cells {
            assert!(
                cell.metrics.gc.invocations > 0,
                "{} never triggered GC",
                cell.scheduler
            );
        }
    }

    #[test]
    fn array_scaleout_converts_devices_into_aggregate_bandwidth() {
        let scale = ExperimentScale::quick();
        let outcome = run("array-scaleout", &scale).unwrap();
        assert_eq!(
            outcome.cells.len(),
            ARRAY_SCALEOUT_DEVICES.len() * SCHEDULERS.len()
        );
        let bw = |label: &str| {
            outcome
                .cell(label, SchedulerKind::Spk3)
                .unwrap()
                .metrics
                .bandwidth_kb_per_sec
        };
        // The frontend must convert added devices into aggregate bandwidth.
        assert!(
            bw("n16") > bw("n1") * 1.1,
            "16 devices must beat 1 device: {} vs {}",
            bw("n16"),
            bw("n1")
        );
        // And the sweep must not collapse anywhere along the way.
        for pair in ARRAY_SCALEOUT_DEVICES.windows(2) {
            let (a, b) = (format!("n{}", pair[0]), format!("n{}", pair[1]));
            assert!(
                bw(&b) >= bw(&a) * 0.9,
                "bandwidth regressed from {a} to {b}: {} vs {}",
                bw(&a),
                bw(&b)
            );
        }
    }

    #[test]
    fn array_skew_exposes_the_hot_shard() {
        let scale = ExperimentScale::quick();
        for kind in SCHEDULERS {
            let uniform = array_skew_metrics(&scale, "uniform", kind);
            let skewed = array_skew_metrics(&scale, "hot-shard", kind);
            assert!(
                skewed.skew.io_imbalance > uniform.skew.io_imbalance * 1.2,
                "{kind}: clustered offsets must imbalance the shards \
                 ({} vs {})",
                skewed.skew.io_imbalance,
                uniform.skew.io_imbalance
            );
            assert!(
                skewed.bandwidth_kb_per_sec < uniform.bandwidth_kb_per_sec,
                "{kind}: the hot shard must cost aggregate bandwidth"
            );
        }
        // The registry serves all three variants as cells.
        let outcome = run("array-skew", &scale).unwrap();
        assert_eq!(outcome.cells.len(), 3 * SCHEDULERS.len());
        assert!(outcome.cell("hot-shard", SchedulerKind::Spk3).is_some());
        assert!(outcome
            .cell("hot-shard-rebalance", SchedulerKind::Spk3)
            .is_some());
    }

    /// The acceptance bar from the roadmap, pinned for every scheduler at the
    /// figure horizon: the rebalancer must recover at least half of the hot
    /// shard's bandwidth cost *and* bring I/O imbalance back under 1.2×, and
    /// it must do so by actually migrating stripes rather than by the workload
    /// happening to spread itself.
    #[test]
    fn array_skew_rebalancer_wins_the_acceptance_targets() {
        let scale = ExperimentScale::quick();
        for kind in SCHEDULERS {
            let uniform = array_skew_figure_metrics(&scale, "uniform", kind);
            let hot = array_skew_figure_metrics(&scale, "hot-shard", kind);
            let rebalanced = array_skew_figure_metrics(&scale, "hot-shard-rebalance", kind);
            assert!(rebalanced.stripes_migrated > 0, "{kind}: no migrations");
            let midpoint = (uniform.bandwidth_kb_per_sec + hot.bandwidth_kb_per_sec) / 2.0;
            assert!(
                rebalanced.bandwidth_kb_per_sec >= midpoint,
                "{kind}: recovered less than half the bandwidth gap \
                 (uniform {:.0}, hot {:.0}, rebalanced {:.0})",
                uniform.bandwidth_kb_per_sec,
                hot.bandwidth_kb_per_sec,
                rebalanced.bandwidth_kb_per_sec
            );
            assert!(
                rebalanced.skew.io_imbalance <= 1.2,
                "{kind}: imbalance stayed at {:.3} (hot shard was {:.3})",
                rebalanced.skew.io_imbalance,
                hot.skew.io_imbalance
            );
        }
    }

    /// On the modular hot set — every hot stripe dealt to the same device by
    /// chunked round-robin — only placement indirection can spread the load,
    /// so the adaptive variant must beat static striping on both bandwidth
    /// and balance for every scheduler.
    #[test]
    fn array_rebalance_adaptive_beats_static() {
        let scale = ExperimentScale::quick();
        for kind in SCHEDULERS {
            let stat = array_rebalance_metrics(&scale, "static", kind);
            let adaptive = array_rebalance_metrics(&scale, "adaptive", kind);
            assert_eq!(stat.stripes_migrated, 0, "{kind}");
            assert!(adaptive.stripes_migrated > 0, "{kind}: no migrations");
            assert!(
                adaptive.bandwidth_kb_per_sec > stat.bandwidth_kb_per_sec,
                "{kind}: adaptive {:.0} did not beat static {:.0}",
                adaptive.bandwidth_kb_per_sec,
                stat.bandwidth_kb_per_sec
            );
            assert!(
                adaptive.skew.io_imbalance < stat.skew.io_imbalance,
                "{kind}: imbalance {:.3} did not improve on {:.3}",
                adaptive.skew.io_imbalance,
                stat.skew.io_imbalance
            );
        }
    }

    /// Heterogeneous devices: the hot set lands on an 8-chip device, and the
    /// weight-aware rebalancer must shed it toward the larger devices —
    /// improving both weighted imbalance and aggregate bandwidth.
    #[test]
    fn array_hetero_adaptive_restores_weighted_balance() {
        let scale = ExperimentScale::quick();
        for kind in SCHEDULERS {
            let stat = array_hetero_metrics(&scale, "static", kind);
            let adaptive = array_hetero_metrics(&scale, "adaptive", kind);
            assert!(adaptive.stripes_migrated > 0, "{kind}: no migrations");
            assert!(
                adaptive.skew.weighted_io_imbalance < stat.skew.weighted_io_imbalance,
                "{kind}: weighted imbalance {:.3} did not improve on {:.3}",
                adaptive.skew.weighted_io_imbalance,
                stat.skew.weighted_io_imbalance
            );
            assert!(
                adaptive.bandwidth_kb_per_sec > stat.bandwidth_kb_per_sec,
                "{kind}: adaptive {:.0} did not beat static {:.0}",
                adaptive.bandwidth_kb_per_sec,
                stat.bandwidth_kb_per_sec
            );
        }
    }

    #[test]
    fn tenant_mix_attributes_every_io_and_class() {
        let scale = ExperimentScale::quick();
        for kind in SCHEDULERS {
            let outcome = tenant_mix_outcome(&scale, kind);
            assert_eq!(outcome.metrics.tenants.len(), 3, "{kind}");
            let attributed: u64 = outcome.metrics.tenants.iter().map(|t| t.io_count).sum();
            assert_eq!(attributed, outcome.metrics.io_count, "{kind}");
            for tenant in &outcome.metrics.tenants {
                assert!(tenant.io_count > 0, "{kind}: {} ran nothing", tenant.name);
                assert!(tenant.p99_latency_ns > 0, "{kind}: {}", tenant.name);
            }
            let fairness = outcome.fairness_index();
            assert!(
                fairness > 0.0 && fairness <= 1.0,
                "{kind}: fairness {fairness}"
            );
        }
        // The registry serves the scenario as scheduler cells.
        let outcome = run("tenant-mix", &scale).unwrap();
        assert_eq!(outcome.cells.len(), SCHEDULERS.len());
    }

    /// The acceptance bar for the multi-tenant front, pinned for every
    /// scheduler at the figure horizon: when the batch tenant storms at
    /// [`TENANT_STORM_FACTOR`]× its baseline volume, its own p99 must degrade
    /// (the storm is real) while each isolated tenant's p99 holds within
    /// [`TENANT_ISOLATION_P99_BOUND`]× of its baseline (the bucket and the
    /// deficit-round-robin front absorb the blast).
    #[test]
    fn tenant_storm_holds_isolated_tenant_p99() {
        let scale = ExperimentScale::quick();
        for kind in SCHEDULERS {
            let baseline = tenant_storm_outcome(&scale, "baseline", kind);
            let storm = tenant_storm_outcome(&scale, "storm", kind);
            let p99 = |outcome: &TenantOutcome, name: &str| {
                outcome
                    .metrics
                    .tenants
                    .iter()
                    .find(|t| t.name == name)
                    .unwrap_or_else(|| panic!("missing tenant {name}"))
                    .p99_latency_ns
            };
            assert!(
                p99(&storm, "batch") >= 2 * p99(&baseline, "batch"),
                "{kind}: the storm must cost the storming tenant \
                 ({} vs baseline {})",
                p99(&storm, "batch"),
                p99(&baseline, "batch")
            );
            for victim in ["interactive", "streaming"] {
                let held = p99(&storm, victim) as f64;
                let bound = p99(&baseline, victim) as f64 * TENANT_ISOLATION_P99_BOUND;
                assert!(
                    held <= bound,
                    "{kind}: {victim} p99 {held} broke the {TENANT_ISOLATION_P99_BOUND}x \
                     isolation bound (baseline {})",
                    p99(&baseline, victim)
                );
            }
            // The storm drags the run's byte-share fairness down.
            assert!(
                storm.fairness_index() < baseline.fairness_index(),
                "{kind}: fairness did not register the storm"
            );
        }
        let outcome = run("tenant-storm", &scale).unwrap();
        assert_eq!(outcome.cells.len(), 2 * SCHEDULERS.len());
    }

    #[test]
    fn queue_depth_sweep_covers_all_depths() {
        let outcome = run("queue-depth-sweep", &tiny()).unwrap();
        assert_eq!(outcome.cells.len(), 8);
        // Deeper queues cannot hurt SPK3's bandwidth at this workload.
        let bw = |label: &str| {
            outcome
                .cell(label, SchedulerKind::Spk3)
                .unwrap()
                .metrics
                .bandwidth_kb_per_sec
        };
        assert!(bw("qd64") >= bw("qd8") * 0.8);
    }
}
