//! The named-scenario registry.
//!
//! The figure modules reproduce the paper's published panels; the registry
//! covers the *operational* situations a production many-chip SSD must handle,
//! each as a named, deterministic, scale-aware experiment that fans out over
//! [`run_cells`]:
//!
//! | scenario            | what it exercises |
//! |---------------------|-------------------|
//! | `enterprise-replay` | parsed text traces (the embedded MSR + blkparse corpora) and a streamed Table 1 workload, replayed through the capacity-validating boundary |
//! | `gc-steady-state`   | a pre-conditioned, fragmented SSD under sustained overwrites with garbage collection on |
//! | `queue-depth-sweep` | the same bursty workload across device queue depths 8→64 |
//! | `mixed-burst`       | half-read/half-write bursts at high and low transactional locality |
//! | `array-scaleout`    | the multi-SSD frontend: one trace striped over 1→16 devices at a fixed 64-chip budget and fixed footprint (the array analogue of the fig15 sweep) |
//! | `array-skew`        | hot-shard imbalance: clustered offsets against coarse stripes vs a uniform workload on a 4-device array |
//!
//! Every scenario compares the conventional controller (VAS) against full
//! Sprinkler (SPK3) and returns per-cell [`RunMetrics`], so regressions in any
//! operating regime — not just the paper's figures — are visible from one
//! `run_all` call.  The `scenarios` binary runs the registry from the command
//! line (CI runs it at quick scale).

use serde::{Deserialize, Serialize};
use sprinkler_array::{run_array, ArrayConfig, ArrayMetrics};
use sprinkler_core::SchedulerKind;
use sprinkler_ssd::{GcConfig, RunMetrics, SsdConfig};
use sprinkler_workloads::{parse, workload, Locality, SweepSpec, SyntheticSpec};

use crate::replay::{run_source, run_source_detailed, CapacityPolicy};
use crate::report::{fmt_f64, Table};
use crate::runner::{run_cells, ExperimentScale};

/// The registered scenario names, in run order.
pub const SCENARIO_NAMES: [&str; 6] = [
    "enterprise-replay",
    "gc-steady-state",
    "queue-depth-sweep",
    "mixed-burst",
    "array-scaleout",
    "array-skew",
];

/// Array widths the scale-out scenario sweeps; the chip budget is fixed, so
/// width `n` runs `n` devices of `ARRAY_CHIP_BUDGET / n` chips each.
pub const ARRAY_SCALEOUT_DEVICES: [usize; 5] = [1, 2, 4, 8, 16];

/// Total flash chips across the array in the scale-out sweep (the paper
/// platform's 64-chip budget, re-partitioned instead of grown).
pub const ARRAY_CHIP_BUDGET: usize = 64;

/// The schedulers every scenario compares.
const SCHEDULERS: [SchedulerKind; 2] = [SchedulerKind::Vas, SchedulerKind::Spk3];

/// One measured cell of a scenario: a workload variant under one scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// The workload variant (e.g. `"sample_msr"`, `"qd16"`).
    pub label: String,
    /// Scheduler evaluated.
    pub scheduler: SchedulerKind,
    /// Collected metrics.
    pub metrics: RunMetrics,
}

/// The result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario's registry name.
    pub scenario: String,
    /// Every (variant × scheduler) cell, in deterministic order.
    pub cells: Vec<ScenarioCell>,
}

impl ScenarioOutcome {
    /// The cell for one variant/scheduler pair.
    pub fn cell(&self, label: &str, scheduler: SchedulerKind) -> Option<&ScenarioCell> {
        self.cells
            .iter()
            .find(|c| c.label == label && c.scheduler == scheduler)
    }

    /// Bandwidth/latency summary table, one row per variant.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            format!("Scenario: {}", self.scenario),
            vec![
                "variant".into(),
                "VAS KB/s".into(),
                "SPK3 KB/s".into(),
                "VAS lat us".into(),
                "SPK3 lat us".into(),
            ],
        );
        let mut variants: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !variants.contains(&cell.label.as_str()) {
                variants.push(&cell.label);
            }
        }
        for variant in variants {
            let metric = |kind, f: fn(&RunMetrics) -> f64| {
                self.cell(variant, kind)
                    .map_or_else(String::new, |c| fmt_f64(f(&c.metrics)))
            };
            table.add_row(vec![
                variant.to_string(),
                metric(SchedulerKind::Vas, |m| m.bandwidth_kb_per_sec),
                metric(SchedulerKind::Spk3, |m| m.bandwidth_kb_per_sec),
                metric(SchedulerKind::Vas, |m| m.avg_latency_ns / 1000.0),
                metric(SchedulerKind::Spk3, |m| m.avg_latency_ns / 1000.0),
            ]);
        }
        table
    }
}

/// Runs one named scenario at the given scale.  Returns `None` for an unknown
/// name (see [`SCENARIO_NAMES`]).
pub fn run(name: &str, scale: &ExperimentScale) -> Option<ScenarioOutcome> {
    let cells = match name {
        "enterprise-replay" => enterprise_replay(scale),
        "gc-steady-state" => gc_steady_state(scale),
        "queue-depth-sweep" => queue_depth_sweep(scale),
        "mixed-burst" => mixed_burst(scale),
        "array-scaleout" => array_scaleout(scale),
        "array-skew" => array_skew(scale),
        _ => return None,
    };
    Some(ScenarioOutcome {
        scenario: name.to_string(),
        cells,
    })
}

/// Runs every registered scenario, in [`SCENARIO_NAMES`] order.
pub fn run_all(scale: &ExperimentScale) -> Vec<ScenarioOutcome> {
    SCENARIO_NAMES
        .iter()
        .map(|name| run(name, scale).expect("registry names are valid"))
        .collect()
}

/// The baseline configuration scenarios run on.
fn scenario_config(scale: &ExperimentScale) -> SsdConfig {
    SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane)
}

/// enterprise-replay: the embedded text corpora stream through the parser and
/// the capacity-rejecting replay boundary (proving validation is active on
/// real trace text), plus one Table 1 workload streamed lazily at scale.
fn enterprise_replay(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let config = scenario_config(scale);
    let cells: Vec<(&str, SchedulerKind)> = ["sample_msr", "sample_blkparse", "msnfs1"]
        .into_iter()
        .flat_map(|label| SCHEDULERS.iter().map(move |&kind| (label, kind)))
        .collect();
    run_cells(&cells, |&(label, kind)| {
        let metrics = match label {
            "sample_msr" => run_source(
                &config,
                kind,
                &mut parse::sample_msr(),
                CapacityPolicy::Reject,
            ),
            "sample_blkparse" => run_source(
                &config,
                kind,
                &mut parse::sample_blkparse(),
                CapacityPolicy::Reject,
            ),
            _ => {
                let spec = workload(label).expect("msnfs1 is a Table 1 workload");
                run_source(
                    &config,
                    kind,
                    &mut spec.stream(scale.ios_per_workload, 0x5CE0),
                    CapacityPolicy::Reject,
                )
            }
        }
        .expect("enterprise traces fit the device's logical capacity");
        ScenarioCell {
            label: label.to_string(),
            scheduler: kind,
            metrics,
        }
    })
}

/// gc-steady-state: a small, fragmented SSD (pre-conditioned to 90% physical
/// utilization) under sustained overwrites, garbage collection enabled — the
/// regime of Fig 17, held as a standing scenario.
fn gc_steady_state(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let config = SsdConfig::paper_default()
        .with_chip_count(16)
        .with_blocks_per_plane(8)
        .with_gc(GcConfig::enabled());
    // A footprint of half the logical capacity keeps overwrites hot.
    let footprint_mb = (config.geometry.capacity_bytes() / (2 * 1024 * 1024)).max(1);
    let cells: Vec<SchedulerKind> = SCHEDULERS.to_vec();
    run_cells(&cells, |&kind| {
        let spec = SyntheticSpec::new("gc-steady")
            .with_read_fraction(0.3)
            .with_mean_sizes_kb(16.0, 16.0)
            .with_footprint_mb(footprint_mb)
            .with_randomness(0.95, 0.95);
        let metrics = run_source_detailed(
            &config,
            kind,
            &mut spec.stream(scale.ios_per_workload, 0x6C),
            CapacityPolicy::Reject,
            false,
            Some(0.90),
        )
        .expect("the GC workload fits the device");
        ScenarioCell {
            label: "fragmented-90pct".to_string(),
            scheduler: kind,
            metrics,
        }
    })
}

/// queue-depth-sweep: one bursty, read-heavy workload replayed at device
/// queue depths 8 → 64.
fn queue_depth_sweep(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let depths: [usize; 4] = [8, 16, 32, 64];
    let cells: Vec<(usize, SchedulerKind)> = depths
        .into_iter()
        .flat_map(|depth| SCHEDULERS.iter().map(move |&kind| (depth, kind)))
        .collect();
    run_cells(&cells, |&(depth, kind)| {
        let config = scenario_config(scale).with_queue_depth(depth);
        let spec = SyntheticSpec::new("qd-sweep")
            .with_read_fraction(0.8)
            .with_bursts(16, 80.0)
            .with_footprint_mb(1024);
        let metrics = run_source(
            &config,
            kind,
            &mut spec.stream(scale.ios_per_workload, 0x9D),
            CapacityPolicy::Reject,
        )
        .expect("the sweep workload fits the device");
        ScenarioCell {
            label: format!("qd{depth}"),
            scheduler: kind,
            metrics,
        }
    })
}

/// mixed-burst: half-read/half-write bursts, at high and low transactional
/// locality.
fn mixed_burst(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    use sprinkler_workloads::Locality;
    let variants: [(&str, Locality); 2] = [
        ("burst-high-locality", Locality::High),
        ("burst-low-locality", Locality::Low),
    ];
    let cells: Vec<((&str, Locality), SchedulerKind)> = variants
        .into_iter()
        .flat_map(|variant| SCHEDULERS.iter().map(move |&kind| (variant, kind)))
        .collect();
    run_cells(&cells, |&((label, locality), kind)| {
        let config = scenario_config(scale);
        let spec = SyntheticSpec::new(label)
            .with_read_fraction(0.5)
            .with_mean_sizes_kb(32.0, 32.0)
            .with_bursts(32, 60.0)
            .with_locality(locality)
            .with_footprint_mb(1024);
        let metrics = run_source(
            &config,
            kind,
            &mut spec.stream(scale.ios_per_workload, 0xB5),
            CapacityPolicy::Reject,
        )
        .expect("the burst workload fits the device");
        ScenarioCell {
            label: label.to_string(),
            scheduler: kind,
            metrics,
        }
    })
}

/// The device configuration of one scale-out array cell: the fixed chip
/// budget split evenly across `devices` devices.
fn array_scaleout_config(scale: &ExperimentScale, devices: usize) -> ArrayConfig {
    ArrayConfig::new(scenario_config(scale).with_chip_count(ARRAY_CHIP_BUDGET / devices))
        .with_devices(devices)
        .with_stripe_kb(32)
}

/// The fixed-footprint workload every scale-out cell stripes: 256 KB
/// transfers (8 stripes each, so every request fans out across devices) in
/// read-heavy bursts, saturating enough that the single-device point is
/// completion-bound.  Public so the bench target and the baseline gate time
/// and check exactly the cells the scenario runs.
pub fn array_scaleout_metrics(
    scale: &ExperimentScale,
    devices: usize,
    kind: SchedulerKind,
) -> ArrayMetrics {
    let spec = SweepSpec::new(256)
        .with_read_fraction(0.8)
        .with_footprint_mb(512)
        .with_bursts(16, 50.0);
    run_array(
        &array_scaleout_config(scale, devices),
        kind,
        &mut spec.stream(scale.ios_per_workload, 0xA44A),
    )
    .expect("the scale-out workload fits the array")
}

/// array-scaleout: one trace, striped across 1→16 devices at a fixed total
/// chip budget and fixed footprint — does the host-level frontend convert
/// added devices into aggregate bandwidth, and how does scheduler choice
/// compose with striping?
fn array_scaleout(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let cells: Vec<(usize, SchedulerKind)> = ARRAY_SCALEOUT_DEVICES
        .into_iter()
        .flat_map(|devices| SCHEDULERS.iter().map(move |&kind| (devices, kind)))
        .collect();
    run_cells(&cells, |&(devices, kind)| ScenarioCell {
        label: format!("n{devices}"),
        scheduler: kind,
        metrics: array_scaleout_metrics(scale, devices, kind).summary_run_metrics(),
    })
}

/// The array-skew variants: a uniform random workload against a clustered
/// one whose 2 MB offset clusters sit inside single 4 MB stripes, pinning
/// bursts to one shard at a time.
fn array_skew_spec(label: &str) -> SyntheticSpec {
    let spec = SyntheticSpec::new(label)
        .with_read_fraction(0.7)
        .with_mean_sizes_kb(16.0, 16.0)
        .with_bursts(16, 60.0);
    match label {
        "uniform" => spec
            .with_locality(Locality::Low)
            .with_randomness(1.0, 1.0)
            .with_footprint_mb(256),
        _ => spec
            .with_locality(Locality::High)
            .with_randomness(0.2, 0.2)
            .with_footprint_mb(24),
    }
}

/// One array-skew cell, exposed for tests that assert on the imbalance
/// statistics the [`ScenarioCell`] summary flattens away.
pub fn array_skew_metrics(
    scale: &ExperimentScale,
    label: &str,
    kind: SchedulerKind,
) -> ArrayMetrics {
    let config = ArrayConfig::new(scenario_config(scale).with_chip_count(ARRAY_CHIP_BUDGET / 4))
        .with_devices(4)
        .with_stripe_kb(4096);
    run_array(
        &config,
        kind,
        &mut array_skew_spec(label).stream(scale.ios_per_workload, 0x5E),
    )
    .expect("the skew workload fits the array")
}

/// array-skew: hot-shard imbalance on a 4-device array — clustered offsets
/// against coarse 4 MB stripes concentrate bursts on one shard at a time,
/// vs. the same burst shape spread uniformly.
fn array_skew(scale: &ExperimentScale) -> Vec<ScenarioCell> {
    let variants = ["uniform", "hot-shard"];
    let cells: Vec<(&str, SchedulerKind)> = variants
        .into_iter()
        .flat_map(|label| SCHEDULERS.iter().map(move |&kind| (label, kind)))
        .collect();
    run_cells(&cells, |&(label, kind)| ScenarioCell {
        label: label.to_string(),
        scheduler: kind,
        metrics: array_skew_metrics(scale, label, kind).summary_run_metrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_workloads::TraceSource;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            ios_per_workload: 120,
            blocks_per_plane: 16,
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(run("no-such-scenario", &tiny()).is_none());
    }

    #[test]
    fn every_registered_scenario_runs_and_reports() {
        let outcomes = run_all(&tiny());
        assert_eq!(outcomes.len(), SCENARIO_NAMES.len());
        for (outcome, name) in outcomes.iter().zip(SCENARIO_NAMES) {
            assert_eq!(outcome.scenario, name);
            assert!(!outcome.cells.is_empty(), "{name} produced no cells");
            for cell in &outcome.cells {
                assert!(
                    cell.metrics.io_count > 0,
                    "{name}/{} completed no I/Os",
                    cell.label
                );
                assert!(cell.metrics.bandwidth_kb_per_sec > 0.0);
            }
            let rendered = outcome.table().render();
            assert!(rendered.contains(name));
        }
    }

    #[test]
    fn enterprise_replay_covers_both_text_formats() {
        let outcome = run("enterprise-replay", &tiny()).unwrap();
        for label in ["sample_msr", "sample_blkparse", "msnfs1"] {
            let cell = outcome
                .cell(label, SchedulerKind::Spk3)
                .unwrap_or_else(|| panic!("missing cell {label}"));
            assert!(cell.metrics.io_count > 0);
        }
        // The parsed corpora replay every record they contain.
        let mut msr = parse::sample_msr();
        let msr_records = std::iter::from_fn(|| msr.next_record()).count() as u64;
        assert_eq!(
            outcome
                .cell("sample_msr", SchedulerKind::Vas)
                .unwrap()
                .metrics
                .io_count,
            msr_records
        );
    }

    #[test]
    fn gc_steady_state_actually_garbage_collects() {
        let outcome = run("gc-steady-state", &tiny()).unwrap();
        for cell in &outcome.cells {
            assert!(
                cell.metrics.gc.invocations > 0,
                "{} never triggered GC",
                cell.scheduler
            );
        }
    }

    #[test]
    fn array_scaleout_converts_devices_into_aggregate_bandwidth() {
        let scale = ExperimentScale::quick();
        let outcome = run("array-scaleout", &scale).unwrap();
        assert_eq!(
            outcome.cells.len(),
            ARRAY_SCALEOUT_DEVICES.len() * SCHEDULERS.len()
        );
        let bw = |label: &str| {
            outcome
                .cell(label, SchedulerKind::Spk3)
                .unwrap()
                .metrics
                .bandwidth_kb_per_sec
        };
        // The frontend must convert added devices into aggregate bandwidth.
        assert!(
            bw("n16") > bw("n1") * 1.1,
            "16 devices must beat 1 device: {} vs {}",
            bw("n16"),
            bw("n1")
        );
        // And the sweep must not collapse anywhere along the way.
        for pair in ARRAY_SCALEOUT_DEVICES.windows(2) {
            let (a, b) = (format!("n{}", pair[0]), format!("n{}", pair[1]));
            assert!(
                bw(&b) >= bw(&a) * 0.9,
                "bandwidth regressed from {a} to {b}: {} vs {}",
                bw(&a),
                bw(&b)
            );
        }
    }

    #[test]
    fn array_skew_exposes_the_hot_shard() {
        let scale = ExperimentScale::quick();
        for kind in SCHEDULERS {
            let uniform = array_skew_metrics(&scale, "uniform", kind);
            let skewed = array_skew_metrics(&scale, "hot-shard", kind);
            assert!(
                skewed.skew.io_imbalance > uniform.skew.io_imbalance * 1.2,
                "{kind}: clustered offsets must imbalance the shards \
                 ({} vs {})",
                skewed.skew.io_imbalance,
                uniform.skew.io_imbalance
            );
            assert!(
                skewed.bandwidth_kb_per_sec < uniform.bandwidth_kb_per_sec,
                "{kind}: the hot shard must cost aggregate bandwidth"
            );
        }
        // The registry serves both variants as cells.
        let outcome = run("array-skew", &scale).unwrap();
        assert_eq!(outcome.cells.len(), 4);
        assert!(outcome.cell("hot-shard", SchedulerKind::Spk3).is_some());
    }

    #[test]
    fn queue_depth_sweep_covers_all_depths() {
        let outcome = run("queue-depth-sweep", &tiny()).unwrap();
        assert_eq!(outcome.cells.len(), 8);
        // Deeper queues cannot hurt SPK3's bandwidth at this workload.
        let bw = |label: &str| {
            outcome
                .cell(label, SchedulerKind::Spk3)
                .unwrap()
                .metrics
                .bandwidth_kb_per_sec
        };
        assert!(bw("qd64") >= bw("qd8") * 0.8);
    }
}
