//! Table 1 — trace characteristics, regenerated from the synthetic workloads.

use serde::{Deserialize, Serialize};
use sprinkler_workloads::{paper_workloads, TraceStats};

use crate::report::{fmt_f64, Table};
use crate::runner::ExperimentScale;

/// One regenerated row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Entry {
    /// Workload name.
    pub name: String,
    /// Measured statistics of the generated trace.
    pub stats: TraceStats,
    /// The transactional-locality class the workload was generated with.
    pub locality: String,
}

/// The regenerated Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Report {
    /// One entry per workload, in Table 1 order.
    pub entries: Vec<Table1Entry>,
}

/// Generates every paper workload at the given scale and recomputes its
/// characteristics.
pub fn run(scale: &ExperimentScale) -> Table1Report {
    let entries = sprinkler_workloads::table1::TABLE1
        .iter()
        .zip(paper_workloads())
        .map(|(row, spec)| {
            let trace = spec.generate(scale.ios_per_workload, 0x7AB1E1);
            Table1Entry {
                name: row.name.to_string(),
                stats: TraceStats::analyze(&trace),
                locality: row.locality.label().to_string(),
            }
        })
        .collect();
    Table1Report { entries }
}

impl Table1Report {
    /// Renders the table with the same columns the paper reports.
    pub fn render(&self) -> Table {
        let mut table = Table::new(
            "Table 1: trace characteristics (regenerated from synthetic workloads)",
            vec![
                "workload".into(),
                "read MB".into(),
                "write MB".into(),
                "reads".into(),
                "writes".into(),
                "rd rand %".into(),
                "wr rand %".into(),
                "locality".into(),
            ],
        );
        for entry in &self.entries {
            table.add_row(vec![
                entry.name.clone(),
                fmt_f64(entry.stats.read_bytes as f64 / 1024.0 / 1024.0),
                fmt_f64(entry.stats.write_bytes as f64 / 1024.0 / 1024.0),
                entry.stats.read_count.to_string(),
                entry.stats.write_count.to_string(),
                fmt_f64(entry.stats.read_randomness * 100.0),
                fmt_f64(entry.stats.write_randomness * 100.0),
                entry.locality.clone(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerates_sixteen_rows_with_expected_mixes() {
        let report = run(&ExperimentScale::quick());
        assert_eq!(report.entries.len(), 16);
        let hm1 = report.entries.iter().find(|e| e.name == "hm1").unwrap();
        assert!(hm1.stats.read_fraction() > 0.85, "hm1 is read-dominated");
        let msnfs0 = report.entries.iter().find(|e| e.name == "msnfs0").unwrap();
        assert!(
            msnfs0.stats.read_fraction() < 0.15,
            "msnfs0 is write-dominated"
        );
        let rendered = report.render().render();
        assert!(rendered.contains("cfs0"));
        assert!(rendered.contains("proj4"));
    }
}
