//! Logical and physical flash addressing.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A logical page number: the host-visible (virtual) address space, in units of one
/// flash page.
///
/// # Example
///
/// ```
/// use sprinkler_flash::Lpn;
///
/// let lpn = Lpn::new(42);
/// assert_eq!(lpn.value(), 42);
/// assert_eq!(lpn.offset(3).value(), 45);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Lpn(u64);

impl Lpn {
    /// Wraps a raw logical page number.
    pub const fn new(value: u64) -> Self {
        Lpn(value)
    }

    /// The raw value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns this LPN shifted forward by `pages`.
    pub const fn offset(self, pages: u64) -> Self {
        Lpn(self.0 + pages)
    }
}

impl fmt::Display for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A flat physical page number, unique across the whole SSD.
///
/// Use [`crate::FlashGeometry::ppn_of`] / [`crate::FlashGeometry::addr_of`] to
/// convert between [`Ppn`] and [`PhysicalPageAddr`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ppn(u64);

impl Ppn {
    /// Wraps a raw physical page number.
    pub const fn new(value: u64) -> Self {
        Ppn(value)
    }

    /// The raw value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a flash chip by its channel and its position ("way") on that channel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChipLocation {
    /// Channel index.
    pub channel: u32,
    /// Position of the chip within the channel.
    pub way: u32,
}

impl fmt::Display for ChipLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}w{}", self.channel, self.way)
    }
}

/// A fully qualified physical page address: channel, way (chip within the channel),
/// die, plane, block, and page.
///
/// # Example
///
/// ```
/// use sprinkler_flash::{FlashGeometry, PhysicalPageAddr};
///
/// let g = FlashGeometry::small_test();
/// let addr = g.page_addr(1, 0, 1, 1, 3, 5);
/// assert_eq!(addr.chip(), g.chip_location(g.chip_index(1, 0)));
/// assert_eq!(g.addr_of(g.ppn_of(addr)), addr);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysicalPageAddr {
    /// Channel index.
    pub channel: u32,
    /// Chip position within the channel.
    pub way: u32,
    /// Die index within the chip.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl PhysicalPageAddr {
    /// The chip this page lives on.
    pub fn chip(&self) -> ChipLocation {
        ChipLocation {
            channel: self.channel,
            way: self.way,
        }
    }

    /// True if `other` lives on the same chip.
    pub fn same_chip(&self, other: &PhysicalPageAddr) -> bool {
        self.channel == other.channel && self.way == other.way
    }

    /// True if `other` lives on the same die of the same chip.
    pub fn same_die(&self, other: &PhysicalPageAddr) -> bool {
        self.same_chip(other) && self.die == other.die
    }

    /// True if `other` lives on the same plane of the same die.
    pub fn same_plane(&self, other: &PhysicalPageAddr) -> bool {
        self.same_die(other) && self.plane == other.plane
    }

    /// True if `other` addresses the same block.
    pub fn same_block(&self, other: &PhysicalPageAddr) -> bool {
        self.same_plane(other) && self.block == other.block
    }

    /// Returns a copy addressing a different page of the same block.
    pub fn with_page(mut self, page: u32) -> Self {
        self.page = page;
        self
    }

    /// Returns a copy addressing a different block of the same plane.
    pub fn with_block(mut self, block: u32) -> Self {
        self.block = block;
        self
    }
}

impl fmt::Display for PhysicalPageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}w{}d{}p{}b{}pg{}",
            self.channel, self.way, self.die, self.plane, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;

    #[test]
    fn lpn_basics() {
        let lpn = Lpn::new(10);
        assert_eq!(lpn.value(), 10);
        assert_eq!(lpn.offset(5), Lpn::new(15));
        assert_eq!(lpn.to_string(), "L10");
        assert!(Lpn::new(1) < Lpn::new(2));
    }

    #[test]
    fn ppn_basics() {
        let ppn = Ppn::new(77);
        assert_eq!(ppn.value(), 77);
        assert_eq!(ppn.to_string(), "P77");
    }

    #[test]
    fn chip_location_display() {
        let loc = ChipLocation { channel: 3, way: 1 };
        assert_eq!(loc.to_string(), "ch3w1");
    }

    #[test]
    fn addr_relations() {
        let g = FlashGeometry::small_test();
        let a = g.page_addr(0, 1, 1, 0, 2, 3);
        let same_plane = g.page_addr(0, 1, 1, 0, 4, 7);
        let same_die = g.page_addr(0, 1, 1, 1, 2, 3);
        let same_chip = g.page_addr(0, 1, 0, 0, 2, 3);
        let other_chip = g.page_addr(1, 1, 1, 0, 2, 3);

        assert!(a.same_plane(&same_plane));
        assert!(!a.same_block(&same_plane));
        assert!(a.same_die(&same_plane));
        assert!(a.same_chip(&same_die));
        assert!(a.same_die(&same_die));
        assert!(!a.same_plane(&same_die));
        assert!(a.same_chip(&same_chip));
        assert!(!a.same_die(&same_chip));
        assert!(!a.same_chip(&other_chip));
        assert!(a.same_block(&a));
    }

    #[test]
    fn addr_with_modifiers() {
        let g = FlashGeometry::small_test();
        let a = g.page_addr(0, 0, 0, 0, 1, 1);
        assert_eq!(a.with_page(5).page, 5);
        assert_eq!(a.with_block(3).block, 3);
        assert_eq!(a.with_page(5).block, 1);
    }

    #[test]
    fn addr_display_is_compact() {
        let g = FlashGeometry::small_test();
        let a = g.page_addr(1, 0, 1, 1, 7, 2);
        assert_eq!(a.to_string(), "ch1w0d1p1b7pg2");
    }
}
