//! Flash cell array ground truth.
//!
//! NAND flash imposes two hard rules the FTL must respect: pages within a block
//! must be programmed sequentially, and a page cannot be re-programmed without
//! erasing its whole block first.  [`CellArray`] tracks per-block write pointers and
//! erase counts so the SSD substrate (and its tests) can verify that the FTL and
//! garbage collector never violate these rules, and so wear statistics are
//! available for the wear-levelling accounting.

use serde::{Deserialize, Serialize};

use crate::address::PhysicalPageAddr;
use crate::error::FlashError;
use crate::geometry::FlashGeometry;

/// Tracks program order and erase counts for every block in the SSD.
///
/// # Example
///
/// ```
/// use sprinkler_flash::{CellArray, FlashGeometry};
///
/// let g = FlashGeometry::small_test();
/// let mut cells = CellArray::new(g.clone());
/// let block0_page0 = g.page_addr(0, 0, 0, 0, 0, 0);
/// let block0_page1 = g.page_addr(0, 0, 0, 0, 0, 1);
///
/// cells.program(block0_page0).unwrap();
/// cells.program(block0_page1).unwrap();
/// assert!(cells.is_programmed(block0_page0));
/// cells.erase(block0_page0).unwrap();
/// assert!(!cells.is_programmed(block0_page0));
/// assert_eq!(cells.erase_count(block0_page0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellArray {
    geometry: FlashGeometry,
    /// Next page index expected to be programmed, per block.
    write_pointers: Vec<u32>,
    /// Erase count per block.
    erase_counts: Vec<u32>,
    programs: u64,
    erases: u64,
}

impl CellArray {
    /// Creates a fully erased array for `geometry`.
    pub fn new(geometry: FlashGeometry) -> Self {
        let blocks = geometry.total_pages() / geometry.pages_per_block;
        CellArray {
            geometry,
            write_pointers: vec![0; blocks],
            erase_counts: vec![0; blocks],
            programs: 0,
            erases: 0,
        }
    }

    /// The geometry this array was built for.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    fn block_index(&self, addr: PhysicalPageAddr) -> usize {
        let g = &self.geometry;
        let chip = g.chip_index(addr.channel, addr.way);
        ((chip * g.dies_per_chip + addr.die as usize) * g.planes_per_die + addr.plane as usize)
            * g.blocks_per_plane
            + addr.block as usize
    }

    /// Programs the page at `addr`.
    ///
    /// # Errors
    ///
    /// * [`FlashError::AddressOutOfRange`] if the address is invalid.
    /// * [`FlashError::BlockFull`] if every page of the block is already programmed.
    /// * [`FlashError::ProgramOrderViolation`] if `addr.page` is not the block's
    ///   next sequential page.
    pub fn program(&mut self, addr: PhysicalPageAddr) -> Result<(), FlashError> {
        self.geometry.check_addr(addr)?;
        let idx = self.block_index(addr);
        let next = self.write_pointers[idx];
        if next as usize >= self.geometry.pages_per_block {
            return Err(FlashError::BlockFull { addr });
        }
        if addr.page != next {
            return Err(FlashError::ProgramOrderViolation {
                addr,
                expected_page: next,
            });
        }
        self.write_pointers[idx] += 1;
        self.programs += 1;
        Ok(())
    }

    /// Erases the block containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] if the address is invalid.
    pub fn erase(&mut self, addr: PhysicalPageAddr) -> Result<(), FlashError> {
        self.geometry.check_addr(addr)?;
        let idx = self.block_index(addr);
        self.write_pointers[idx] = 0;
        self.erase_counts[idx] += 1;
        self.erases += 1;
        Ok(())
    }

    /// Whether the page at `addr` has been programmed since its block's last erase.
    pub fn is_programmed(&self, addr: PhysicalPageAddr) -> bool {
        if self.geometry.check_addr(addr).is_err() {
            return false;
        }
        addr.page < self.write_pointers[self.block_index(addr)]
    }

    /// The next page index that must be programmed in `addr`'s block.
    pub fn write_pointer(&self, addr: PhysicalPageAddr) -> u32 {
        self.write_pointers[self.block_index(addr)]
    }

    /// Whether `addr`'s block has no remaining programmable pages.
    pub fn is_block_full(&self, addr: PhysicalPageAddr) -> bool {
        self.write_pointer(addr) as usize >= self.geometry.pages_per_block
    }

    /// Number of times `addr`'s block has been erased.
    pub fn erase_count(&self, addr: PhysicalPageAddr) -> u32 {
        self.erase_counts[self.block_index(addr)]
    }

    /// Total page programs performed.
    pub fn total_programs(&self) -> u64 {
        self.programs
    }

    /// Total block erases performed.
    pub fn total_erases(&self) -> u64 {
        self.erases
    }

    /// The largest erase count over all blocks (wear hot spot).
    pub fn max_erase_count(&self) -> u32 {
        self.erase_counts.iter().copied().max().unwrap_or(0)
    }

    /// The mean erase count over all blocks.
    pub fn mean_erase_count(&self) -> f64 {
        if self.erase_counts.is_empty() {
            return 0.0;
        }
        self.erase_counts.iter().map(|&c| c as f64).sum::<f64>() / self.erase_counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FlashGeometry, CellArray) {
        let g = FlashGeometry::small_test();
        let cells = CellArray::new(g.clone());
        (g, cells)
    }

    #[test]
    fn fresh_array_is_erased() {
        let (g, cells) = setup();
        let addr = g.page_addr(0, 0, 0, 0, 0, 0);
        assert!(!cells.is_programmed(addr));
        assert_eq!(cells.write_pointer(addr), 0);
        assert_eq!(cells.erase_count(addr), 0);
        assert_eq!(cells.total_programs(), 0);
        assert_eq!(cells.total_erases(), 0);
        assert_eq!(cells.max_erase_count(), 0);
        assert_eq!(cells.mean_erase_count(), 0.0);
    }

    #[test]
    fn sequential_programming_succeeds() {
        let (g, mut cells) = setup();
        for page in 0..g.pages_per_block as u32 {
            cells.program(g.page_addr(0, 0, 0, 0, 2, page)).unwrap();
        }
        assert!(cells.is_block_full(g.page_addr(0, 0, 0, 0, 2, 0)));
        assert_eq!(cells.total_programs(), g.pages_per_block as u64);
    }

    #[test]
    fn out_of_order_program_is_rejected() {
        let (g, mut cells) = setup();
        let err = cells.program(g.page_addr(0, 0, 0, 0, 0, 3)).unwrap_err();
        assert!(matches!(
            err,
            FlashError::ProgramOrderViolation {
                expected_page: 0,
                ..
            }
        ));
    }

    #[test]
    fn full_block_rejects_programs_until_erase() {
        let (g, mut cells) = setup();
        let block = |page| g.page_addr(1, 1, 1, 1, 7, page);
        for page in 0..g.pages_per_block as u32 {
            cells.program(block(page)).unwrap();
        }
        assert!(matches!(
            cells.program(block(0)),
            Err(FlashError::BlockFull { .. })
        ));
        cells.erase(block(0)).unwrap();
        assert_eq!(cells.erase_count(block(0)), 1);
        cells.program(block(0)).unwrap();
        assert!(cells.is_programmed(block(0)));
        assert!(!cells.is_programmed(block(1)));
    }

    #[test]
    fn blocks_are_independent() {
        let (g, mut cells) = setup();
        cells.program(g.page_addr(0, 0, 0, 0, 0, 0)).unwrap();
        cells.program(g.page_addr(0, 0, 0, 1, 0, 0)).unwrap();
        cells.program(g.page_addr(0, 1, 0, 0, 0, 0)).unwrap();
        assert_eq!(cells.write_pointer(g.page_addr(0, 0, 0, 0, 0, 0)), 1);
        assert_eq!(cells.write_pointer(g.page_addr(0, 0, 0, 0, 1, 0)), 0);
        assert_eq!(cells.write_pointer(g.page_addr(0, 0, 0, 1, 0, 0)), 1);
        assert_eq!(cells.write_pointer(g.page_addr(0, 1, 0, 0, 0, 0)), 1);
    }

    #[test]
    fn invalid_addresses_are_rejected() {
        let (g, mut cells) = setup();
        let bad = g.page_addr(0, 0, 0, 0, 99, 0);
        assert!(matches!(
            cells.program(bad),
            Err(FlashError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            cells.erase(bad),
            Err(FlashError::AddressOutOfRange { .. })
        ));
        assert!(!cells.is_programmed(bad));
    }

    #[test]
    fn wear_statistics_track_erases() {
        let (g, mut cells) = setup();
        let a = g.page_addr(0, 0, 0, 0, 0, 0);
        let b = g.page_addr(0, 0, 0, 0, 1, 0);
        for _ in 0..3 {
            cells.erase(a).unwrap();
        }
        cells.erase(b).unwrap();
        assert_eq!(cells.max_erase_count(), 3);
        assert_eq!(cells.total_erases(), 4);
        assert!(cells.mean_erase_count() > 0.0);
        assert!(cells.mean_erase_count() < 1.0);
    }

    #[test]
    fn geometry_accessor_returns_configuration() {
        let (g, cells) = setup();
        assert_eq!(cells.geometry(), &g);
    }
}
