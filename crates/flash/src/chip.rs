//! Chip-level state machine.
//!
//! A flash chip exposes its dies and planes through a single multiplexed interface
//! and a chip-enable pin, so only one flash transaction can occupy the chip at a
//! time (§2.2).  [`Chip`] tracks when the chip is busy, plans the phase timing of a
//! transaction ([`ChipPhase`]), and accounts per-die / per-plane busy time used by
//! the intra-chip idleness and FLP metrics.

use serde::{Deserialize, Serialize};
use sprinkler_sim::{Duration, SimTime};

use crate::address::ChipLocation;
use crate::die::Die;
use crate::error::FlashError;
use crate::geometry::FlashGeometry;
use crate::timing::FlashTiming;
use crate::transaction::{FlashTransaction, ParallelismLevel};

/// The phase plan of one transaction on a chip, as absolute simulation times.
///
/// * `start .. issue_end` — the issue bus phase (commands, addresses, program data
///   in) occupies the channel and the chip interface.
/// * `issue_end .. cell_end` — the cell phase occupies the involved dies/planes;
///   the channel is free (this is what channel pipelining exploits).
/// * The completion bus phase (read data out, status) is arbitrated separately by
///   the controller once the cell phase finishes, because the channel may be busy
///   at that moment; its *duration* is `completion_bus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipPhase {
    /// When the issue bus phase starts.
    pub start: SimTime,
    /// When the issue bus phase ends and the cell phase begins.
    pub issue_end: SimTime,
    /// When the cell phase ends.
    pub cell_end: SimTime,
    /// Duration of the completion bus phase still to be arbitrated.
    pub completion_bus: Duration,
}

impl ChipPhase {
    /// Duration of the issue bus phase.
    pub fn issue_bus(&self) -> Duration {
        self.issue_end - self.start
    }

    /// Duration of the cell phase.
    pub fn cell(&self) -> Duration {
        self.cell_end - self.issue_end
    }

    /// Lower bound on the completion time (if the channel is immediately free for
    /// the completion phase).
    pub fn earliest_completion(&self) -> SimTime {
        self.cell_end + self.completion_bus
    }
}

/// Per-chip execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipStats {
    /// Number of flash transactions executed.
    pub transactions: u64,
    /// Number of page-level requests served.
    pub requests: u64,
    /// Transactions by parallelism class: `[NON-PAL, PAL1, PAL2, PAL3]`.
    pub by_level: [u64; 4],
    /// Total time the chip interface was occupied by transactions.
    pub busy: Duration,
    /// Total die busy time (sum over dies).
    pub die_busy: Duration,
    /// Total plane busy time (sum over planes).
    pub plane_busy: Duration,
}

/// A flash chip: dies, planes, the shared interface, and its busy bookkeeping.
///
/// # Example
///
/// ```
/// use sprinkler_flash::{Chip, FlashGeometry, FlashTiming, FlashOp, TransactionBuilder};
/// use sprinkler_sim::SimTime;
///
/// let g = FlashGeometry::paper_default();
/// let t = FlashTiming::paper_default();
/// let mut chip = Chip::new(g.chip_location(0), &g);
///
/// let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
/// b.try_add(g.page_addr(0, 0, 0, 0, 3, 0)).unwrap();
/// let txn = b.build().unwrap();
///
/// let phase = chip.begin_transaction(&txn, SimTime::ZERO, &t).unwrap();
/// assert!(phase.cell_end > phase.issue_end);
/// chip.complete_transaction(phase.earliest_completion());
/// assert!(!chip.is_busy());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chip {
    location: ChipLocation,
    dies: Vec<Die>,
    busy: bool,
    busy_since: SimTime,
    ready_at: SimTime,
    stats: ChipStats,
}

impl Chip {
    /// Creates an idle chip at `location` with the die/plane population described
    /// by `geometry`.
    pub fn new(location: ChipLocation, geometry: &FlashGeometry) -> Self {
        Chip {
            location,
            dies: (0..geometry.dies_per_chip)
                .map(|_| Die::new(geometry.planes_per_die))
                .collect(),
            busy: false,
            busy_since: SimTime::ZERO,
            ready_at: SimTime::ZERO,
            stats: ChipStats::default(),
        }
    }

    /// The chip's location.
    pub fn location(&self) -> ChipLocation {
        self.location
    }

    /// True while a transaction occupies the chip.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// The earliest time a new transaction may start (now, if idle).
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// Read-only access to a die.
    pub fn die(&self, index: usize) -> &Die {
        &self.dies[index]
    }

    /// Number of dies on the chip.
    pub fn die_count(&self) -> usize {
        self.dies.len()
    }

    /// Execution statistics collected so far.
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    /// Plans and starts a transaction at `start`, marking the chip busy and
    /// recording die/plane activity for the cell window.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::ChipBusy`] if a transaction is already executing, and
    /// [`FlashError::CoalesceConflict`] if the transaction belongs to another chip.
    pub fn begin_transaction(
        &mut self,
        txn: &FlashTransaction,
        start: SimTime,
        timing: &FlashTiming,
    ) -> Result<ChipPhase, FlashError> {
        if self.busy {
            return Err(FlashError::ChipBusy {
                channel: self.location.channel,
                way: self.location.way,
            });
        }
        if txn.chip() != self.location {
            return Err(FlashError::CoalesceConflict {
                reason: "transaction targets a different chip",
            });
        }
        let start = start.max(self.ready_at);
        let issue_end = start + timing.issue_bus_time(txn);
        let cell_end = issue_end + timing.cell_time(txn);
        let phase = ChipPhase {
            start,
            issue_end,
            cell_end,
            completion_bus: timing.completion_bus_time(txn),
        };

        // Record die / plane activity for the cell window.  One die-level
        // window per distinct die (first occurrence wins), one plane record
        // per request — all without collecting scratch vectors, since this
        // runs once per transaction on the zero-allocation replay path.
        let requests = txn.requests();
        for (i, request) in requests.iter().enumerate() {
            if requests[..i].iter().all(|prev| prev.die != request.die) {
                self.dies[request.die as usize].record_window(issue_end, cell_end);
            }
            self.dies[request.die as usize].record_plane(request.plane, issue_end, cell_end);
        }

        self.busy = true;
        self.busy_since = start;
        self.ready_at = SimTime::MAX;
        self.stats.transactions += 1;
        self.stats.requests += txn.requests().len() as u64;
        let level_index = match txn.parallelism() {
            ParallelismLevel::NonPal => 0,
            ParallelismLevel::Pal1 => 1,
            ParallelismLevel::Pal2 => 2,
            ParallelismLevel::Pal3 => 3,
        };
        self.stats.by_level[level_index] += 1;
        Ok(phase)
    }

    /// Marks the in-flight transaction complete at `at`, freeing the chip.
    ///
    /// The caller supplies the actual completion time because the completion bus
    /// phase is arbitrated against other traffic on the channel.
    pub fn complete_transaction(&mut self, at: SimTime) {
        if !self.busy {
            return;
        }
        self.busy = false;
        self.ready_at = at;
        self.stats.busy += at.saturating_since(self.busy_since);
        self.stats.die_busy = self.dies.iter().map(Die::busy_time).sum();
        self.stats.plane_busy = self.dies.iter().map(Die::plane_busy_time).sum();
    }

    /// Total chip busy time, including the currently running transaction evaluated
    /// at `now`.
    pub fn busy_time_at(&self, now: SimTime) -> Duration {
        if self.busy {
            self.stats.busy + now.saturating_since(self.busy_since)
        } else {
            self.stats.busy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{FlashOp, TransactionBuilder};

    fn setup() -> (FlashGeometry, FlashTiming, Chip) {
        let g = FlashGeometry::paper_default();
        let t = FlashTiming::paper_default();
        let chip = Chip::new(g.chip_location(0), &g);
        (g, t, chip)
    }

    fn read_txn(g: &FlashGeometry, planes: &[(u32, u32)]) -> FlashTransaction {
        let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
        for &(die, plane) in planes {
            b.try_add(g.page_addr(0, 0, die, plane, 1, 0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn new_chip_is_idle() {
        let (_, _, chip) = setup();
        assert!(!chip.is_busy());
        assert_eq!(chip.ready_at(), SimTime::ZERO);
        assert_eq!(chip.die_count(), 2);
        assert_eq!(chip.stats().transactions, 0);
    }

    #[test]
    fn begin_and_complete_transaction() {
        let (g, t, mut chip) = setup();
        let txn = read_txn(&g, &[(0, 0)]);
        let phase = chip
            .begin_transaction(&txn, SimTime::from_micros(5), &t)
            .unwrap();
        assert!(chip.is_busy());
        assert_eq!(phase.start, SimTime::from_micros(5));
        assert_eq!(phase.cell(), t.read_latency());
        assert!(phase.issue_bus() > Duration::ZERO);
        assert!(phase.completion_bus > Duration::ZERO);

        let done = phase.earliest_completion();
        chip.complete_transaction(done);
        assert!(!chip.is_busy());
        assert_eq!(chip.ready_at(), done);
        let stats = chip.stats();
        assert_eq!(stats.transactions, 1);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.by_level, [1, 0, 0, 0]);
        assert_eq!(stats.busy, done - phase.start);
    }

    #[test]
    fn busy_chip_rejects_new_transactions() {
        let (g, t, mut chip) = setup();
        let txn = read_txn(&g, &[(0, 0)]);
        chip.begin_transaction(&txn, SimTime::ZERO, &t).unwrap();
        let err = chip
            .begin_transaction(&txn, SimTime::from_micros(1), &t)
            .unwrap_err();
        assert!(matches!(err, FlashError::ChipBusy { .. }));
    }

    #[test]
    fn wrong_chip_transaction_is_rejected() {
        let (g, t, _) = setup();
        let mut other = Chip::new(g.chip_location(3), &g);
        let txn = read_txn(&g, &[(0, 0)]);
        let err = other
            .begin_transaction(&txn, SimTime::ZERO, &t)
            .unwrap_err();
        assert!(matches!(err, FlashError::CoalesceConflict { .. }));
    }

    #[test]
    fn start_is_clamped_to_ready_time() {
        let (g, t, mut chip) = setup();
        let txn = read_txn(&g, &[(0, 0)]);
        let phase = chip.begin_transaction(&txn, SimTime::ZERO, &t).unwrap();
        let done = phase.earliest_completion();
        chip.complete_transaction(done);
        // Asking to start before the chip became ready clamps forward.
        let phase2 = chip.begin_transaction(&txn, SimTime::ZERO, &t).unwrap();
        assert_eq!(phase2.start, done);
    }

    #[test]
    fn die_and_plane_activity_recorded_for_pal3() {
        let (g, t, mut chip) = setup();
        let txn = read_txn(&g, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(txn.parallelism(), ParallelismLevel::Pal3);
        let phase = chip.begin_transaction(&txn, SimTime::ZERO, &t).unwrap();
        chip.complete_transaction(phase.earliest_completion());
        let stats = chip.stats();
        assert_eq!(stats.by_level, [0, 0, 0, 1]);
        // Two dies were busy for the cell window each.
        assert_eq!(stats.die_busy, phase.cell() * 2);
        // Four planes were busy for the cell window each.
        assert_eq!(stats.plane_busy, phase.cell() * 4);
        assert_eq!(chip.die(0).operations(), 1);
        assert_eq!(chip.die(1).operations(), 1);
    }

    #[test]
    fn busy_time_at_includes_open_transaction() {
        let (g, t, mut chip) = setup();
        let txn = read_txn(&g, &[(0, 0)]);
        let phase = chip.begin_transaction(&txn, SimTime::ZERO, &t).unwrap();
        let mid = phase.issue_end;
        assert_eq!(chip.busy_time_at(mid), mid - phase.start);
        chip.complete_transaction(phase.earliest_completion());
        assert_eq!(
            chip.busy_time_at(SimTime::from_millis(50)),
            phase.earliest_completion() - phase.start
        );
    }

    #[test]
    fn complete_when_idle_is_a_noop() {
        let (_, _, mut chip) = setup();
        chip.complete_transaction(SimTime::from_micros(10));
        assert!(!chip.is_busy());
        assert_eq!(chip.stats().busy, Duration::ZERO);
    }
}
