//! ONFI-style flash command sequences.
//!
//! NAND flash chips are driven through a narrow multiplexed interface: every
//! operation is a sequence of *command cycles*, *address cycles*, and *data cycles*
//! on the shared bus.  This module enumerates the command set the simulated flash
//! controller issues ([`FlashCommand`]) and computes, for a whole
//! [`FlashTransaction`], the bus cycle sequence ([`CommandSequence`]) that the
//! timing model converts into bus occupancy.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::transaction::{FlashOp, FlashTransaction};

/// The ONFI command opcodes the simulated controller issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashCommand {
    /// `00h` — read setup (column/row address follows).
    ReadSetup,
    /// `30h` — read confirm (starts the cell array access).
    ReadConfirm,
    /// `32h` — multi-plane read confirm (queue another plane).
    MultiPlaneReadConfirm,
    /// `80h` — program setup (address and data follow).
    ProgramSetup,
    /// `10h` — program confirm.
    ProgramConfirm,
    /// `11h` — multi-plane / interleaved program queue ("dummy" confirm).
    ProgramQueue,
    /// `60h` — erase setup (row address follows).
    EraseSetup,
    /// `D0h` — erase confirm.
    EraseConfirm,
    /// `D1h` — multi-plane erase queue.
    EraseQueue,
    /// `70h` — read status.
    ReadStatus,
    /// `05h` — random data output setup (column change within the register).
    RandomDataOut,
    /// `E0h` — random data output confirm.
    RandomDataOutConfirm,
    /// `FFh` — reset.
    Reset,
}

impl FlashCommand {
    /// The opcode byte placed on the bus.
    pub fn opcode(self) -> u8 {
        match self {
            FlashCommand::ReadSetup => 0x00,
            FlashCommand::ReadConfirm => 0x30,
            FlashCommand::MultiPlaneReadConfirm => 0x32,
            FlashCommand::ProgramSetup => 0x80,
            FlashCommand::ProgramConfirm => 0x10,
            FlashCommand::ProgramQueue => 0x11,
            FlashCommand::EraseSetup => 0x60,
            FlashCommand::EraseConfirm => 0xD0,
            FlashCommand::EraseQueue => 0xD1,
            FlashCommand::ReadStatus => 0x70,
            FlashCommand::RandomDataOut => 0x05,
            FlashCommand::RandomDataOutConfirm => 0xE0,
            FlashCommand::Reset => 0xFF,
        }
    }
}

impl fmt::Display for FlashCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02X}h", self.opcode())
    }
}

/// One logical phase of bus activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusCycleKind {
    /// A command latch cycle.
    Command(FlashCommand),
    /// One or more address latch cycles.
    Address {
        /// Number of address bytes latched.
        cycles: u32,
    },
    /// Payload transfer into the chip (program data-in).
    DataIn {
        /// Bytes transferred.
        bytes: u32,
    },
    /// Payload transfer out of the chip (read data-out).
    DataOut {
        /// Bytes transferred.
        bytes: u32,
    },
}

/// The full bus cycle sequence for one transaction, split into the phase executed
/// *before* the cell operation (`issue`) and the phase executed *after* it
/// (`completion`, e.g. streaming read data out of the data registers).
///
/// # Example
///
/// ```
/// use sprinkler_flash::{CommandSequence, FlashGeometry, FlashOp, TransactionBuilder};
///
/// let g = FlashGeometry::paper_default();
/// let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
/// b.try_add(g.page_addr(0, 0, 0, 0, 3, 1)).unwrap();
/// let txn = b.build().unwrap();
/// let seq = CommandSequence::for_transaction(&txn);
/// assert!(seq.issue_command_cycles() >= 2);       // 00h .. 30h
/// assert_eq!(seq.data_out_bytes(), 2048);
/// assert_eq!(seq.data_in_bytes(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandSequence {
    issue: Vec<BusCycleKind>,
    completion: Vec<BusCycleKind>,
}

/// Number of address bytes latched per page-addressed command (2 column + 3 row).
pub const ADDRESS_CYCLES_PAGE: u32 = 5;
/// Number of address bytes latched per block-addressed command (3 row bytes).
pub const ADDRESS_CYCLES_BLOCK: u32 = 3;

impl CommandSequence {
    /// Builds the command sequence a controller issues for `txn`.
    ///
    /// Multi-request transactions use the multi-plane / interleaved queueing
    /// commands: every request but the last is queued with a `11h`/`32h`/`D1h`
    /// style command, and the last request carries the final confirm.
    pub fn for_transaction(txn: &FlashTransaction) -> Self {
        let n = txn.requests().len() as u32;
        let page_bytes = txn.page_size() as u32;
        let mut issue = Vec::new();
        let mut completion = Vec::new();
        match txn.op() {
            FlashOp::Read => {
                for i in 0..n {
                    issue.push(BusCycleKind::Command(FlashCommand::ReadSetup));
                    issue.push(BusCycleKind::Address {
                        cycles: ADDRESS_CYCLES_PAGE,
                    });
                    let confirm = if i + 1 == n {
                        FlashCommand::ReadConfirm
                    } else {
                        FlashCommand::MultiPlaneReadConfirm
                    };
                    issue.push(BusCycleKind::Command(confirm));
                }
                for _ in 0..n {
                    // After the cell access each plane's register is streamed out,
                    // preceded by a random-data-out pointer change.
                    completion.push(BusCycleKind::Command(FlashCommand::RandomDataOut));
                    completion.push(BusCycleKind::Address {
                        cycles: ADDRESS_CYCLES_PAGE,
                    });
                    completion.push(BusCycleKind::Command(FlashCommand::RandomDataOutConfirm));
                    completion.push(BusCycleKind::DataOut { bytes: page_bytes });
                }
                completion.push(BusCycleKind::Command(FlashCommand::ReadStatus));
            }
            FlashOp::Program => {
                for i in 0..n {
                    issue.push(BusCycleKind::Command(FlashCommand::ProgramSetup));
                    issue.push(BusCycleKind::Address {
                        cycles: ADDRESS_CYCLES_PAGE,
                    });
                    issue.push(BusCycleKind::DataIn { bytes: page_bytes });
                    let confirm = if i + 1 == n {
                        FlashCommand::ProgramConfirm
                    } else {
                        FlashCommand::ProgramQueue
                    };
                    issue.push(BusCycleKind::Command(confirm));
                }
                completion.push(BusCycleKind::Command(FlashCommand::ReadStatus));
            }
            FlashOp::Erase => {
                for i in 0..n {
                    issue.push(BusCycleKind::Command(FlashCommand::EraseSetup));
                    issue.push(BusCycleKind::Address {
                        cycles: ADDRESS_CYCLES_BLOCK,
                    });
                    let confirm = if i + 1 == n {
                        FlashCommand::EraseConfirm
                    } else {
                        FlashCommand::EraseQueue
                    };
                    issue.push(BusCycleKind::Command(confirm));
                }
                completion.push(BusCycleKind::Command(FlashCommand::ReadStatus));
            }
        }
        CommandSequence { issue, completion }
    }

    /// Bus cycles executed before the cell operation starts.
    pub fn issue_cycles(&self) -> &[BusCycleKind] {
        &self.issue
    }

    /// Bus cycles executed after the cell operation finishes.
    pub fn completion_cycles(&self) -> &[BusCycleKind] {
        &self.completion
    }

    fn count_commands(cycles: &[BusCycleKind]) -> u32 {
        cycles
            .iter()
            .filter(|c| matches!(c, BusCycleKind::Command(_)))
            .count() as u32
    }

    fn count_addresses(cycles: &[BusCycleKind]) -> u32 {
        cycles
            .iter()
            .map(|c| match c {
                BusCycleKind::Address { cycles } => *cycles,
                _ => 0,
            })
            .sum()
    }

    /// Number of command latch cycles in the issue phase.
    pub fn issue_command_cycles(&self) -> u32 {
        Self::count_commands(&self.issue)
    }

    /// Number of address latch cycles in the issue phase.
    pub fn issue_address_cycles(&self) -> u32 {
        Self::count_addresses(&self.issue)
    }

    /// Number of command latch cycles in the completion phase.
    pub fn completion_command_cycles(&self) -> u32 {
        Self::count_commands(&self.completion)
    }

    /// Number of address latch cycles in the completion phase.
    pub fn completion_address_cycles(&self) -> u32 {
        Self::count_addresses(&self.completion)
    }

    /// Total payload bytes transferred into the chip (program data).
    pub fn data_in_bytes(&self) -> u64 {
        self.issue
            .iter()
            .chain(self.completion.iter())
            .map(|c| match c {
                BusCycleKind::DataIn { bytes } => *bytes as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total payload bytes transferred out of the chip (read data).
    pub fn data_out_bytes(&self) -> u64 {
        self.issue
            .iter()
            .chain(self.completion.iter())
            .map(|c| match c {
                BusCycleKind::DataOut { bytes } => *bytes as u64,
                _ => 0,
            })
            .sum()
    }
}

/// The latch-cycle and payload totals of one bus phase, computed in closed
/// form.  The timing model runs on every transaction the simulator executes,
/// so it must not materialize the [`CommandSequence`] vectors on the hot path;
/// these counts are derived arithmetically from the op and request count and
/// pinned against the materialized sequence by a unit test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusPhaseCounts {
    /// Command plus address latch cycles in the phase.
    pub latch_cycles: u32,
    /// Payload bytes moved over the bus during the phase.
    pub payload_bytes: u64,
}

impl BusPhaseCounts {
    /// Closed-form issue-phase counts for `txn` (commands, addresses, and
    /// program data-in), equal to the materialized sequence's totals.
    pub fn issue_of(txn: &FlashTransaction) -> Self {
        let n = txn.requests().len() as u32;
        let page_bytes = txn.page_size() as u64;
        match txn.op() {
            // Per request: setup + confirm commands and a page address.
            FlashOp::Read => BusPhaseCounts {
                latch_cycles: n * (2 + ADDRESS_CYCLES_PAGE),
                payload_bytes: 0,
            },
            // Per request: setup + confirm commands, a page address, and the
            // page payload latched into the data register.
            FlashOp::Program => BusPhaseCounts {
                latch_cycles: n * (2 + ADDRESS_CYCLES_PAGE),
                payload_bytes: n as u64 * page_bytes,
            },
            // Per request: setup + confirm commands and a block address.
            FlashOp::Erase => BusPhaseCounts {
                latch_cycles: n * (2 + ADDRESS_CYCLES_BLOCK),
                payload_bytes: 0,
            },
        }
    }

    /// Closed-form completion-phase counts for `txn` (random-data-out
    /// streaming for reads, status polling for all ops), equal to the
    /// materialized sequence's totals.
    pub fn completion_of(txn: &FlashTransaction) -> Self {
        let n = txn.requests().len() as u32;
        let page_bytes = txn.page_size() as u64;
        match txn.op() {
            // Per request: random-data-out setup + confirm commands and a page
            // address, then the page streamed out; one final status read.
            FlashOp::Read => BusPhaseCounts {
                latch_cycles: n * (2 + ADDRESS_CYCLES_PAGE) + 1,
                payload_bytes: n as u64 * page_bytes,
            },
            // Status poll only.
            FlashOp::Program | FlashOp::Erase => BusPhaseCounts {
                latch_cycles: 1,
                payload_bytes: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::transaction::TransactionBuilder;

    fn txn(op: FlashOp, planes: &[(u32, u32)]) -> FlashTransaction {
        let g = FlashGeometry::paper_default();
        let mut b = TransactionBuilder::new(op, g.clone());
        for &(die, plane) in planes {
            b.try_add(g.page_addr(0, 0, die, plane, 1, 0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn opcodes_match_onfi_values() {
        assert_eq!(FlashCommand::ReadSetup.opcode(), 0x00);
        assert_eq!(FlashCommand::ReadConfirm.opcode(), 0x30);
        assert_eq!(FlashCommand::ProgramSetup.opcode(), 0x80);
        assert_eq!(FlashCommand::ProgramConfirm.opcode(), 0x10);
        assert_eq!(FlashCommand::EraseSetup.opcode(), 0x60);
        assert_eq!(FlashCommand::EraseConfirm.opcode(), 0xD0);
        assert_eq!(FlashCommand::Reset.opcode(), 0xFF);
        assert_eq!(FlashCommand::ReadStatus.to_string(), "70h");
    }

    #[test]
    fn single_read_sequence() {
        let seq = CommandSequence::for_transaction(&txn(FlashOp::Read, &[(0, 0)]));
        assert_eq!(seq.issue_command_cycles(), 2); // 00h + 30h
        assert_eq!(seq.issue_address_cycles(), ADDRESS_CYCLES_PAGE);
        assert_eq!(seq.data_in_bytes(), 0);
        assert_eq!(seq.data_out_bytes(), 2048);
        assert!(seq.completion_command_cycles() >= 3);
    }

    #[test]
    fn multiplane_read_uses_queue_confirms() {
        let seq = CommandSequence::for_transaction(&txn(FlashOp::Read, &[(0, 0), (0, 1), (1, 0)]));
        // 3 setups + 2 queue confirms + 1 final confirm
        assert_eq!(seq.issue_command_cycles(), 6);
        assert_eq!(seq.issue_address_cycles(), 3 * ADDRESS_CYCLES_PAGE);
        assert_eq!(seq.data_out_bytes(), 3 * 2048);
        let has_queue_confirm = seq.issue_cycles().iter().any(|c| {
            matches!(
                c,
                BusCycleKind::Command(FlashCommand::MultiPlaneReadConfirm)
            )
        });
        assert!(has_queue_confirm);
    }

    #[test]
    fn program_sequence_moves_data_in() {
        let seq = CommandSequence::for_transaction(&txn(FlashOp::Program, &[(0, 0), (1, 1)]));
        assert_eq!(seq.data_in_bytes(), 2 * 2048);
        assert_eq!(seq.data_out_bytes(), 0);
        // 2 setups + 1 queue + 1 confirm
        assert_eq!(seq.issue_command_cycles(), 4);
        let has_queue = seq
            .issue_cycles()
            .iter()
            .any(|c| matches!(c, BusCycleKind::Command(FlashCommand::ProgramQueue)));
        assert!(has_queue);
    }

    #[test]
    fn erase_sequence_has_no_payload() {
        let seq = CommandSequence::for_transaction(&txn(FlashOp::Erase, &[(0, 0), (1, 0)]));
        assert_eq!(seq.data_in_bytes(), 0);
        assert_eq!(seq.data_out_bytes(), 0);
        assert_eq!(seq.issue_address_cycles(), 2 * ADDRESS_CYCLES_BLOCK);
        assert_eq!(seq.issue_command_cycles(), 4);
    }

    #[test]
    fn completion_phase_of_program_is_status_only() {
        let seq = CommandSequence::for_transaction(&txn(FlashOp::Program, &[(0, 0)]));
        assert_eq!(seq.completion_command_cycles(), 1);
        assert_eq!(seq.completion_address_cycles(), 0);
    }

    /// The closed-form counts the timing hot path uses must equal the
    /// materialized command sequence, for every op and folding degree.
    #[test]
    fn closed_form_counts_match_the_materialized_sequence() {
        let shapes: &[&[(u32, u32)]] = &[
            &[(0, 0)],
            &[(0, 0), (0, 1)],
            &[(0, 0), (0, 1), (1, 0)],
            &[(0, 0), (0, 1), (1, 0), (1, 1)],
        ];
        for op in [FlashOp::Read, FlashOp::Program, FlashOp::Erase] {
            for planes in shapes {
                let txn = txn(op, planes);
                let seq = CommandSequence::for_transaction(&txn);
                let issue = BusPhaseCounts::issue_of(&txn);
                assert_eq!(
                    issue.latch_cycles,
                    seq.issue_command_cycles() + seq.issue_address_cycles(),
                    "{op:?} x{}: issue latch cycles",
                    planes.len(),
                );
                assert_eq!(issue.payload_bytes, seq.data_in_bytes());
                let completion = BusPhaseCounts::completion_of(&txn);
                assert_eq!(
                    completion.latch_cycles,
                    seq.completion_command_cycles() + seq.completion_address_cycles(),
                    "{op:?} x{}: completion latch cycles",
                    planes.len(),
                );
                assert_eq!(completion.payload_bytes, seq.data_out_bytes());
            }
        }
    }
}
