//! Die-level state: an independent memory island behind the shared chip interface.

use serde::{Deserialize, Serialize};
use sprinkler_sim::{Duration, SimTime};

use crate::plane::Plane;

/// A flash die: holds its planes and accounts its own busy (R/B asserted) time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Die {
    planes: Vec<Plane>,
    busy_total: Duration,
    operations: u64,
    ready_at: SimTime,
}

impl Die {
    /// Creates an idle die with `planes` planes.
    pub fn new(planes: usize) -> Self {
        Die {
            planes: (0..planes).map(|_| Plane::new()).collect(),
            busy_total: Duration::ZERO,
            operations: 0,
            ready_at: SimTime::ZERO,
        }
    }

    /// Number of planes in this die.
    pub fn plane_count(&self) -> usize {
        self.planes.len()
    }

    /// Read-only view of a plane.
    pub fn plane(&self, index: usize) -> &Plane {
        &self.planes[index]
    }

    /// Records activity of `plane_indices` planes of this die over the cell window
    /// `[start, end]`.  The die's R/B signal covers the whole window regardless of
    /// how many of its planes participate.
    pub fn record_activity(&mut self, plane_indices: &[u32], start: SimTime, end: SimTime) {
        self.record_window(start, end);
        for &p in plane_indices {
            self.record_plane(p, start, end);
        }
    }

    /// Records one die-level operation window (R/B asserted over `[start, end]`)
    /// without touching plane accounting.  Together with
    /// [`Die::record_plane`] this lets callers that already iterate their
    /// requests record activity without collecting a plane-index slice first.
    pub fn record_window(&mut self, start: SimTime, end: SimTime) {
        self.busy_total += end.saturating_since(start);
        self.operations += 1;
        self.ready_at = self.ready_at.max(end);
    }

    /// Records activity of a single plane over `[start, end]`.
    pub fn record_plane(&mut self, plane: u32, start: SimTime, end: SimTime) {
        self.planes[plane as usize].record_activity(start, end);
    }

    /// Total time the die's R/B signal was asserted.
    pub fn busy_time(&self) -> Duration {
        self.busy_total
    }

    /// Number of transactions that touched this die.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// When this die most recently became ready.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// Sum of plane busy time across this die's planes.
    pub fn plane_busy_time(&self) -> Duration {
        self.planes.iter().map(Plane::busy_time).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_die_has_planes() {
        let d = Die::new(4);
        assert_eq!(d.plane_count(), 4);
        assert_eq!(d.busy_time(), Duration::ZERO);
        assert_eq!(d.operations(), 0);
        assert_eq!(d.ready_at(), SimTime::ZERO);
    }

    #[test]
    fn activity_marks_only_selected_planes() {
        let mut d = Die::new(4);
        d.record_activity(&[0, 2], SimTime::from_nanos(0), SimTime::from_nanos(100));
        assert_eq!(d.busy_time(), Duration::from_nanos(100));
        assert_eq!(d.plane(0).busy_time(), Duration::from_nanos(100));
        assert_eq!(d.plane(1).busy_time(), Duration::ZERO);
        assert_eq!(d.plane(2).busy_time(), Duration::from_nanos(100));
        assert_eq!(d.plane_busy_time(), Duration::from_nanos(200));
        assert_eq!(d.ready_at(), SimTime::from_nanos(100));
        assert_eq!(d.operations(), 1);
    }

    #[test]
    fn ready_at_never_goes_backwards() {
        let mut d = Die::new(2);
        d.record_activity(&[0], SimTime::from_nanos(0), SimTime::from_nanos(500));
        d.record_activity(&[1], SimTime::from_nanos(100), SimTime::from_nanos(200));
        assert_eq!(d.ready_at(), SimTime::from_nanos(500));
    }
}
