//! Error types for the flash model.

use std::error::Error;
use std::fmt;

use crate::address::PhysicalPageAddr;

/// Errors reported by the NAND flash model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlashError {
    /// A physical address referenced a resource outside the configured geometry.
    AddressOutOfRange {
        /// The offending address.
        addr: PhysicalPageAddr,
        /// Which coordinate was out of range.
        field: &'static str,
    },
    /// A request could not be coalesced into a transaction (wrong chip, wrong
    /// operation, or a plane/die conflict).
    CoalesceConflict {
        /// Human readable reason for the rejection.
        reason: &'static str,
    },
    /// Attempted to build an empty transaction.
    EmptyTransaction,
    /// A program targeted a page out of the in-block sequential program order.
    ProgramOrderViolation {
        /// The offending address.
        addr: PhysicalPageAddr,
        /// The next page index the block expects to be programmed.
        expected_page: u32,
    },
    /// A program targeted a block whose pages are exhausted (needs erase first).
    BlockFull {
        /// The offending address.
        addr: PhysicalPageAddr,
    },
    /// A transaction was admitted to a chip that is still busy.
    ChipBusy {
        /// Channel index of the busy chip.
        channel: u32,
        /// Way (position within the channel) of the busy chip.
        way: u32,
    },
    /// A geometry parameter was zero or otherwise invalid.
    InvalidGeometry {
        /// Which parameter is invalid.
        field: &'static str,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::AddressOutOfRange { addr, field } => {
                write!(f, "address {addr} out of range in field {field}")
            }
            FlashError::CoalesceConflict { reason } => {
                write!(f, "cannot coalesce request into transaction: {reason}")
            }
            FlashError::EmptyTransaction => write!(f, "transaction contains no requests"),
            FlashError::ProgramOrderViolation {
                addr,
                expected_page,
            } => write!(
                f,
                "program order violation at {addr}: expected page {expected_page}"
            ),
            FlashError::BlockFull { addr } => {
                write!(f, "block at {addr} is fully programmed and needs an erase")
            }
            FlashError::ChipBusy { channel, way } => {
                write!(f, "chip (channel {channel}, way {way}) is busy")
            }
            FlashError::InvalidGeometry { field } => {
                write!(f, "invalid flash geometry: {field} must be non-zero")
            }
        }
    }
}

impl Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;

    #[test]
    fn errors_display_human_readable_text() {
        let geometry = FlashGeometry::small_test();
        let addr = geometry.page_addr(0, 0, 0, 0, 0, 0);
        let cases: Vec<FlashError> = vec![
            FlashError::AddressOutOfRange {
                addr,
                field: "plane",
            },
            FlashError::CoalesceConflict {
                reason: "different chip",
            },
            FlashError::EmptyTransaction,
            FlashError::ProgramOrderViolation {
                addr,
                expected_page: 3,
            },
            FlashError::BlockFull { addr },
            FlashError::ChipBusy { channel: 1, way: 2 },
            FlashError::InvalidGeometry { field: "channels" },
        ];
        for err in cases {
            let text = err.to_string();
            assert!(!text.is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<FlashError>();
    }
}
