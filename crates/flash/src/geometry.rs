//! SSD / NAND flash geometry description.

use serde::{Deserialize, Serialize};

use crate::address::{ChipLocation, PhysicalPageAddr, Ppn};
use crate::error::FlashError;

/// Describes the physical layout of an SSD's flash array: channels, chips per
/// channel (ways), dies per chip, planes per die, blocks per plane, pages per block,
/// and the page size in bytes.
///
/// The paper's evaluation platform (§5.1) uses ONFI 2.x channels, chips with two
/// dies and four planes, 8,192 blocks per die (2,048 per plane), 128 pages per
/// block, and 2 KB pages; the chip count varies from 64 (8 channels) to 1,024
/// (32 channels).  [`FlashGeometry::paper_default`] reproduces the 64-chip baseline.
///
/// # Example
///
/// ```
/// use sprinkler_flash::FlashGeometry;
///
/// let g = FlashGeometry::paper_default();
/// assert_eq!(g.total_chips(), 64);
/// assert_eq!(g.dies_per_chip, 2);
/// assert_eq!(g.planes_per_die, 4);
/// assert_eq!(g.page_size, 2048);
///
/// let big = g.with_chip_count(1024);
/// assert_eq!(big.total_chips(), 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Number of independent channels (shared data paths).
    pub channels: usize,
    /// Chips attached to each channel ("ways").
    pub chips_per_channel: usize,
    /// Dies within a chip (independent memory islands behind one interface).
    pub dies_per_chip: usize,
    /// Planes within a die (share the wordline / voltage drivers).
    pub planes_per_die: usize,
    /// Blocks within a plane (the erase unit).
    pub blocks_per_plane: usize,
    /// Pages within a block (the program unit).
    pub pages_per_block: usize,
    /// Page size in bytes (the atomic flash I/O unit of the paper).
    pub page_size: usize,
}

impl Default for FlashGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl FlashGeometry {
    /// The 64-chip configuration used as the paper's baseline platform: 8 channels
    /// × 8 chips, 2 dies × 4 planes per chip, 2,048 blocks per plane (8,192 per
    /// die), 128 pages per block, 2 KB pages.
    pub fn paper_default() -> Self {
        FlashGeometry {
            channels: 8,
            chips_per_channel: 8,
            dies_per_chip: 2,
            planes_per_die: 4,
            blocks_per_plane: 2048,
            pages_per_block: 128,
            page_size: 2048,
        }
    }

    /// A deliberately tiny geometry for unit tests: 2 channels × 2 chips, 2 dies ×
    /// 2 planes, 8 blocks per plane, 8 pages per block, 2 KB pages.
    pub fn small_test() -> Self {
        FlashGeometry {
            channels: 2,
            chips_per_channel: 2,
            dies_per_chip: 2,
            planes_per_die: 2,
            blocks_per_plane: 8,
            pages_per_block: 8,
            page_size: 2048,
        }
    }

    /// Returns a copy with a different channel count.
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Returns a copy with a different number of chips per channel.
    pub fn with_chips_per_channel(mut self, ways: usize) -> Self {
        self.chips_per_channel = ways;
        self
    }

    /// Returns a copy with a different number of blocks per plane.  Experiments use
    /// this to keep simulated capacity (and GC working-set size) tractable.
    pub fn with_blocks_per_plane(mut self, blocks: usize) -> Self {
        self.blocks_per_plane = blocks;
        self
    }

    /// Returns a copy reconfigured to hold `chips` total flash chips, spreading
    /// them over channels of at most 32 chips each, mirroring the paper's scaling
    /// from 64 chips (8 channels) to 1,024 chips (32 channels).
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero.
    pub fn with_chip_count(mut self, chips: usize) -> Self {
        assert!(chips > 0, "chip count must be non-zero");
        // Mirror the paper: channel count grows with the chip population, with
        // 8..=32 chips attached per channel.
        let mut channels = 8usize;
        while chips / channels > 32 {
            channels *= 2;
        }
        while channels > 1 && chips < channels {
            channels /= 2;
        }
        self.channels = channels;
        self.chips_per_channel = chips.div_ceil(channels);
        self
    }

    /// Validates the geometry, returning an error naming the first zero field.
    pub fn validate(&self) -> Result<(), FlashError> {
        let fields = [
            ("channels", self.channels),
            ("chips_per_channel", self.chips_per_channel),
            ("dies_per_chip", self.dies_per_chip),
            ("planes_per_die", self.planes_per_die),
            ("blocks_per_plane", self.blocks_per_plane),
            ("pages_per_block", self.pages_per_block),
            ("page_size", self.page_size),
        ];
        for (name, value) in fields {
            if value == 0 {
                return Err(FlashError::InvalidGeometry { field: name });
            }
        }
        Ok(())
    }

    /// Total number of flash chips in the SSD.
    pub fn total_chips(&self) -> usize {
        self.channels * self.chips_per_channel
    }

    /// Total number of dies in the SSD.
    pub fn total_dies(&self) -> usize {
        self.total_chips() * self.dies_per_chip
    }

    /// Total number of planes in the SSD.
    pub fn total_planes(&self) -> usize {
        self.total_dies() * self.planes_per_die
    }

    /// Pages per plane.
    pub fn pages_per_plane(&self) -> usize {
        self.blocks_per_plane * self.pages_per_block
    }

    /// Pages per die.
    pub fn pages_per_die(&self) -> usize {
        self.pages_per_plane() * self.planes_per_die
    }

    /// Pages per chip.
    pub fn pages_per_chip(&self) -> usize {
        self.pages_per_die() * self.dies_per_chip
    }

    /// Total number of physical pages in the SSD.
    pub fn total_pages(&self) -> usize {
        self.pages_per_chip() * self.total_chips()
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() as u64 * self.page_size as u64
    }

    /// Flat chip index for a `(channel, way)` pair.
    pub fn chip_index(&self, channel: u32, way: u32) -> usize {
        channel as usize * self.chips_per_channel + way as usize
    }

    /// The `(channel, way)` location of a flat chip index.
    pub fn chip_location(&self, chip_index: usize) -> ChipLocation {
        ChipLocation {
            channel: (chip_index / self.chips_per_channel) as u32,
            way: (chip_index % self.chips_per_channel) as u32,
        }
    }

    /// Convenience constructor for a [`PhysicalPageAddr`] in this geometry.
    pub fn page_addr(
        &self,
        channel: u32,
        way: u32,
        die: u32,
        plane: u32,
        block: u32,
        page: u32,
    ) -> PhysicalPageAddr {
        PhysicalPageAddr {
            channel,
            way,
            die,
            plane,
            block,
            page,
        }
    }

    /// Checks that an address lies within this geometry.
    pub fn check_addr(&self, addr: PhysicalPageAddr) -> Result<(), FlashError> {
        let checks = [
            ("channel", addr.channel as usize, self.channels),
            ("way", addr.way as usize, self.chips_per_channel),
            ("die", addr.die as usize, self.dies_per_chip),
            ("plane", addr.plane as usize, self.planes_per_die),
            ("block", addr.block as usize, self.blocks_per_plane),
            ("page", addr.page as usize, self.pages_per_block),
        ];
        for (field, value, bound) in checks {
            if value >= bound {
                return Err(FlashError::AddressOutOfRange { addr, field });
            }
        }
        Ok(())
    }

    /// Converts a physical page address to a flat physical page number.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the address is out of range; use
    /// [`FlashGeometry::check_addr`] to validate first.
    pub fn ppn_of(&self, addr: PhysicalPageAddr) -> Ppn {
        debug_assert!(
            self.check_addr(addr).is_ok(),
            "address out of range: {addr}"
        );
        let chip = self.chip_index(addr.channel, addr.way) as u64;
        let within_chip = ((addr.die as u64 * self.planes_per_die as u64 + addr.plane as u64)
            * self.blocks_per_plane as u64
            + addr.block as u64)
            * self.pages_per_block as u64
            + addr.page as u64;
        Ppn::new(chip * self.pages_per_chip() as u64 + within_chip)
    }

    /// Converts a flat physical page number back to a structured address.
    pub fn addr_of(&self, ppn: Ppn) -> PhysicalPageAddr {
        let pages_per_chip = self.pages_per_chip() as u64;
        let chip = ppn.value() / pages_per_chip;
        let mut rest = ppn.value() % pages_per_chip;
        let page = (rest % self.pages_per_block as u64) as u32;
        rest /= self.pages_per_block as u64;
        let block = (rest % self.blocks_per_plane as u64) as u32;
        rest /= self.blocks_per_plane as u64;
        let plane = (rest % self.planes_per_die as u64) as u32;
        let die = (rest / self.planes_per_die as u64) as u32;
        let location = self.chip_location(chip as usize);
        PhysicalPageAddr {
            channel: location.channel,
            way: location.way,
            die,
            plane,
            block,
            page,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_published_configuration() {
        let g = FlashGeometry::paper_default();
        assert_eq!(g.channels, 8);
        assert_eq!(g.total_chips(), 64);
        assert_eq!(g.dies_per_chip, 2);
        assert_eq!(g.planes_per_die, 4);
        // 8,192 blocks per die = 2,048 per plane × 4 planes.
        assert_eq!(g.blocks_per_plane * g.planes_per_die, 8192);
        assert_eq!(g.pages_per_block, 128);
        assert_eq!(g.page_size, 2048);
        g.validate().unwrap();
    }

    #[test]
    fn derived_counts_are_consistent() {
        let g = FlashGeometry::small_test();
        assert_eq!(g.total_chips(), 4);
        assert_eq!(g.total_dies(), 8);
        assert_eq!(g.total_planes(), 16);
        assert_eq!(g.pages_per_plane(), 64);
        assert_eq!(g.pages_per_die(), 128);
        assert_eq!(g.pages_per_chip(), 256);
        assert_eq!(g.total_pages(), 1024);
        assert_eq!(g.capacity_bytes(), 1024 * 2048);
    }

    #[test]
    fn with_chip_count_spreads_over_channels() {
        let g = FlashGeometry::paper_default();
        for chips in [64usize, 128, 256, 512, 1024] {
            let scaled = g.clone().with_chip_count(chips);
            assert_eq!(scaled.total_chips(), chips, "chips={chips}");
            assert!(scaled.chips_per_channel <= 32);
            assert!(scaled.channels >= 8);
        }
        let tiny = g.with_chip_count(4);
        assert_eq!(tiny.total_chips(), 4);
    }

    #[test]
    fn builder_style_modifiers() {
        let g = FlashGeometry::paper_default()
            .with_channels(16)
            .with_chips_per_channel(4)
            .with_blocks_per_plane(64);
        assert_eq!(g.channels, 16);
        assert_eq!(g.chips_per_channel, 4);
        assert_eq!(g.blocks_per_plane, 64);
        assert_eq!(g.total_chips(), 64);
    }

    #[test]
    fn validate_rejects_zero_fields() {
        let mut g = FlashGeometry::small_test();
        g.planes_per_die = 0;
        assert_eq!(
            g.validate(),
            Err(FlashError::InvalidGeometry {
                field: "planes_per_die"
            })
        );
    }

    #[test]
    fn chip_index_roundtrip() {
        let g = FlashGeometry::paper_default();
        for chip in 0..g.total_chips() {
            let loc = g.chip_location(chip);
            assert_eq!(g.chip_index(loc.channel, loc.way), chip);
        }
    }

    #[test]
    fn check_addr_bounds() {
        let g = FlashGeometry::small_test();
        assert!(g.check_addr(g.page_addr(0, 0, 0, 0, 0, 0)).is_ok());
        assert!(g.check_addr(g.page_addr(1, 1, 1, 1, 7, 7)).is_ok());
        let bad = g.page_addr(0, 0, 2, 0, 0, 0);
        assert!(matches!(
            g.check_addr(bad),
            Err(FlashError::AddressOutOfRange { field: "die", .. })
        ));
        let bad = g.page_addr(2, 0, 0, 0, 0, 0);
        assert!(matches!(
            g.check_addr(bad),
            Err(FlashError::AddressOutOfRange {
                field: "channel",
                ..
            })
        ));
    }

    #[test]
    fn ppn_roundtrip_covers_all_pages() {
        let g = FlashGeometry::small_test();
        let mut seen = std::collections::HashSet::new();
        for channel in 0..g.channels as u32 {
            for way in 0..g.chips_per_channel as u32 {
                for die in 0..g.dies_per_chip as u32 {
                    for plane in 0..g.planes_per_die as u32 {
                        for block in 0..g.blocks_per_plane as u32 {
                            for page in 0..g.pages_per_block as u32 {
                                let addr = g.page_addr(channel, way, die, plane, block, page);
                                let ppn = g.ppn_of(addr);
                                assert!(seen.insert(ppn), "duplicate ppn for {addr}");
                                assert_eq!(g.addr_of(ppn), addr);
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), g.total_pages());
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(FlashGeometry::default(), FlashGeometry::paper_default());
    }
}
