//! NAND flash microarchitecture model for the Sprinkler reproduction.
//!
//! This crate models everything below the SSD flash controller boundary, following
//! the description in §2.2 of the paper and the ONFI 2.x interface conventions:
//!
//! * [`FlashGeometry`] — how many channels, chips, dies, planes, blocks, and pages
//!   an SSD exposes (the paper's platform uses 2 dies × 4 planes per chip, 8,192
//!   blocks per die, 128 × 2 KB pages per block).
//! * [`PhysicalPageAddr`] / [`Ppn`] / [`Lpn`] — physical and logical addressing.
//! * [`FlashTiming`] — ONFI bus modes, command/address cycle accounting, the 20 µs
//!   read latency and the 200–2200 µs MLC program-latency variation, and erase time.
//! * [`FlashCommand`] / [`CommandSequence`] — the command/address/data bus cycles a
//!   flash controller must issue for every operation.
//! * [`FlashTransaction`] / [`ParallelismLevel`] — a coalesced group of page-level
//!   requests executed as a single chip operation, classified into NON-PAL, PAL1
//!   (plane sharing), PAL2 (die interleaving), or PAL3 (both).
//! * [`Chip`] / [`Die`] / [`Plane`] — the chip state machine (R/B signalling, busy
//!   windows, per-resource busy accounting used for intra-chip idleness metrics).
//! * [`CellArray`] — program/erase ordering ground truth (write pointers, erase
//!   counts) used to validate FTL behaviour.
//!
//! # Example
//!
//! ```
//! use sprinkler_flash::{FlashGeometry, FlashTiming, FlashOp, TransactionBuilder};
//!
//! let geometry = FlashGeometry::paper_default();
//! let timing = FlashTiming::paper_default();
//!
//! // Coalesce two requests on different dies of chip (0, 0) into one transaction.
//! let mut builder = TransactionBuilder::new(FlashOp::Read, geometry.clone());
//! builder.try_add(geometry.page_addr(0, 0, 0, 0, 10, 0)).unwrap();
//! builder.try_add(geometry.page_addr(0, 0, 1, 0, 10, 0)).unwrap();
//! let txn = builder.build().unwrap();
//!
//! assert_eq!(txn.requests().len(), 2);
//! let cell = timing.cell_time(&txn);
//! assert_eq!(cell, timing.read_latency());          // dies overlap
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod cell;
pub mod chip;
pub mod command;
pub mod die;
pub mod error;
pub mod geometry;
pub mod plane;
pub mod timing;
pub mod transaction;

pub use address::{ChipLocation, Lpn, PhysicalPageAddr, Ppn};
pub use cell::CellArray;
pub use chip::{Chip, ChipPhase};
pub use command::{BusCycleKind, BusPhaseCounts, CommandSequence, FlashCommand};
pub use die::Die;
pub use error::FlashError;
pub use geometry::FlashGeometry;
pub use plane::Plane;
pub use timing::{FlashTiming, OnfiMode, ProgramLatencyModel};
pub use transaction::{FlashOp, FlashTransaction, ParallelismLevel, TransactionBuilder};
