//! Plane-level state: the memory array sharing wordline and voltage drivers.

use serde::{Deserialize, Serialize};
use sprinkler_sim::{Duration, SimTime};

/// A single flash plane.
///
/// A plane can hold one page in its data register at a time; the chip-level state
/// machine ([`crate::Chip`]) enforces that only one transaction occupies the chip,
/// so the plane only needs to account its own busy time (used for the intra-chip
/// idleness metric) and how many operations it has served.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plane {
    busy_total: Duration,
    operations: u64,
    last_active_end: SimTime,
}

impl Plane {
    /// Creates an idle plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that this plane was active for the cell window `[start, end]`.
    pub fn record_activity(&mut self, start: SimTime, end: SimTime) {
        self.busy_total += end.saturating_since(start);
        self.operations += 1;
        self.last_active_end = self.last_active_end.max(end);
    }

    /// Total time this plane spent executing cell operations.
    pub fn busy_time(&self) -> Duration {
        self.busy_total
    }

    /// Number of page/block operations served.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// The end of the most recent activity window.
    pub fn last_active_end(&self) -> SimTime {
        self.last_active_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_plane_is_idle() {
        let p = Plane::new();
        assert_eq!(p.busy_time(), Duration::ZERO);
        assert_eq!(p.operations(), 0);
        assert_eq!(p.last_active_end(), SimTime::ZERO);
    }

    #[test]
    fn activity_accumulates() {
        let mut p = Plane::new();
        p.record_activity(SimTime::from_nanos(100), SimTime::from_nanos(300));
        p.record_activity(SimTime::from_nanos(500), SimTime::from_nanos(600));
        assert_eq!(p.busy_time(), Duration::from_nanos(300));
        assert_eq!(p.operations(), 2);
        assert_eq!(p.last_active_end(), SimTime::from_nanos(600));
    }

    #[test]
    fn reversed_window_contributes_nothing() {
        let mut p = Plane::new();
        p.record_activity(SimTime::from_nanos(300), SimTime::from_nanos(100));
        assert_eq!(p.busy_time(), Duration::ZERO);
        assert_eq!(p.operations(), 1);
    }
}
