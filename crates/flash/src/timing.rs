//! Flash timing model: ONFI bus modes, command/address cycle costs, and cell
//! (array) latencies including the MLC program-latency variation the paper models.
//!
//! The paper's configuration (§5.1): ONFI 2.x channels, 20 µs reads, programs
//! varying from 200 µs (fast page) to 2,200 µs (slow page) depending on the page
//! address within the block, and a conventional block erase in the millisecond
//! range.

use serde::{Deserialize, Serialize};
use sprinkler_sim::Duration;

use crate::command::BusPhaseCounts;
use crate::transaction::{FlashOp, FlashTransaction};

/// ONFI interface speed grades.  The paper notes vendors ship ONFI 2.x rather than
/// the 400 MHz interface even for PCIe SSDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OnfiMode {
    /// Legacy asynchronous SDR interface (~33 MB/s).
    Sdr33,
    /// ONFI 2.x NV-DDR at 133 MT/s.
    Ddr133,
    /// ONFI 2.x NV-DDR at 166 MT/s (the default used in the evaluation).
    Ddr166,
    /// ONFI 2.x NV-DDR at 200 MT/s.
    Ddr200,
}

impl OnfiMode {
    /// Interface throughput in bytes per second (8-bit bus).
    pub fn bytes_per_sec(self) -> u64 {
        match self {
            OnfiMode::Sdr33 => 33_000_000,
            OnfiMode::Ddr133 => 133_000_000,
            OnfiMode::Ddr166 => 166_000_000,
            OnfiMode::Ddr200 => 200_000_000,
        }
    }

    /// Duration of a single command or address latch cycle on this interface.
    pub fn latch_cycle(self) -> Duration {
        match self {
            OnfiMode::Sdr33 => Duration::from_nanos(100),
            OnfiMode::Ddr133 | OnfiMode::Ddr166 | OnfiMode::Ddr200 => Duration::from_nanos(25),
        }
    }

    /// Time to stream `bytes` of payload over the interface.
    pub fn transfer_time(self, bytes: u64) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        let ns = bytes.saturating_mul(1_000_000_000) / self.bytes_per_sec();
        Duration::from_nanos(ns.max(1))
    }
}

/// How page program latency is assigned within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgramLatencyModel {
    /// Every page programs in the same time (SLC-like behaviour).
    Uniform,
    /// MLC fast/slow page pairing: even page offsets are fast (LSB) pages, odd page
    /// offsets are slow (MSB) pages, reproducing the 200–2,200 µs spread.
    MlcPaired,
}

/// The complete timing description of the simulated flash package.
///
/// # Example
///
/// ```
/// use sprinkler_flash::{FlashTiming, OnfiMode};
/// use sprinkler_sim::Duration;
///
/// let t = FlashTiming::paper_default();
/// assert_eq!(t.read_latency(), Duration::from_micros(20));
/// assert_eq!(t.program_latency(0), Duration::from_micros(200));   // fast page
/// assert_eq!(t.program_latency(1), Duration::from_micros(2200));  // slow page
/// assert!(t.bus_mode() == OnfiMode::Ddr166);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashTiming {
    bus_mode: OnfiMode,
    read_latency: Duration,
    program_fast: Duration,
    program_slow: Duration,
    program_model: ProgramLatencyModel,
    erase_latency: Duration,
    /// Fixed controller-side overhead to decide a transaction type before the
    /// execution sequence starts (the "transaction type decision time" of §2.2).
    decision_overhead: Duration,
}

impl Default for FlashTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl FlashTiming {
    /// Timing used throughout the paper's evaluation: ONFI 2.x at 166 MT/s, 20 µs
    /// reads, 200–2,200 µs MLC programs, 1.5 ms erases.
    pub fn paper_default() -> Self {
        FlashTiming {
            bus_mode: OnfiMode::Ddr166,
            read_latency: Duration::from_micros(20),
            program_fast: Duration::from_micros(200),
            program_slow: Duration::from_micros(2200),
            program_model: ProgramLatencyModel::MlcPaired,
            erase_latency: Duration::from_micros(1500),
            decision_overhead: Duration::from_nanos(200),
        }
    }

    /// A uniform-latency variant useful for analytical tests (program latency fixed
    /// at the fast-page value).
    pub fn uniform() -> Self {
        FlashTiming {
            program_model: ProgramLatencyModel::Uniform,
            ..Self::paper_default()
        }
    }

    /// Returns a copy using a different ONFI interface speed.
    pub fn with_bus_mode(mut self, mode: OnfiMode) -> Self {
        self.bus_mode = mode;
        self
    }

    /// Returns a copy with different program latencies.
    pub fn with_program_latencies(mut self, fast: Duration, slow: Duration) -> Self {
        self.program_fast = fast;
        self.program_slow = slow;
        self
    }

    /// Returns a copy with a different read latency.
    pub fn with_read_latency(mut self, read: Duration) -> Self {
        self.read_latency = read;
        self
    }

    /// Returns a copy with a different erase latency.
    pub fn with_erase_latency(mut self, erase: Duration) -> Self {
        self.erase_latency = erase;
        self
    }

    /// Returns a copy with a different program latency model.
    pub fn with_program_model(mut self, model: ProgramLatencyModel) -> Self {
        self.program_model = model;
        self
    }

    /// The configured ONFI interface mode.
    pub fn bus_mode(&self) -> OnfiMode {
        self.bus_mode
    }

    /// Cell read latency (array → data register).
    pub fn read_latency(&self) -> Duration {
        self.read_latency
    }

    /// Block erase latency.
    pub fn erase_latency(&self) -> Duration {
        self.erase_latency
    }

    /// Controller-side transaction type decision overhead.
    pub fn decision_overhead(&self) -> Duration {
        self.decision_overhead
    }

    /// Program latency for a page at `page_offset` within its block.
    pub fn program_latency(&self, page_offset: u32) -> Duration {
        match self.program_model {
            ProgramLatencyModel::Uniform => self.program_fast,
            ProgramLatencyModel::MlcPaired => {
                if page_offset.is_multiple_of(2) {
                    self.program_fast
                } else {
                    self.program_slow
                }
            }
        }
    }

    /// Time for the bus (issue) phase of a transaction: command and address latch
    /// cycles plus program payload transfer into the chip.  Uses the
    /// closed-form [`BusPhaseCounts`] — this runs once per transaction on the
    /// simulator's hot path and must not allocate.
    pub fn issue_bus_time(&self, txn: &FlashTransaction) -> Duration {
        let counts = BusPhaseCounts::issue_of(txn);
        self.cycles_time(counts.latch_cycles, counts.payload_bytes) + self.decision_overhead
    }

    /// Time for the completion phase on the bus: read payload transfer out of the
    /// chip plus status polling.  Closed-form, alloc-free (see
    /// [`Self::issue_bus_time`]).
    pub fn completion_bus_time(&self, txn: &FlashTransaction) -> Duration {
        let counts = BusPhaseCounts::completion_of(txn);
        self.cycles_time(counts.latch_cycles, counts.payload_bytes)
    }

    /// Cell-array time of the transaction.  Requests on different dies/planes
    /// overlap, so the transaction's array time is the *maximum* of its members'
    /// latencies (this is exactly why die interleaving and plane sharing pay off).
    pub fn cell_time(&self, txn: &FlashTransaction) -> Duration {
        txn.requests()
            .iter()
            .map(|r| match txn.op() {
                FlashOp::Read => self.read_latency,
                FlashOp::Program => self.program_latency(r.page),
                FlashOp::Erase => self.erase_latency,
            })
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// The cell time the same requests would need if executed as individual,
    /// serialized transactions (used to quantify FLP savings).
    pub fn serialized_cell_time(&self, txn: &FlashTransaction) -> Duration {
        txn.requests()
            .iter()
            .map(|r| match txn.op() {
                FlashOp::Read => self.read_latency,
                FlashOp::Program => self.program_latency(r.page),
                FlashOp::Erase => self.erase_latency,
            })
            .sum()
    }

    /// End-to-end service time of a transaction when the chip and channel are both
    /// idle: issue bus phase + cell phase + completion bus phase.
    pub fn unloaded_service_time(&self, txn: &FlashTransaction) -> Duration {
        self.issue_bus_time(txn) + self.cell_time(txn) + self.completion_bus_time(txn)
    }

    /// Raw payload transfer time for `bytes` on this bus.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.bus_mode.transfer_time(bytes)
    }

    fn cycles_time(&self, latch_cycles: u32, payload_bytes: u64) -> Duration {
        self.bus_mode.latch_cycle() * latch_cycles as u64
            + self.bus_mode.transfer_time(payload_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::transaction::TransactionBuilder;

    fn read_txn(planes: &[(u32, u32)]) -> FlashTransaction {
        let g = FlashGeometry::paper_default();
        let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
        for &(die, plane) in planes {
            b.try_add(g.page_addr(0, 0, die, plane, 1, 0)).unwrap();
        }
        b.build().unwrap()
    }

    fn program_txn(pages: &[(u32, u32, u32)]) -> FlashTransaction {
        let g = FlashGeometry::paper_default();
        let mut b = TransactionBuilder::new(FlashOp::Program, g.clone());
        for &(die, plane, page) in pages {
            b.try_add(g.page_addr(0, 0, die, plane, 1, page)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn onfi_modes_have_sane_rates() {
        assert!(OnfiMode::Sdr33.bytes_per_sec() < OnfiMode::Ddr133.bytes_per_sec());
        assert!(OnfiMode::Ddr133.bytes_per_sec() < OnfiMode::Ddr166.bytes_per_sec());
        assert!(OnfiMode::Ddr166.bytes_per_sec() < OnfiMode::Ddr200.bytes_per_sec());
        assert_eq!(OnfiMode::Ddr166.transfer_time(0), Duration::ZERO);
        // 2 KB page at 166 MB/s is roughly 12.3 us.
        let t = OnfiMode::Ddr166.transfer_time(2048);
        assert!(
            t > Duration::from_micros(11) && t < Duration::from_micros(14),
            "{t}"
        );
    }

    #[test]
    fn paper_default_matches_published_latencies() {
        let t = FlashTiming::paper_default();
        assert_eq!(t.read_latency(), Duration::from_micros(20));
        assert_eq!(t.program_latency(0), Duration::from_micros(200));
        assert_eq!(t.program_latency(3), Duration::from_micros(2200));
        assert_eq!(t.erase_latency(), Duration::from_micros(1500));
        assert_eq!(t.bus_mode(), OnfiMode::Ddr166);
    }

    #[test]
    fn uniform_model_ignores_page_offset() {
        let t = FlashTiming::uniform();
        assert_eq!(t.program_latency(0), t.program_latency(1));
    }

    #[test]
    fn builder_style_modifiers() {
        let t = FlashTiming::paper_default()
            .with_bus_mode(OnfiMode::Ddr200)
            .with_read_latency(Duration::from_micros(25))
            .with_erase_latency(Duration::from_micros(2000))
            .with_program_latencies(Duration::from_micros(300), Duration::from_micros(900))
            .with_program_model(ProgramLatencyModel::Uniform);
        assert_eq!(t.bus_mode(), OnfiMode::Ddr200);
        assert_eq!(t.read_latency(), Duration::from_micros(25));
        assert_eq!(t.erase_latency(), Duration::from_micros(2000));
        assert_eq!(t.program_latency(7), Duration::from_micros(300));
    }

    #[test]
    fn cell_time_overlaps_across_planes_and_dies() {
        let t = FlashTiming::paper_default();
        let single = read_txn(&[(0, 0)]);
        let quad = read_txn(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(t.cell_time(&single), Duration::from_micros(20));
        assert_eq!(t.cell_time(&quad), Duration::from_micros(20));
        assert_eq!(t.serialized_cell_time(&quad), Duration::from_micros(80));
    }

    #[test]
    fn program_cell_time_takes_slowest_page() {
        let t = FlashTiming::paper_default();
        let fast_only = program_txn(&[(0, 0, 0), (0, 1, 2)]);
        let mixed = program_txn(&[(0, 0, 0), (1, 0, 3)]);
        assert_eq!(t.cell_time(&fast_only), Duration::from_micros(200));
        assert_eq!(t.cell_time(&mixed), Duration::from_micros(2200));
    }

    #[test]
    fn issue_bus_time_scales_with_requests_and_payload() {
        let t = FlashTiming::paper_default();
        let one = read_txn(&[(0, 0)]);
        let two = read_txn(&[(0, 0), (1, 0)]);
        assert!(t.issue_bus_time(&two) > t.issue_bus_time(&one));

        let p_one = program_txn(&[(0, 0, 0)]);
        let p_two = program_txn(&[(0, 0, 0), (1, 0, 0)]);
        // Program issue phase carries page payload: roughly doubles.
        let t1 = t.issue_bus_time(&p_one);
        let t2 = t.issue_bus_time(&p_two);
        assert!(t2 > t1 + t.transfer_time(2048) - Duration::from_micros(1));
    }

    #[test]
    fn read_completion_carries_data_out() {
        let t = FlashTiming::paper_default();
        let one = read_txn(&[(0, 0)]);
        let completion = t.completion_bus_time(&one);
        assert!(completion >= t.transfer_time(2048));
        // Programs only poll status on completion.
        let p = program_txn(&[(0, 0, 0)]);
        assert!(t.completion_bus_time(&p) < Duration::from_micros(1));
    }

    #[test]
    fn unloaded_service_time_sums_phases() {
        let t = FlashTiming::paper_default();
        let txn = read_txn(&[(0, 0), (0, 1)]);
        let total = t.unloaded_service_time(&txn);
        assert_eq!(
            total,
            t.issue_bus_time(&txn) + t.cell_time(&txn) + t.completion_bus_time(&txn)
        );
    }

    #[test]
    fn transfer_time_is_monotonic_in_bytes() {
        let t = FlashTiming::paper_default();
        assert!(t.transfer_time(4096) > t.transfer_time(2048));
        assert_eq!(t.transfer_time(0), Duration::ZERO);
    }
}
