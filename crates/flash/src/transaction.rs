//! Flash transactions and flash-level parallelism (FLP) classification.
//!
//! A *flash transaction* is the unit of work a flash controller executes on a chip:
//! one or more page-level requests that share the chip's interface and are executed
//! with a single command/timing sequence (§2.2 of the paper).  The degree of
//! parallelism a transaction enjoys is classified as:
//!
//! * `NonPal` — a single page request, no flash-level parallelism,
//! * `Pal1` — plane sharing (multiple planes of one die),
//! * `Pal2` — die interleaving (multiple dies, one plane each),
//! * `Pal3` — die interleaving combined with plane sharing.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::address::{ChipLocation, PhysicalPageAddr};
use crate::error::FlashError;
use crate::geometry::FlashGeometry;

/// The operation a flash transaction performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashOp {
    /// Page read (cell array → data register → bus).
    Read,
    /// Page program (bus → data register → cell array).
    Program,
    /// Block erase.
    Erase,
}

impl FlashOp {
    /// True for operations that move page payload over the bus.
    pub fn transfers_data(self) -> bool {
        matches!(self, FlashOp::Read | FlashOp::Program)
    }
}

impl fmt::Display for FlashOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlashOp::Read => "read",
            FlashOp::Program => "program",
            FlashOp::Erase => "erase",
        };
        f.write_str(s)
    }
}

/// Flash-level parallelism classification of a transaction (Fig 14 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ParallelismLevel {
    /// Single request: served only by system-level parallelism.
    NonPal,
    /// Plane sharing within one die.
    Pal1,
    /// Die interleaving, one plane per die.
    Pal2,
    /// Die interleaving combined with plane sharing.
    Pal3,
}

impl ParallelismLevel {
    /// All levels in ascending order of parallelism.
    pub const ALL: [ParallelismLevel; 4] = [
        ParallelismLevel::NonPal,
        ParallelismLevel::Pal1,
        ParallelismLevel::Pal2,
        ParallelismLevel::Pal3,
    ];

    /// Short label used by the experiment harness ("NON-PAL", "PAL1", ...).
    pub fn label(self) -> &'static str {
        match self {
            ParallelismLevel::NonPal => "NON-PAL",
            ParallelismLevel::Pal1 => "PAL1",
            ParallelismLevel::Pal2 => "PAL2",
            ParallelismLevel::Pal3 => "PAL3",
        }
    }
}

impl fmt::Display for ParallelismLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A coalesced group of page-level requests executed as a single chip operation.
///
/// All requests share one chip and one [`FlashOp`]; the coalescing rules (which
/// combinations of dies/planes are legal) are enforced by [`TransactionBuilder`].
///
/// # Example
///
/// ```
/// use sprinkler_flash::{FlashGeometry, FlashOp, ParallelismLevel, TransactionBuilder};
///
/// let g = FlashGeometry::paper_default();
/// let mut b = TransactionBuilder::new(FlashOp::Program, g.clone());
/// b.try_add(g.page_addr(0, 0, 0, 0, 5, 0)).unwrap();
/// b.try_add(g.page_addr(0, 0, 0, 1, 9, 0)).unwrap();
/// b.try_add(g.page_addr(0, 0, 1, 0, 2, 0)).unwrap();
/// b.try_add(g.page_addr(0, 0, 1, 2, 4, 0)).unwrap();
/// let txn = b.build().unwrap();
/// assert_eq!(txn.parallelism(), ParallelismLevel::Pal3);
/// assert_eq!(txn.active_dies(), 2);
/// assert_eq!(txn.active_planes(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashTransaction {
    op: FlashOp,
    chip: ChipLocation,
    requests: Vec<PhysicalPageAddr>,
    page_size: usize,
}

impl FlashTransaction {
    /// The operation type.
    pub fn op(&self) -> FlashOp {
        self.op
    }

    /// The chip the transaction executes on.
    pub fn chip(&self) -> ChipLocation {
        self.chip
    }

    /// The coalesced page requests.
    pub fn requests(&self) -> &[PhysicalPageAddr] {
        &self.requests
    }

    /// Page payload size in bytes (zero for erases).
    pub fn page_size(&self) -> usize {
        if self.op.transfers_data() {
            self.page_size
        } else {
            0
        }
    }

    /// Total payload bytes moved over the bus by this transaction.
    pub fn payload_bytes(&self) -> usize {
        self.page_size() * self.requests.len()
    }

    /// Number of distinct dies the transaction touches.
    ///
    /// Allocation-free distinct count: a request's die is counted only the
    /// first time it appears.  Transactions hold at most dies × planes
    /// requests (8 in the paper's geometry), so the quadratic scan is cheaper
    /// than building a sorted scratch vector — and it keeps the per-round hot
    /// path of the zero-allocation replay gate clean.
    pub fn active_dies(&self) -> usize {
        self.requests
            .iter()
            .enumerate()
            .filter(|(i, r)| self.requests[..*i].iter().all(|prev| prev.die != r.die))
            .count()
    }

    /// Number of distinct (die, plane) pairs the transaction touches.
    ///
    /// Allocation-free for the same reason as [`FlashTransaction::active_dies`].
    pub fn active_planes(&self) -> usize {
        self.requests
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                self.requests[..*i]
                    .iter()
                    .all(|prev| (prev.die, prev.plane) != (r.die, r.plane))
            })
            .count()
    }

    /// Classifies the flash-level parallelism of the transaction.
    pub fn parallelism(&self) -> ParallelismLevel {
        let dies = self.active_dies();
        let planes = self.active_planes();
        match (dies, planes) {
            (0 | 1, 0 | 1) => ParallelismLevel::NonPal,
            (1, _) => ParallelismLevel::Pal1,
            (d, p) if p > d => ParallelismLevel::Pal3,
            _ => ParallelismLevel::Pal2,
        }
    }

    /// The die indices touched, deduplicated and sorted.
    pub fn dies(&self) -> Vec<u32> {
        let mut dies: Vec<u32> = self.requests.iter().map(|r| r.die).collect();
        dies.sort_unstable();
        dies.dedup();
        dies
    }

    /// The (die, plane) pairs touched, deduplicated and sorted.
    pub fn planes(&self) -> Vec<(u32, u32)> {
        let mut planes: Vec<(u32, u32)> = self.requests.iter().map(|r| (r.die, r.plane)).collect();
        planes.sort_unstable();
        planes.dedup();
        planes
    }

    /// Consumes the transaction and returns its request buffer so callers can
    /// recycle the allocation into the next [`TransactionBuilder`] (see
    /// [`TransactionBuilder::new_with_buffer`]).
    pub fn into_requests(self) -> Vec<PhysicalPageAddr> {
        self.requests
    }
}

/// Incrementally coalesces page requests into a [`FlashTransaction`], enforcing the
/// flash-level constraints described in §2.2:
///
/// * every request targets the same chip and uses the same operation,
/// * at most one request per (die, plane) pair (planes hold one page in their data
///   register at a time),
/// * optionally, plane sharing may be restricted to requests with identical page
///   offsets (the strictest reading of the ONFI multi-plane constraint).
#[derive(Debug, Clone)]
pub struct TransactionBuilder {
    op: FlashOp,
    geometry: FlashGeometry,
    requests: Vec<PhysicalPageAddr>,
    strict_plane_pairing: bool,
}

impl TransactionBuilder {
    /// Creates a builder for the given operation in the given geometry.
    pub fn new(op: FlashOp, geometry: FlashGeometry) -> Self {
        Self::new_with_buffer(op, geometry, Vec::new())
    }

    /// Like [`TransactionBuilder::new`] but adopts `buffer` (cleared) as the
    /// request storage, so a buffer recycled from
    /// [`FlashTransaction::into_requests`] makes the build allocation-free once
    /// its capacity covers the coalescing limit.
    pub fn new_with_buffer(
        op: FlashOp,
        geometry: FlashGeometry,
        mut buffer: Vec<PhysicalPageAddr>,
    ) -> Self {
        buffer.clear();
        TransactionBuilder {
            op,
            geometry,
            requests: buffer,
            strict_plane_pairing: false,
        }
    }

    /// Enables the strict ONFI multi-plane pairing rule: requests that share a die
    /// must also share their page offset (and differ in plane/block only).
    pub fn with_strict_plane_pairing(mut self, strict: bool) -> Self {
        self.strict_plane_pairing = strict;
        self
    }

    /// Number of requests accepted so far.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if no requests have been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Returns `Ok(())` if `addr` could be added right now without violating any
    /// coalescing rule, without actually adding it.
    pub fn can_add(&self, addr: PhysicalPageAddr) -> Result<(), FlashError> {
        self.geometry.check_addr(addr)?;
        let Some(first) = self.requests.first() else {
            return Ok(());
        };
        if !first.same_chip(&addr) {
            return Err(FlashError::CoalesceConflict {
                reason: "request targets a different chip",
            });
        }
        for existing in &self.requests {
            if existing.die == addr.die && existing.plane == addr.plane {
                return Err(FlashError::CoalesceConflict {
                    reason: "plane already occupied by this transaction",
                });
            }
            if self.strict_plane_pairing && existing.die == addr.die && existing.page != addr.page {
                return Err(FlashError::CoalesceConflict {
                    reason: "strict plane pairing requires matching page offsets",
                });
            }
        }
        Ok(())
    }

    /// Adds a request, or explains why it cannot be coalesced.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] or [`FlashError::CoalesceConflict`].
    pub fn try_add(&mut self, addr: PhysicalPageAddr) -> Result<(), FlashError> {
        self.can_add(addr)?;
        self.requests.push(addr);
        Ok(())
    }

    /// Finalizes the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::EmptyTransaction`] if no request was added.
    pub fn build(self) -> Result<FlashTransaction, FlashError> {
        let Some(first) = self.requests.first() else {
            return Err(FlashError::EmptyTransaction);
        };
        let chip = first.chip();
        Ok(FlashTransaction {
            op: self.op,
            chip,
            requests: self.requests,
            page_size: self.geometry.page_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> FlashGeometry {
        FlashGeometry::paper_default()
    }

    #[test]
    fn single_request_is_non_pal() {
        let g = g();
        let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
        b.try_add(g.page_addr(0, 0, 0, 0, 1, 2)).unwrap();
        let txn = b.build().unwrap();
        assert_eq!(txn.parallelism(), ParallelismLevel::NonPal);
        assert_eq!(txn.requests().len(), 1);
        assert_eq!(txn.active_dies(), 1);
        assert_eq!(txn.active_planes(), 1);
        assert_eq!(txn.chip(), ChipLocation { channel: 0, way: 0 });
        assert_eq!(txn.op(), FlashOp::Read);
    }

    #[test]
    fn plane_sharing_is_pal1() {
        let g = g();
        let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
        b.try_add(g.page_addr(0, 0, 0, 0, 1, 2)).unwrap();
        b.try_add(g.page_addr(0, 0, 0, 1, 3, 2)).unwrap();
        b.try_add(g.page_addr(0, 0, 0, 2, 5, 2)).unwrap();
        let txn = b.build().unwrap();
        assert_eq!(txn.parallelism(), ParallelismLevel::Pal1);
        assert_eq!(txn.active_dies(), 1);
        assert_eq!(txn.active_planes(), 3);
    }

    #[test]
    fn die_interleaving_is_pal2() {
        let g = g();
        let mut b = TransactionBuilder::new(FlashOp::Program, g.clone());
        b.try_add(g.page_addr(0, 0, 0, 0, 1, 0)).unwrap();
        b.try_add(g.page_addr(0, 0, 1, 0, 1, 0)).unwrap();
        let txn = b.build().unwrap();
        assert_eq!(txn.parallelism(), ParallelismLevel::Pal2);
    }

    #[test]
    fn combined_is_pal3() {
        let g = g();
        let mut b = TransactionBuilder::new(FlashOp::Program, g.clone());
        for (die, plane) in [(0, 0), (0, 1), (1, 0), (1, 3)] {
            b.try_add(g.page_addr(0, 0, die, plane, 1, 0)).unwrap();
        }
        let txn = b.build().unwrap();
        assert_eq!(txn.parallelism(), ParallelismLevel::Pal3);
        assert_eq!(txn.dies(), vec![0, 1]);
        assert_eq!(txn.planes().len(), 4);
    }

    #[test]
    fn rejects_cross_chip_coalescing() {
        let g = g();
        let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
        b.try_add(g.page_addr(0, 0, 0, 0, 1, 2)).unwrap();
        let err = b.try_add(g.page_addr(0, 1, 0, 1, 1, 2)).unwrap_err();
        assert!(matches!(err, FlashError::CoalesceConflict { .. }));
        let err = b.try_add(g.page_addr(1, 0, 0, 1, 1, 2)).unwrap_err();
        assert!(matches!(err, FlashError::CoalesceConflict { .. }));
    }

    #[test]
    fn rejects_plane_conflicts() {
        let g = g();
        let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
        b.try_add(g.page_addr(0, 0, 0, 0, 1, 2)).unwrap();
        let err = b.try_add(g.page_addr(0, 0, 0, 0, 9, 5)).unwrap_err();
        assert!(matches!(err, FlashError::CoalesceConflict { .. }));
        // can_add does not mutate: adding a valid one still works.
        b.try_add(g.page_addr(0, 0, 0, 1, 9, 5)).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn strict_plane_pairing_requires_same_page_offset() {
        let g = g();
        let mut b =
            TransactionBuilder::new(FlashOp::Program, g.clone()).with_strict_plane_pairing(true);
        b.try_add(g.page_addr(0, 0, 0, 0, 1, 7)).unwrap();
        let err = b.try_add(g.page_addr(0, 0, 0, 1, 2, 8)).unwrap_err();
        assert!(matches!(err, FlashError::CoalesceConflict { .. }));
        b.try_add(g.page_addr(0, 0, 0, 1, 2, 7)).unwrap();
        // A different die is not constrained by the first die's page offset.
        b.try_add(g.page_addr(0, 0, 1, 0, 2, 3)).unwrap();
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn rejects_out_of_range_addresses() {
        let g = g();
        let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
        let bad = g.page_addr(0, 0, 9, 0, 1, 2);
        assert!(matches!(
            b.try_add(bad),
            Err(FlashError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_build_fails() {
        let g = g();
        let b = TransactionBuilder::new(FlashOp::Read, g);
        assert!(matches!(b.build(), Err(FlashError::EmptyTransaction)));
    }

    #[test]
    fn payload_accounting() {
        let g = g();
        let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
        b.try_add(g.page_addr(0, 0, 0, 0, 1, 2)).unwrap();
        b.try_add(g.page_addr(0, 0, 1, 0, 1, 2)).unwrap();
        let txn = b.build().unwrap();
        assert_eq!(txn.page_size(), 2048);
        assert_eq!(txn.payload_bytes(), 4096);

        let mut b = TransactionBuilder::new(FlashOp::Erase, g.clone());
        b.try_add(g.page_addr(0, 0, 0, 0, 1, 0)).unwrap();
        let txn = b.build().unwrap();
        assert_eq!(txn.page_size(), 0);
        assert_eq!(txn.payload_bytes(), 0);
    }

    #[test]
    fn flash_op_properties() {
        assert!(FlashOp::Read.transfers_data());
        assert!(FlashOp::Program.transfers_data());
        assert!(!FlashOp::Erase.transfers_data());
        assert_eq!(FlashOp::Read.to_string(), "read");
        assert_eq!(FlashOp::Program.to_string(), "program");
        assert_eq!(FlashOp::Erase.to_string(), "erase");
    }

    #[test]
    fn parallelism_labels_and_order() {
        assert_eq!(ParallelismLevel::NonPal.label(), "NON-PAL");
        assert_eq!(ParallelismLevel::Pal3.to_string(), "PAL3");
        assert!(ParallelismLevel::NonPal < ParallelismLevel::Pal1);
        assert!(ParallelismLevel::Pal2 < ParallelismLevel::Pal3);
        assert_eq!(ParallelismLevel::ALL.len(), 4);
    }

    #[test]
    fn request_buffers_round_trip_through_builds() {
        let g = g();
        let mut b = TransactionBuilder::new(FlashOp::Read, g.clone());
        b.try_add(g.page_addr(0, 0, 0, 0, 1, 2)).unwrap();
        b.try_add(g.page_addr(0, 0, 1, 0, 1, 2)).unwrap();
        let buffer = b.build().unwrap().into_requests();
        assert_eq!(buffer.len(), 2);
        let capacity = buffer.capacity();

        // The recycled buffer is cleared on adoption and reused without growth.
        let mut b = TransactionBuilder::new_with_buffer(FlashOp::Program, g.clone(), buffer);
        assert!(b.is_empty());
        b.try_add(g.page_addr(0, 1, 0, 1, 4, 0)).unwrap();
        let txn = b.build().unwrap();
        assert_eq!(txn.requests().len(), 1);
        assert_eq!(txn.chip(), ChipLocation { channel: 0, way: 1 });
        assert_eq!(txn.into_requests().capacity(), capacity);
    }

    #[test]
    fn builder_reports_emptiness() {
        let g = g();
        let b = TransactionBuilder::new(FlashOp::Read, g);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
