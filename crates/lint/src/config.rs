//! Parser for `crates/lint/lint.toml` — the rule manifest.
//!
//! The format is a deliberately minimal TOML subset (the workspace builds
//! offline with no TOML crate): `[section]` headers, repeated `key = value`
//! lines accumulating into lists, `#` comments.  Rules are data: each
//! section configures one rule's scope and allowlists, so tightening or
//! relaxing a rule is a config edit reviewed like any other diff, never a
//! code change.

use std::collections::BTreeMap;

/// One rule's configuration: repeated keys accumulate in order.
pub type Section = Vec<(String, String)>;

/// The parsed manifest: section name → key/value pairs.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    sections: BTreeMap<String, Section>,
}

impl Manifest {
    /// Parses the manifest text.  Returns `Err` with a line-numbered message
    /// on malformed lines — the linter refuses to run with a broken config
    /// rather than silently skipping rules.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut manifest = Manifest::default();
        let mut current = String::new();
        for (index, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                current = name.trim().to_string();
                manifest.sections.entry(current.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint.toml:{}: expected `key = value` or `[section]`, got `{line}`",
                    index + 1
                ));
            };
            if current.is_empty() {
                return Err(format!(
                    "lint.toml:{}: `{key}` appears before any [section] header",
                    index + 1
                ));
            }
            manifest
                .sections
                .get_mut(&current)
                .map(|section| {
                    section.push((key.trim().to_string(), value.trim().to_string()));
                })
                .ok_or_else(|| format!("lint.toml:{}: unknown section state", index + 1))?;
        }
        Ok(manifest)
    }

    /// All values of `key` in `section`, in file order.
    pub fn values(&self, section: &str, key: &str) -> Vec<String> {
        self.sections
            .get(section)
            .map(|entries| {
                entries
                    .iter()
                    .filter(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Parses every `budget = <path> = <count>` entry of a section — the
    /// burn-down allowlist format of the `no-unwrap` rule.
    pub fn budgets(&self, section: &str) -> Result<Vec<(String, usize)>, String> {
        self.values(section, "budget")
            .into_iter()
            .map(|entry| {
                let (path, count) = entry.rsplit_once('=').ok_or_else(|| {
                    format!("[{section}] budget `{entry}`: expected `<path> = <count>`")
                })?;
                let count = count.trim().parse::<usize>().map_err(|_| {
                    format!(
                        "[{section}] budget `{entry}`: `{}` is not a count",
                        count.trim()
                    )
                })?;
                Ok((path.trim().to_string(), count))
            })
            .collect()
    }

    /// Whether the manifest has a section for `name`.
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.contains_key(name)
    }

    /// Section names, sorted.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_accumulate_repeated_keys_in_order() {
        let m = Manifest::parse(
            "# comment\n[scan]\nexclude = vendor\nexclude = target\n\n[rule]\nfile = a.rs\n",
        )
        .unwrap();
        assert_eq!(m.values("scan", "exclude"), vec!["vendor", "target"]);
        assert_eq!(m.values("rule", "file"), vec!["a.rs"]);
        assert!(m.values("rule", "missing").is_empty());
        assert!(m.has_section("scan"));
        assert!(!m.has_section("absent"));
    }

    #[test]
    fn budgets_parse_path_and_count() {
        let m = Manifest::parse("[no-unwrap]\nbudget = crates/x/src/a.rs = 3\n").unwrap();
        assert_eq!(
            m.budgets("no-unwrap").unwrap(),
            vec![("crates/x/src/a.rs".to_string(), 3)]
        );
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = Manifest::parse("[a]\nnot a pair\n").unwrap_err();
        assert!(err.contains("lint.toml:2"), "{err}");
        let err = Manifest::parse("stray = value\n").unwrap_err();
        assert!(err.contains("before any [section]"), "{err}");
        let err = Manifest::parse("[no-unwrap]\nbudget = a.rs = lots\n")
            .unwrap()
            .budgets("no-unwrap")
            .unwrap_err();
        assert!(err.contains("not a count"), "{err}");
    }
}
