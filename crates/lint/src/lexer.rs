//! A hand-rolled, token-level Rust lexer.
//!
//! The linter's rules are textual invariants ("no `HashMap` in hot-path
//! modules", "no `.unwrap()` outside tests"), so full parsing is overkill —
//! but plain `grep` is not enough either: `HashMap` inside a string literal,
//! `unsafe` inside a comment, or `unwrap` inside a doc-test must never
//! trigger.  This lexer produces a token stream with comments and literals
//! handled correctly, then a second pass annotates each token with the
//! regions the rules care about: `#[cfg(test)]`/`#[test]` items and
//! `// lint: hot-path` tagged functions.
//!
//! Handled forms: line and (nested) block comments, doc comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth),
//! byte strings and byte chars, char literals vs. lifetimes, raw identifiers
//! (`r#match`), numeric literals (with float detection for the `no-float-eq`
//! rule), and two-character operators (`==`, `!=`, `::`, …).

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, …).
    Ident,
    /// Punctuation; two-char operators are fused (`::`, `==`, `!=`, `->`).
    Punct,
    /// String literal of any flavor (plain, raw, byte). Text is the raw body.
    Str,
    /// Char literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal that is *not* a float.
    Int,
    /// Numeric literal that is a float (`1.0`, `1e-9`, `2f64`).
    Float,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A `// lint: …` marker comment; text is the directive (`hot-path`).
    Marker,
}

/// One token with its source line and region annotations.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token kind.
    pub kind: TokKind,
    /// The token text (identifier name, operator, literal body).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]` or `#[test]` item.
    pub in_test: bool,
    /// True when the token sits inside a `// lint: hot-path` tagged function.
    pub in_hot: bool,
}

/// Lexes `src` and annotates test/hot-path regions.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut toks = raw_lex(src);
    annotate_regions(&mut toks);
    toks
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn raw_lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => lex_line_comment(&mut cur, &mut out),
            '/' if cur.peek(1) == Some('*') => lex_block_comment(&mut cur),
            '"' => lex_string(&mut cur, &mut out, line),
            '\'' => lex_char_or_lifetime(&mut cur, &mut out, line),
            'r' | 'b' if starts_prefixed_literal(&cur) => {
                lex_prefixed_literal(&mut cur, &mut out, line)
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(tok(TokKind::Ident, text, line));
            }
            c if c.is_ascii_digit() => lex_number(&mut cur, &mut out, line),
            _ => lex_punct(&mut cur, &mut out, line),
        }
    }
    out
}

fn tok(kind: TokKind, text: String, line: u32) -> Tok {
    Tok {
        kind,
        text,
        line,
        in_test: false,
        in_hot: false,
    }
}

/// Line comments are skipped — unless they are `// lint: <directive>` markers,
/// which surface as [`TokKind::Marker`] tokens.  Doc comments (`///`, `//!`)
/// are comments too, so doc-test code never reaches the rules.
fn lex_line_comment(cur: &mut Cursor, out: &mut Vec<Tok>) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    let body = text.trim_start_matches('/').trim_start_matches('!').trim();
    if let Some(directive) = body.strip_prefix("lint:") {
        out.push(tok(TokKind::Marker, directive.trim().to_string(), line));
    }
}

/// Block comments nest in Rust; track the depth.
fn lex_block_comment(cur: &mut Cursor) {
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

fn lex_string(cur: &mut Cursor, out: &mut Vec<Tok>, line: u32) {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            '\\' => {
                cur.bump();
                cur.bump(); // the escaped char (escapes never end the literal)
            }
            '"' => {
                cur.bump();
                break;
            }
            c => {
                text.push(c);
                cur.bump();
            }
        }
    }
    out.push(tok(TokKind::Str, text, line));
}

/// `'a'` is a char literal, `'a` is a lifetime.  Disambiguation: a backslash
/// after the quote is always a char escape; otherwise it is a char literal
/// exactly when the character *after the next one* is the closing quote.
fn lex_char_or_lifetime(cur: &mut Cursor, out: &mut Vec<Tok>, line: u32) {
    cur.bump(); // opening quote
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            let mut text = String::new();
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
                text.push(c);
            }
            out.push(tok(TokKind::Char, text, line));
        }
        Some(c) if cur.peek(1) == Some('\'') => {
            cur.bump();
            cur.bump();
            out.push(tok(TokKind::Char, c.to_string(), line));
        }
        Some(c) if is_ident_start(c) => {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(tok(TokKind::Lifetime, text, line));
        }
        _ => {
            cur.bump();
        }
    }
}

/// Whether the cursor sits at `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`,
/// or `b'…'` — anything where `r`/`b` prefixes a literal rather than starting
/// a plain identifier.
fn starts_prefixed_literal(cur: &Cursor) -> bool {
    let mut j = 1;
    if cur.peek(0) == Some('b') {
        match cur.peek(1) {
            Some('\'') | Some('"') => return true,
            Some('r') => j = 2,
            _ => return false,
        }
    }
    let mut k = j;
    while cur.peek(k) == Some('#') {
        k += 1;
    }
    // `r#"…"` is a raw string; `r#ident` (k == j + 1, no quote) is a raw
    // identifier; bare `r` followed by ident chars is a plain identifier.
    cur.peek(k) == Some('"') && (k > j || cur.peek(j) == Some('"'))
}

fn lex_prefixed_literal(cur: &mut Cursor, out: &mut Vec<Tok>, line: u32) {
    if cur.peek(0) == Some('b') && cur.peek(1) == Some('\'') {
        cur.bump(); // b
        lex_char_or_lifetime(cur, out, line);
        return;
    }
    // Consume the prefix letters.
    while matches!(cur.peek(0), Some('b') | Some('r')) {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        // Raw identifier (`r#match`): emit the identifier itself.
        let mut text = String::new();
        while let Some(c) = cur.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        out.push(tok(TokKind::Ident, text, line));
        return;
    }
    cur.bump(); // opening quote
    let mut text = String::new();
    if hashes == 0 {
        // Raw string without hashes: ends at the first quote, no escapes.
        while let Some(c) = cur.bump() {
            if c == '"' {
                break;
            }
            text.push(c);
        }
    } else {
        // Ends at `"` followed by `hashes` consecutive `#`s.
        'outer: while let Some(c) = cur.bump() {
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break 'outer;
                }
                text.push('"');
                for _ in 0..seen {
                    text.push('#');
                }
                continue;
            }
            text.push(c);
        }
    }
    out.push(tok(TokKind::Str, text, line));
}

fn lex_number(cur: &mut Cursor, out: &mut Vec<Tok>, line: u32) {
    let mut text = String::new();
    let mut is_float = false;
    let radix_prefix = cur.peek(0) == Some('0')
        && matches!(cur.peek(1), Some('x') | Some('X') | Some('o') | Some('b'));
    if radix_prefix {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        out.push(tok(TokKind::Int, text, line));
        return;
    }
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part — but `0..5` is a range and `1.max(2)` a method call.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        text.push('.');
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e') | Some('E')) {
        let sign = matches!(cur.peek(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push(cur.bump().unwrap_or('e'));
            if sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (`u32`, `f64`, …).
    let mut suffix = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    text.push_str(&suffix);
    let kind = if is_float {
        TokKind::Float
    } else {
        TokKind::Int
    };
    out.push(tok(kind, text, line));
}

fn lex_punct(cur: &mut Cursor, out: &mut Vec<Tok>, line: u32) {
    let c = cur.bump().unwrap_or(' ');
    let fused = match (c, cur.peek(0)) {
        (':', Some(':')) => Some("::"),
        ('=', Some('=')) => Some("=="),
        ('!', Some('=')) => Some("!="),
        ('<', Some('=')) => Some("<="),
        ('>', Some('=')) => Some(">="),
        ('-', Some('>')) => Some("->"),
        ('=', Some('>')) => Some("=>"),
        ('&', Some('&')) => Some("&&"),
        ('|', Some('|')) => Some("||"),
        _ => None,
    };
    if let Some(two) = fused {
        cur.bump();
        out.push(tok(TokKind::Punct, two.to_string(), line));
    } else {
        out.push(tok(TokKind::Punct, c.to_string(), line));
    }
}

/// Marks `in_test` for tokens under `#[cfg(test)]`/`#[test]` items and
/// `in_hot` for tokens inside `// lint: hot-path` tagged functions.
///
/// Region extent: from the attribute (or marker), forward through any further
/// attributes, to the end of the next item — the matching `}` of its first
/// brace block, or a `;` at zero bracket depth for braceless items
/// (`use`, `type`, …).
///
/// Known limitation, by design: an attribute is treated as a test attribute
/// when it mentions `test` and does not mention `not` — `#[cfg(any(test,
/// feature = "x"))]` is covered, `#[cfg(not(test))]` correctly is not, and
/// exotic nestings of both fall back to "not a test region".
fn annotate_regions(toks: &mut [Tok]) {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Marker && toks[i].text == "hot-path" {
            if let Some(end) = hot_fn_end(toks, i + 1) {
                for t in toks.iter_mut().take(end).skip(i) {
                    t.in_hot = true;
                }
            }
            i += 1;
            continue;
        }
        if toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
        {
            let attr_end = matching_bracket(toks, i + 1);
            let is_test = {
                let attr = &toks[i + 2..attr_end.min(toks.len())];
                let mentions = |name: &str| {
                    attr.iter()
                        .any(|t| t.kind == TokKind::Ident && t.text == name)
                };
                mentions("test") && !mentions("not")
            };
            if is_test {
                if let Some(end) = item_end(toks, attr_end + 1) {
                    for t in toks.iter_mut().take(end).skip(i) {
                        t.in_test = true;
                    }
                    // Continue scanning *inside* the region so nested
                    // hot-path markers still annotate, but the test flag
                    // is already set; just move past the attribute.
                }
            }
            i = attr_end.saturating_add(1).max(i + 1);
            continue;
        }
        i += 1;
    }
}

/// Index just past the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Index just past the end of the item starting at `from`: skips further
/// attributes, then ends at the matching `}` of the first brace block or at a
/// top-level `;`.
fn item_end(toks: &[Tok], mut from: usize) -> Option<usize> {
    // Skip stacked attributes (`#[cfg(test)] #[allow(...)] mod tests {`).
    while from + 1 < toks.len() && toks[from].text == "#" && toks[from + 1].text == "[" {
        from = matching_bracket(toks, from + 1) + 1;
    }
    let mut paren = 0isize;
    let mut brace = 0isize;
    for (j, t) in toks.iter().enumerate().skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace == 0 {
                    return Some(j + 1);
                }
            }
            ";" if brace == 0 && paren == 0 => return Some(j + 1),
            _ => {}
        }
    }
    None
}

/// End of the `fn` item following a `// lint: hot-path` marker.
fn hot_fn_end(toks: &[Tok], from: usize) -> Option<usize> {
    let fn_at = toks
        .iter()
        .enumerate()
        .skip(from)
        .find(|(_, t)| t.kind == TokKind::Ident && t.text == "fn")
        .map(|(j, _)| j)?;
    item_end(toks, fn_at)
}
