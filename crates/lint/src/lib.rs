//! `sprinkler_lint` — the workspace invariant linter.
//!
//! The simulator's correctness story rests on invariants the compiler cannot
//! see: byte-identical deterministic replay, a zero-allocation steady-state
//! loop, dense-handle (no `HashMap`) discipline in the scheduler core, and
//! `unsafe` confined to the counting allocator.  This crate enforces them
//! statically with a hand-rolled token-level lexer ([`lexer`]) and a table of
//! rules-as-data ([`rules::RULES`]) configured by `crates/lint/lint.toml`
//! ([`config`]).  Deliberately dependency-free: it builds offline, before
//! anything else, and can never be broken by the code it polices.
//!
//! # Example
//!
//! Lint one source string against a manifest that puts it in the
//! deterministic scope:
//!
//! ```
//! use sprinkler_lint::{config::Manifest, rules::{lint_source, RuleSet}};
//!
//! let manifest = Manifest::parse("[deterministic]\ndir = crates/sim/src\n")
//!     .expect("valid manifest");
//! let rules = RuleSet::from_manifest(&manifest).expect("valid rules");
//! // A wall-clock read inside a deterministic dir is the canonical violation.
//! let violations = lint_source(
//!     "crates/sim/src/demo.rs",
//!     "fn now() { let _ = std::time::Instant::now(); }",
//!     &rules,
//! );
//! assert!(violations.iter().any(|v| v.rule == "no-wall-clock"));
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::Manifest;
pub use rules::{lint_source, rule_info, RuleInfo, RuleSet, Violation, RULES};

use std::path::{Path, PathBuf};

/// Collects every workspace `.rs` file under `root`, as sorted
/// workspace-relative `/`-separated paths, honouring the `[scan] exclude`
/// prefixes and skipping hidden directories.
pub fn workspace_files(root: &Path, cfg: &RuleSet) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    walk(root, root, cfg, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, cfg: &RuleSet, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let Some(rel) = relative(root, &path) else {
            continue;
        };
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || cfg.is_excluded(&rel) {
            continue;
        }
        let kind = entry
            .file_type()
            .map_err(|e| format!("file_type {}: {e}", path.display()))?;
        if kind.is_dir() {
            walk(root, &path, cfg, out)?;
        } else if kind.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

/// Lints the whole workspace rooted at `root`: reads every file from
/// [`workspace_files`] and returns all violations in path order.
pub fn lint_workspace(root: &Path, cfg: &RuleSet) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for rel in workspace_files(root, cfg)? {
        let full: PathBuf = root.join(rel.split('/').collect::<PathBuf>());
        let src =
            std::fs::read_to_string(&full).map_err(|e| format!("read {}: {e}", full.display()))?;
        violations.extend(lint_source(&rel, &src, cfg));
    }
    Ok(violations)
}

// ---------------------------------------------------------------------------
// Self-tests: the lexer + every rule against embedded positive/negative
// fixture snippets, so the linter itself cannot silently rot.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// A `RuleSet` whose scopes all contain the fixture path `fix.rs`.
    fn fixture_cfg() -> RuleSet {
        let manifest = Manifest::parse(
            "[scan]\n\
             exclude = vendor\n\
             [library]\n\
             dir = .\n\
             [deterministic]\n\
             dir = .\n\
             [no-map-in-hot-path]\n\
             file = ./fix.rs\n\
             [relaxed-telemetry]\n\
             file = ./fix.rs\n",
        )
        .unwrap();
        RuleSet::from_manifest(&manifest).unwrap()
    }

    fn run(src: &str) -> Vec<Violation> {
        lint_source("./fix.rs", src, &fixture_cfg())
    }

    fn rules_hit(src: &str) -> Vec<&'static str> {
        run(src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_fixture_passes_every_rule() {
        let src = "pub fn add(a: u64, b: u64) -> u64 { a + b }\n";
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn hashmap_in_hot_path_is_flagged_with_location() {
        let src = "use std::collections::HashMap;\nfn f() {}\n";
        let v = run(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-map-in-hot-path");
        assert_eq!(v[0].line, 1);
        assert_eq!(
            v[0].to_string().split(':').take(2).collect::<Vec<_>>(),
            ["./fix.rs", "1"]
        );
    }

    #[test]
    fn hashmap_inside_string_literal_or_comment_is_ignored() {
        let src = "// a HashMap would break replay\n\
                   /* BTreeMap too */\n\
                   fn f() -> &'static str { \"HashMap HashSet\" }\n";
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn wall_clock_and_rand_are_flagged_only_outside_tests() {
        let src = "use std::time::Instant;\n\
                   fn f(d: std::time::Duration) { std::thread::sleep(d); }\n\
                   fn g() -> u64 { rand::random() }\n";
        assert_eq!(
            rules_hit(src),
            ["no-wall-clock", "no-wall-clock", "no-wall-clock"]
        );
        let test_src = "#[cfg(test)]\nmod t {\n    use std::time::Instant;\n}\n";
        assert_eq!(run(test_src), Vec::new());
    }

    #[test]
    fn unsafe_is_flagged_everywhere_except_comments_and_allowlist() {
        let src = "// unsafe in a comment is fine\nfn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let v = run(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-allowlist");
        assert_eq!(v[0].line, 2);

        let manifest = Manifest::parse("[unsafe-allowlist]\nallow = ./fix.rs\n").unwrap();
        let cfg = RuleSet::from_manifest(&manifest).unwrap();
        assert!(lint_source("./fix.rs", src, &cfg)
            .iter()
            .all(|v| v.rule != "unsafe-allowlist"));
    }

    #[test]
    fn unsafe_in_test_code_is_still_flagged() {
        let src = "#[test]\nfn t() { let p = 0u8; let _ = unsafe { *(&p as *const u8) }; }\n";
        assert_eq!(rules_hit(src), ["unsafe-allowlist"]);
    }

    #[test]
    fn unwrap_is_flagged_outside_tests_and_exempt_inside() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.expect(\"msg\") }\n\
                   #[cfg(test)]\nmod t {\n    fn h(x: Option<u8>) -> u8 { x.unwrap() }\n}\n\
                   #[test]\nfn u() { Some(1u8).unwrap(); }\n";
        let v = run(src);
        assert_eq!(
            v.iter().map(|v| (v.rule, v.line)).collect::<Vec<_>>(),
            [("no-unwrap", 1), ("no-unwrap", 2)]
        );
    }

    #[test]
    fn doc_comment_examples_are_exempt_from_unwrap() {
        let src = "/// ```\n/// let x = Some(1).unwrap();\n/// ```\nfn f() {}\n";
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn unwrap_budget_exact_match_passes_over_and_under_fail() {
        let manifest =
            Manifest::parse("[library]\ndir = .\n[no-unwrap]\nbudget = ./fix.rs = 1\n").unwrap();
        let cfg = RuleSet::from_manifest(&manifest).unwrap();
        let one = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(lint_source("./fix.rs", one, &cfg), Vec::new());

        let two =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let over = lint_source("./fix.rs", two, &cfg);
        assert_eq!(over.len(), 2);
        assert!(over[0].message.contains("burn-down budget"), "{}", over[0]);

        let zero = "fn f() {}\n";
        let stale = lint_source("./fix.rs", zero, &cfg);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("stale"), "{}", stale[0]);
    }

    #[test]
    fn non_relaxed_orderings_flagged_in_telemetry_scope() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n\
                   c.load(std::sync::atomic::Ordering::SeqCst)\n}\n";
        assert_eq!(rules_hit(src), ["relaxed-telemetry"]);
        let relaxed = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n\
                       c.load(std::sync::atomic::Ordering::Relaxed)\n}\n";
        assert_eq!(run(relaxed), Vec::new());
    }

    #[test]
    fn float_equality_is_flagged_ranges_and_methods_are_not() {
        let src = "fn f(x: f64) -> bool { x == 0.5 }\nfn g(x: f64) -> bool { 1e-9 != x }\n";
        assert_eq!(rules_hit(src), ["no-float-eq", "no-float-eq"]);
        let ok = "fn f(v: &[u64]) -> u64 { v[0..5].iter().sum::<u64>().max(1) }\n\
                  fn g(n: u64) -> bool { n == 5 }\n";
        assert_eq!(run(ok), Vec::new());
    }

    #[test]
    fn prints_flagged_in_library_scope_but_not_in_tests() {
        let src = "fn f() { println!(\"x\"); }\nfn g() { eprintln!(\"y\"); }\n\
                   #[test]\nfn t() { println!(\"fine\"); }\n";
        assert_eq!(rules_hit(src), ["no-print", "no-print"]);
    }

    #[test]
    fn hot_path_tagged_fn_rejects_allocations_untagged_does_not() {
        let src = "// lint: hot-path\n\
                   fn hot(&mut self) { self.buf = Vec::new(); }\n\
                   fn cold(&mut self) { self.buf = Vec::new(); }\n";
        let v = run(src);
        assert_eq!(
            v.iter().map(|v| (v.rule, v.line)).collect::<Vec<_>>(),
            [("no-hot-alloc", 2)]
        );
    }

    #[test]
    fn hot_path_catches_all_six_alloc_patterns() {
        let src = "// lint: hot-path\n\
                   fn hot(xs: &[u8]) {\n\
                   let a = vec![1u8];\n\
                   let b = Box::new(1u8);\n\
                   let c = xs.to_vec();\n\
                   let d: Vec<u8> = xs.iter().copied().collect();\n\
                   let e = c.clone();\n\
                   let f = Vec::<u8>::new();\n\
                   }\n";
        assert_eq!(run(src).len(), 6);
    }

    #[test]
    fn hot_path_region_ends_at_function_close() {
        let src = "// lint: hot-path\n\
                   fn hot(x: u64) -> u64 { x + 1 }\n\
                   fn after(xs: &[u8]) -> Vec<u8> { xs.to_vec() }\n";
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn raw_strings_and_char_literals_do_not_confuse_the_lexer() {
        let src = "fn f() -> (char, &'static str, &'static str) {\n\
                   ('u', r\"unsafe HashMap\", r#\"x.unwrap()\"#)\n}\n";
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "struct S<'a> { x: &'a [u8] }\nfn f<'b>(s: &'b S<'b>) -> &'b [u8] { s.x }\n";
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn unknown_config_section_is_rejected() {
        let manifest = Manifest::parse("[no-unwrp]\nbudget = a.rs = 1\n").unwrap();
        let err = RuleSet::from_manifest(&manifest).unwrap_err();
        assert!(err.contains("no-unwrp"), "{err}");
    }

    #[test]
    fn every_rule_has_explain_text_and_unique_id() {
        let mut seen = std::collections::BTreeSet::new();
        for rule in RULES {
            assert!(seen.insert(rule.id), "duplicate rule id {}", rule.id);
            assert!(!rule.summary.is_empty());
            assert!(rule.explain.len() > 80, "{} explain too short", rule.id);
            assert!(rule_info(rule.id).is_some());
        }
        assert_eq!(RULES.len(), 8);
        assert!(rule_info("nonexistent-rule").is_none());
    }
}
