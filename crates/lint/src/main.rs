//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run --release -p sprinkler_lint              # lint the workspace
//! cargo run -p sprinkler_lint -- --list              # rule table
//! cargo run -p sprinkler_lint -- --explain no-unwrap # one rule in depth
//! cargo run -p sprinkler_lint -- --root <dir>        # lint another tree
//! ```
//!
//! Violations print `file:line: rule-id: message` and the process exits 1;
//! config/IO errors exit 2; a clean tree prints a one-line summary and
//! exits 0.

use std::path::PathBuf;
use std::process::ExitCode;

use sprinkler_lint::{lint_workspace, rule_info, Manifest, RuleSet, RULES};

fn usage() -> &'static str {
    "usage: sprinkler_lint [--root <dir>] [--config <lint.toml>] [--list] [--explain <rule-id>]"
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("sprinkler_lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut list = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                root =
                    Some(PathBuf::from(argv.next().ok_or_else(|| {
                        format!("--root needs a directory\n{}", usage())
                    })?));
            }
            "--config" => {
                config =
                    Some(PathBuf::from(argv.next().ok_or_else(|| {
                        format!("--config needs a file\n{}", usage())
                    })?));
            }
            "--explain" => {
                explain = Some(argv.next().ok_or_else(|| {
                    format!("--explain needs a rule id (try --list)\n{}", usage())
                })?);
            }
            "--list" => list = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }

    if list {
        for rule in RULES {
            println!("{:<22} {}", rule.id, rule.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(id) = explain {
        let Some(rule) = rule_info(&id) else {
            return Err(format!("unknown rule `{id}` (try --list)"));
        };
        println!("{} — {}\n\n{}", rule.id, rule.summary, rule.explain);
        return Ok(ExitCode::SUCCESS);
    }

    // Default root: the workspace that contains this crate.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let config = config.unwrap_or_else(|| root.join("crates").join("lint").join("lint.toml"));

    let text = std::fs::read_to_string(&config)
        .map_err(|e| format!("read config {}: {e}", config.display()))?;
    let manifest = Manifest::parse(&text)?;
    let rules = RuleSet::from_manifest(&manifest)?;

    let violations = lint_workspace(&root, &rules)?;
    if violations.is_empty() {
        println!("sprinkler_lint: workspace clean ({} rules)", RULES.len());
        return Ok(ExitCode::SUCCESS);
    }
    for v in &violations {
        println!("{v}");
    }
    eprintln!(
        "sprinkler_lint: {} violation(s); `cargo run -p sprinkler_lint -- --explain <rule-id>` \
         explains a rule",
        violations.len()
    );
    Ok(ExitCode::FAILURE)
}
