//! The project rule table and the per-file checking engine.
//!
//! Every rule is data: an entry in [`RULES`] (id + summary + `--explain`
//! text) plus scope/allowlist configuration from `crates/lint/lint.toml`
//! ([`RuleSet`]).  Rules operate on the annotated token stream produced by
//! [`crate::lexer`], so comments, string literals, doc-tests, and
//! `#[cfg(test)]` regions never produce false positives.

use crate::config::Manifest;
use crate::lexer::{Tok, TokKind};

/// One reported rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule identifier (`no-unwrap`, …).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Static documentation for one rule; `--explain <id>` prints `explain`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule identifier, also the `lint.toml` section name.
    pub id: &'static str,
    /// One-line summary for the rule table.
    pub summary: &'static str,
    /// Full `--explain` text: what, why, and how to request an exception.
    pub explain: &'static str,
}

/// The rule reference.  `--explain <rule-id>` prints the long text.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-map-in-hot-path",
        summary: "no HashMap/BTreeMap/HashSet in hot-path modules",
        explain: "Hot-path modules (the scheduler round loop and the queue/ledger/candidate \
                  index it reads) must not use std map/set collections: HashMap iteration \
                  order is nondeterministic across runs, which silently breaks the \
                  byte-identical replay the differential proptests and the perf gate depend \
                  on, and tree/hash nodes allocate on churn, which defeats the zero-allocation \
                  replay gate.  Use dense slices, sorted vectors, or the direct-mapped \
                  structures already in crates/ssd/src/{cand,queue}.rs.  The hot-path file \
                  list and per-file allowlist live in [no-map-in-hot-path] in \
                  crates/lint/lint.toml; request an exception by adding an `allow =` entry \
                  with a justification comment in the same change.",
    },
    RuleInfo {
        id: "no-wall-clock",
        summary: "no Instant/SystemTime/thread::sleep/rand in simulation crates",
        explain: "The simulation crates (sim, flash, ssd, core, array, workloads) must be \
                  fully deterministic: time comes from SimTime, randomness from the seeded \
                  sprinkler_sim::rng.  A single wall-clock read or ambient-RNG call makes \
                  replay nondeterministic long before any test notices — the regen_baselines \
                  --check gate requires byte-identical metrics.  Experiment binaries \
                  (crates/experiments/src/bin) are exempt: they *measure* wall time on \
                  purpose.  Scope is the [no-wall-clock] `dir =` list in lint.toml.",
    },
    RuleInfo {
        id: "unsafe-allowlist",
        summary: "unsafe code only in allowlisted files",
        explain: "Unsafe code is confined to an explicit allowlist — today only \
                  crates/sim/src/telemetry.rs, whose CountingAllocator must implement the \
                  inherently-unsafe GlobalAlloc trait.  Everywhere else the workspace is \
                  #![forbid(unsafe)]-by-convention; this rule makes the convention a CI \
                  failure.  The rule applies to test code too.  To add a file, add an \
                  `allow =` entry under [unsafe-allowlist] with a comment explaining why \
                  safe Rust cannot express the construct.",
    },
    RuleInfo {
        id: "no-unwrap",
        summary: "no .unwrap()/.expect() in library code outside tests",
        explain: "Library crates must not panic on recoverable states: propagate Result, \
                  use unwrap_or_else/total_cmp/poison-recovery, or restructure so the state \
                  is unrepresentable.  #[cfg(test)] regions and doc-tests are exempt.  The \
                  remaining genuinely-unreachable internal invariants are tracked in the \
                  [no-unwrap] burn-down budget (`budget = <file> = <count>`), which may only \
                  shrink: the linter fails when a file exceeds its budget AND when a budget \
                  is stale (fewer calls than budgeted), so every fix must tighten the count \
                  in the same change.",
    },
    RuleInfo {
        id: "relaxed-telemetry",
        summary: "telemetry atomics must use Ordering::Relaxed",
        explain: "TelemetryCounters are always-on hot-path counters; they are documented as \
                  relaxed because no cross-thread ordering is derived from them (each run's \
                  counters are owned by one simulation thread and snapshotted at finalize). \
                  A stronger ordering (SeqCst/Acquire/Release/AcqRel) in telemetry code \
                  would both cost hot-path cycles and suggest a synchronization dependency \
                  that must not exist.  Scope is the [relaxed-telemetry] `file =` list.",
    },
    RuleInfo {
        id: "no-float-eq",
        summary: "no float == / != comparisons in library code",
        explain: "Exact float equality is a determinism and portability hazard: derived \
                  metrics must be compared through integer counters, bit patterns, or \
                  explicit tolerances.  Detection is token-level — a comparison where \
                  either operand is a float literal (1.0, 1e-9, 2f64).  Comparisons of \
                  float-typed variables are left to clippy::float_cmp semantics; this rule \
                  catches the textual pattern that survives review most often.  Test code \
                  is exempt (tests pin exact replay figures on purpose).",
    },
    RuleInfo {
        id: "no-print",
        summary: "no println!/eprintln!/dbg! in library crates",
        explain: "Library crates return data; binaries and experiments print.  A stray \
                  println! in a library hot path is an allocation, a syscall, and interleaved \
                  garbage when array replay runs device threads concurrently.  Report \
                  through RunMetrics/TelemetryCounters instead.  Scope: the [library] `dir =` \
                  list; test regions are exempt.  The CI clippy deny set \
                  (clippy::print_stdout/print_stderr/dbg_macro) enforces the same rule at \
                  type level for the library crates.",
    },
    RuleInfo {
        id: "no-hot-alloc",
        summary: "no allocating calls in `// lint: hot-path` tagged functions",
        explain: "The steady-state replay loop is proven allocation-free dynamically by the \
                  CountingAllocator gate (tests/zero_alloc.rs); this rule mirrors that gate \
                  statically.  Functions tagged with a `// lint: hot-path` comment (and any \
                  whole files under [no-hot-alloc] `file =`) must not contain Vec::new, \
                  vec![, Box::new, .to_vec(, .collect(, or .clone( — reuse pooled buffers \
                  (TxnScratch, spare_states) or preallocate in constructors.  Push/insert \
                  into retained-capacity buffers is allowed: capacity sticks at the \
                  high-water mark.",
    },
];

/// Looks up a rule's documentation by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Parsed, validated rule configuration (scopes + allowlists).
#[derive(Debug, Default, Clone)]
pub struct RuleSet {
    /// Path prefixes excluded from the scan entirely (`vendor`, `target`).
    pub exclude: Vec<String>,
    /// Library-code scope: rules `no-unwrap`, `no-float-eq`, `no-print`.
    pub library_dirs: Vec<String>,
    /// Determinism scope: rule `no-wall-clock`.
    pub deterministic_dirs: Vec<String>,
    /// Hot-path modules: rule `no-map-in-hot-path`.
    pub hot_path_files: Vec<String>,
    /// Files allowed to use map/set collections despite being hot-path.
    pub map_allow: Vec<String>,
    /// Files allowed to contain `unsafe`.
    pub unsafe_allow: Vec<String>,
    /// Burn-down budgets for `no-unwrap`: exact expected count per file.
    pub unwrap_budgets: Vec<(String, usize)>,
    /// Telemetry files: rule `relaxed-telemetry`.
    pub telemetry_files: Vec<String>,
    /// Whole files checked by `no-hot-alloc` (tagged functions always are).
    pub hot_alloc_files: Vec<String>,
}

impl RuleSet {
    /// Builds the rule set from a parsed manifest, rejecting sections that
    /// don't correspond to a known rule or scope (typos must not silently
    /// disable a rule).
    pub fn from_manifest(manifest: &Manifest) -> Result<RuleSet, String> {
        for name in manifest.section_names() {
            let known = name == "scan"
                || name == "library"
                || name == "deterministic"
                || rule_info(name).is_some();
            if !known {
                return Err(format!(
                    "lint.toml: unknown section [{name}] — not a rule id or scope"
                ));
            }
        }
        Ok(RuleSet {
            exclude: manifest.values("scan", "exclude"),
            library_dirs: manifest.values("library", "dir"),
            deterministic_dirs: manifest.values("deterministic", "dir"),
            hot_path_files: manifest.values("no-map-in-hot-path", "file"),
            map_allow: manifest.values("no-map-in-hot-path", "allow"),
            unsafe_allow: manifest.values("unsafe-allowlist", "allow"),
            unwrap_budgets: manifest.budgets("no-unwrap")?,
            telemetry_files: manifest.values("relaxed-telemetry", "file"),
            hot_alloc_files: manifest.values("no-hot-alloc", "file"),
        })
    }

    /// Whether `path` (workspace-relative, `/`-separated) is excluded from
    /// the scan.
    pub fn is_excluded(&self, path: &str) -> bool {
        in_dirs(path, &self.exclude)
    }

    fn unwrap_budget(&self, path: &str) -> Option<usize> {
        self.unwrap_budgets
            .iter()
            .find(|(file, _)| file == path)
            .map(|&(_, count)| count)
    }
}

fn in_dirs(path: &str, dirs: &[String]) -> bool {
    dirs.iter()
        .any(|dir| path == dir || path.starts_with(&format!("{dir}/")))
}

fn in_files(path: &str, files: &[String]) -> bool {
    files.iter().any(|file| file == path)
}

/// Lints one file's source against every applicable rule.  `path` must be
/// workspace-relative with `/` separators (it is matched against the config
/// scopes verbatim).
pub fn lint_source(path: &str, src: &str, cfg: &RuleSet) -> Vec<Violation> {
    let toks = crate::lexer::lex(src);
    let mut out = Vec::new();
    if in_files(path, &cfg.hot_path_files) && !in_files(path, &cfg.map_allow) {
        no_map_in_hot_path(path, &toks, &mut out);
    }
    if in_dirs(path, &cfg.deterministic_dirs) {
        no_wall_clock(path, &toks, &mut out);
    }
    if !in_files(path, &cfg.unsafe_allow) {
        unsafe_allowlist(path, &toks, &mut out);
    }
    if in_dirs(path, &cfg.library_dirs) {
        no_unwrap(path, &toks, cfg, &mut out);
        no_float_eq(path, &toks, &mut out);
        no_print(path, &toks, &mut out);
    }
    if in_files(path, &cfg.telemetry_files) {
        relaxed_telemetry(path, &toks, &mut out);
    }
    no_hot_alloc(path, &toks, in_files(path, &cfg.hot_alloc_files), &mut out);
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

fn violation(path: &str, line: u32, rule: &'static str, message: String) -> Violation {
    Violation {
        file: path.to_string(),
        line,
        rule,
        message,
    }
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct_at(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

fn no_map_in_hot_path(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for t in toks {
        if t.kind == TokKind::Ident
            && !t.in_test
            && matches!(t.text.as_str(), "HashMap" | "BTreeMap" | "HashSet")
        {
            out.push(violation(
                path,
                t.line,
                "no-map-in-hot-path",
                format!(
                    "`{}` in a hot-path module: iteration order/allocation churn break \
                     deterministic zero-alloc replay (use dense slices or sorted vecs)",
                    t.text
                ),
            ));
        }
    }
}

fn no_wall_clock(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.in_test {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Instant" | "SystemTime" => Some(format!(
                "`{}` in a deterministic simulation crate: time must come from SimTime",
                t.text
            )),
            "sleep"
                if punct_at(toks, i.wrapping_sub(1), "::")
                    && ident_at(toks, i.wrapping_sub(2)) == Some("thread") =>
            {
                Some("`thread::sleep` in a deterministic simulation crate".to_string())
            }
            "rand" if punct_at(toks, i + 1, "::") => Some(
                "`rand::` path in a deterministic simulation crate: use the seeded \
                 sprinkler_sim::rng"
                    .to_string(),
            ),
            _ => None,
        };
        if let Some(message) = flagged {
            out.push(violation(path, t.line, "no-wall-clock", message));
        }
    }
}

fn unsafe_allowlist(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for t in toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            out.push(violation(
                path,
                t.line,
                "unsafe-allowlist",
                "`unsafe` outside the allowlist (see [unsafe-allowlist] in lint.toml)".to_string(),
            ));
        }
    }
}

fn no_unwrap(path: &str, toks: &[Tok], cfg: &RuleSet, out: &mut Vec<Violation>) {
    let mut raw = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && !t.in_test
            && (t.text == "unwrap" || t.text == "expect")
            && punct_at(toks, i.wrapping_sub(1), ".")
            && punct_at(toks, i + 1, "(")
        {
            raw.push((t.line, t.text.clone()));
        }
    }
    match cfg.unwrap_budget(path) {
        None => {
            for (line, name) in raw {
                out.push(violation(
                    path,
                    line,
                    "no-unwrap",
                    format!(
                        "`.{name}()` in library code: propagate Result or restructure \
                         (or add a justified burn-down budget in lint.toml)"
                    ),
                ));
            }
        }
        Some(budget) if raw.len() > budget => {
            for (line, name) in raw {
                out.push(violation(
                    path,
                    line,
                    "no-unwrap",
                    format!(
                        "`.{name}()` exceeds this file's burn-down budget of {budget} \
                         (found {} total; budgets may only shrink)",
                        budget.max(1)
                    ),
                ));
            }
        }
        Some(budget) if raw.len() < budget => {
            out.push(violation(
                path,
                1,
                "no-unwrap",
                format!(
                    "stale burn-down budget: {budget} allowed but only {} found — \
                     shrink the [no-unwrap] budget for this file in lint.toml",
                    raw.len()
                ),
            ));
        }
        Some(_) => {}
    }
}

fn relaxed_telemetry(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for t in toks {
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "SeqCst" | "Acquire" | "Release" | "AcqRel")
        {
            out.push(violation(
                path,
                t.line,
                "relaxed-telemetry",
                format!(
                    "`Ordering::{}` in telemetry code: counters are documented relaxed — \
                     no cross-thread ordering may be derived from them",
                    t.text
                ),
            ));
        }
    }
}

fn no_float_eq(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct
            && (t.text == "==" || t.text == "!=")
            && !t.in_test
            && (toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.kind == TokKind::Float)
                || toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float))
        {
            out.push(violation(
                path,
                t.line,
                "no-float-eq",
                format!(
                    "float `{}` comparison in library code: compare integer counters, \
                     bit patterns, or use an explicit tolerance",
                    t.text
                ),
            ));
        }
    }
}

fn no_print(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && !t.in_test
            && matches!(
                t.text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
            && punct_at(toks, i + 1, "!")
        {
            out.push(violation(
                path,
                t.line,
                "no-print",
                format!(
                    "`{}!` in a library crate: report through RunMetrics/telemetry; \
                     printing belongs to binaries and experiments",
                    t.text
                ),
            ));
        }
    }
}

/// Whether the `Vec`/`Box` ident at `i` is followed by `::new`, allowing an
/// optional turbofish (`Vec::<u8>::new`).
fn path_calls_new(toks: &[Tok], i: usize) -> bool {
    if !punct_at(toks, i + 1, "::") {
        return false;
    }
    let mut j = i + 2;
    if punct_at(toks, j, "<") {
        let mut depth = 1usize;
        j += 1;
        while depth > 0 {
            if punct_at(toks, j, "<") {
                depth += 1;
            } else if punct_at(toks, j, ">") {
                depth -= 1;
            } else if j >= toks.len() {
                return false;
            }
            j += 1;
        }
        if !punct_at(toks, j, "::") {
            return false;
        }
        j += 1;
    }
    ident_at(toks, j) == Some("new")
}

fn no_hot_alloc(path: &str, toks: &[Tok], whole_file: bool, out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        let active = t.in_hot || (whole_file && !t.in_test);
        if !active || t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Vec" | "Box" if path_calls_new(toks, i) => Some(format!("`{}::new`", t.text)),
            "vec" if punct_at(toks, i + 1, "!") => Some("`vec![`".to_string()),
            "to_vec" | "collect" | "clone"
                if punct_at(toks, i.wrapping_sub(1), ".")
                    && (punct_at(toks, i + 1, "(") || punct_at(toks, i + 1, "::")) =>
            {
                Some(format!("`.{}(`", t.text))
            }
            _ => None,
        };
        if let Some(what) = flagged {
            out.push(violation(
                path,
                t.line,
                "no-hot-alloc",
                format!(
                    "{what} inside a `lint: hot-path` region: the zero-allocation replay \
                     gate forbids steady-state allocation — reuse pooled/retained buffers"
                ),
            ));
        }
    }
}
