//! The discrete-event queue.
//!
//! [`EventQueue`] orders arbitrary payloads by firing time.  Events scheduled for the
//! same instant pop in the order they were scheduled (FIFO), which keeps simulations
//! deterministic without requiring payloads to be `Ord`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// A time-ordered queue of simulation events.
///
/// The payload type `E` is completely opaque to the queue; only the firing time and
/// an internal sequence number determine ordering.
///
/// # Example
///
/// ```
/// use sprinkler_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(10), "late");
/// q.schedule(SimTime::from_nanos(5), "early");
/// q.schedule(SimTime::from_nanos(5), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest time (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling an event in the past (before the last popped event) is allowed but
    /// the event will fire "now"; the queue clamps it to the current time so
    /// simulated time never runs backwards.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let entry = Entry {
            at,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Removes and returns the next event together with its firing time, advancing
    /// the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Returns the firing time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("now", &self.now)
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "a");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(100));
        assert_eq!(q.now(), SimTime::from_nanos(100));
        // Scheduling in the past clamps to now.
        q.schedule(SimTime::from_nanos(10), "b");
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_nanos(100));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "first");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + Duration::from_nanos(5), "second");
        q.schedule(t + Duration::from_nanos(1), "third");
        assert_eq!(q.pop().unwrap().1, "third");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn debug_output_mentions_len() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 1u8);
        let s = format!("{q:?}");
        assert!(s.contains("len"));
    }
}
