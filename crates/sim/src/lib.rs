//! Discrete-event simulation primitives for the Sprinkler SSD reproduction.
//!
//! This crate provides the time base, the event queue, deterministic random number
//! generation, and the statistics accumulators that the NAND flash model
//! ([`sprinkler-flash`]), the SSD substrate ([`sprinkler-ssd`]), and the experiment
//! harness build on.
//!
//! The simulation is event driven with nanosecond resolution.  All components share
//! a single monotonic [`SimTime`]; the [`EventQueue`] orders arbitrary event payloads
//! by their firing time and guarantees FIFO ordering among events scheduled for the
//! same instant, which keeps simulations fully deterministic.
//!
//! # Example
//!
//! ```
//! use sprinkler_sim::{EventQueue, SimTime, Duration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + Duration::from_micros(3), Ev::Pong);
//! q.schedule(SimTime::ZERO + Duration::from_micros(1), Ev::Ping);
//!
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!(e1, Ev::Ping);
//! assert_eq!(t1, SimTime::from_nanos(1_000));
//! let (_, e2) = q.pop().unwrap();
//! assert_eq!(e2, Ev::Pong);
//! assert!(q.pop().is_none());
//! ```
//!
//! [`sprinkler-flash`]: https://example.com/sprinkler
//! [`sprinkler-ssd`]: https://example.com/sprinkler

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use event::EventQueue;
pub use rng::{DeterministicRng, SplitMix64};
pub use stats::{Counter, Histogram, MeanStat, RateTracker, Summary, TimeWeighted};
pub use telemetry::{
    alloc_count, bytes_allocated, panic_on_alloc, AllocScope, CountingAllocator, TelemetryCounters,
    TelemetrySnapshot,
};
pub use time::{Duration, SimTime};
