//! Deterministic random number generation.
//!
//! Every stochastic decision in the reproduction (synthetic trace generation, MLC
//! page-latency assignment, tie breaking) flows through [`DeterministicRng`], a
//! xoshiro256**-style generator seeded explicitly, so repeated runs of the same
//! experiment produce byte-identical results.

use serde::{Deserialize, Serialize};

/// SplitMix64 generator, used to expand a single `u64` seed into the state of the
/// main generator.  Also usable on its own for cheap hashing-style randomness.
///
/// # Example
///
/// ```
/// use sprinkler_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produces the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workhorse deterministic generator (xoshiro256**).
///
/// Provides the handful of distributions the simulator needs: uniform integers,
/// uniform floats, Bernoulli draws, exponential inter-arrival times, and a bounded
/// Pareto-ish heavy tail for request sizes.
///
/// # Example
///
/// ```
/// use sprinkler_sim::DeterministicRng;
///
/// let mut rng = DeterministicRng::seeded(7);
/// let x = rng.uniform_u64(10);
/// assert!(x < 10);
/// let p = rng.uniform_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicRng {
    s: [u64; 4],
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        DeterministicRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Produces the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.  Returns 0 when `bound == 0`.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire-style rejection-free reduction is fine for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.  Returns 0 when `bound == 0`.
    pub fn uniform_usize(&mut self, bound: usize) -> usize {
        self.uniform_u64(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` (inclusive).  `lo` must be `<= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_range_u64 requires lo <= hi");
        lo + self.uniform_u64(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.uniform_f64();
        -mean * u.ln()
    }

    /// A bounded heavy-tailed draw in `[lo, hi]`, used for request sizes.
    /// `shape` controls tail heaviness: larger values concentrate near `lo`.
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, shape: f64) -> f64 {
        let lo = lo.max(1e-9);
        let hi = hi.max(lo);
        let u = self.uniform_f64();
        let ha = hi.powf(shape);
        let la = lo.powf(shape);
        let x = -(u * ha - u * la - ha) / (ha * la);
        x.powf(-1.0 / shape).clamp(lo, hi)
    }

    /// Chooses an index according to the given non-negative weights.  Returns 0 if
    /// all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 || weights.is_empty() {
            return 0;
        }
        let mut target = self.uniform_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_is_deterministic_for_same_seed() {
        let mut a = DeterministicRng::seeded(99);
        let mut b = DeterministicRng::seeded(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_differs_across_seeds() {
        let mut a = DeterministicRng::seeded(1);
        let mut b = DeterministicRng::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "different seeds should diverge");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DeterministicRng::seeded(5);
        for _ in 0..10_000 {
            assert!(rng.uniform_u64(17) < 17);
            let v = rng.uniform_range_u64(5, 9);
            assert!((5..=9).contains(&v));
            let f = rng.uniform_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.uniform_u64(0), 0);
        assert_eq!(rng.uniform_usize(0), 0);
    }

    #[test]
    fn uniform_covers_range() {
        let mut rng = DeterministicRng::seeded(11);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.uniform_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = DeterministicRng::seeded(3);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn bernoulli_rate_is_roughly_right() {
        let mut rng = DeterministicRng::seeded(17);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = DeterministicRng::seeded(23);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(100.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = DeterministicRng::seeded(31);
        for _ in 0..10_000 {
            let v = rng.bounded_pareto(4.0, 1024.0, 1.2);
            assert!((4.0..=1024.0).contains(&v), "v={v}");
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = DeterministicRng::seeded(41);
        let weights = [0.0, 10.0, 0.0, 1.0];
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[1] > counts[3] * 5);
        assert_eq!(rng.weighted_index(&[]), 0);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DeterministicRng::seeded(53);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..64).collect::<Vec<_>>(),
            "shuffle should usually move things"
        );
    }
}
