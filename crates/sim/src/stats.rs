//! Statistics accumulators used by the SSD metrics layer and the experiment harness.
//!
//! These are intentionally simple, allocation-light accumulators: counters,
//! mean/variance trackers, time-weighted values (for occupancy-style metrics such as
//! chip busy fraction), fixed-bucket histograms, and throughput trackers.

use serde::{Deserialize, Serialize};

use crate::time::{Duration, SimTime};

/// A plain monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use sprinkler_sim::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// Online mean / min / max / variance tracker (Welford's algorithm).
///
/// # Example
///
/// ```
/// use sprinkler_sim::MeanStat;
///
/// let mut m = MeanStat::new();
/// for x in [2.0, 4.0, 6.0] {
///     m.record(x);
/// }
/// assert_eq!(m.mean(), 4.0);
/// assert_eq!(m.max(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanStat {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl MeanStat {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &MeanStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let combined = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / combined as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / combined as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count = combined;
        self.mean = new_mean;
        self.m2 = new_m2;
    }

    /// Converts to an immutable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
            sum: self.sum(),
        }
    }
}

/// An immutable snapshot of a [`MeanStat`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sum of values.
    pub sum: f64,
}

/// Tracks a piecewise-constant value over simulated time and reports its
/// time-weighted average; also usable as a busy/idle accumulator.
///
/// # Example
///
/// ```
/// use sprinkler_sim::{TimeWeighted, SimTime};
///
/// let mut occupancy = TimeWeighted::new(SimTime::ZERO, 0.0);
/// occupancy.set(SimTime::from_nanos(100), 1.0);
/// occupancy.set(SimTime::from_nanos(300), 0.0);
/// // 0 for 100ns then 1 for 200ns => average over 300ns is 2/3.
/// assert!((occupancy.time_average(SimTime::from_nanos(300)) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Creates a tracker with the given initial value at `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Updates the value at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.saturating_since(self.last_change);
        self.weighted_sum += self.current * dt.as_nanos() as f64;
        self.last_change = self.last_change.max(now);
        self.current = value;
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let next = self.current + delta;
        self.set(now, next);
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted average of the value from the start of tracking until `now`.
    pub fn time_average(&self, now: SimTime) -> f64 {
        let total = now.saturating_since(self.start).as_nanos() as f64;
        if total <= 0.0 {
            return self.current;
        }
        let tail = now.saturating_since(self.last_change).as_nanos() as f64;
        (self.weighted_sum + self.current * tail) / total
    }

    /// The integral of the value over time (value × nanoseconds) until `now`.
    pub fn integral(&self, now: SimTime) -> f64 {
        let tail = now.saturating_since(self.last_change).as_nanos() as f64;
        self.weighted_sum + self.current * tail
    }
}

/// Accumulates busy time for a binary busy/idle resource.
///
/// # Example
///
/// ```
/// use sprinkler_sim::{SimTime, Duration};
/// use sprinkler_sim::stats::BusyTracker;
///
/// let mut b = BusyTracker::new();
/// b.mark_busy(SimTime::from_nanos(10));
/// b.mark_idle(SimTime::from_nanos(30));
/// assert_eq!(b.busy_time(), Duration::from_nanos(20));
/// assert!(!b.is_busy());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyTracker {
    busy_since: Option<SimTime>,
    busy_total: Duration,
    transitions: u64,
}

impl BusyTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the resource busy at `now`; a no-op if already busy.
    pub fn mark_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
            self.transitions += 1;
        }
    }

    /// Marks the resource idle at `now`, accumulating the elapsed busy period; a
    /// no-op if already idle.
    pub fn mark_idle(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy_total += now.saturating_since(since);
        }
    }

    /// Returns `true` while the resource is marked busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Total accumulated busy time (not counting an open busy period).
    pub fn busy_time(&self) -> Duration {
        self.busy_total
    }

    /// Total busy time including any open busy period, evaluated at `now`.
    pub fn busy_time_at(&self, now: SimTime) -> Duration {
        match self.busy_since {
            Some(since) => self.busy_total + now.saturating_since(since),
            None => self.busy_total,
        }
    }

    /// Number of idle→busy transitions observed.
    pub fn busy_periods(&self) -> u64 {
        self.transitions
    }
}

/// Fixed-bucket histogram over `u64` samples (latencies in nanoseconds, sizes in
/// bytes, ...).  Buckets are defined by their inclusive upper bounds; samples above
/// the last bound land in an overflow bucket.
///
/// # Example
///
/// ```
/// use sprinkler_sim::Histogram;
///
/// let mut h = Histogram::with_bounds(&[10, 100, 1000]);
/// h.record(5);
/// h.record(50);
/// h.record(5000);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts(), &[1, 1, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    /// Non-zero iff the bounds are `start, start*2, start*4, ...`: enables the
    /// O(1) `leading_zeros` bucket lookup instead of a bound scan.
    pow2_start: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds (must be strictly
    /// increasing).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max: 0,
            pow2_start: 0,
        }
    }

    /// Creates a histogram with exponentially growing bounds: `start, start*2, ...`
    /// for `n` buckets.
    ///
    /// Bucket counts large enough that a doubling would overflow `u64` are
    /// clamped: bound generation stops at the last representable power-of-two
    /// multiple of `start`, and everything above it lands in the overflow
    /// bucket.  (The seed built each bound with `start * (1 << i)`, where the
    /// shift itself overflows for `n >= 64`.)
    pub fn exponential(start: u64, n: usize) -> Self {
        assert!(start > 0 && n > 0);
        let mut bounds = Vec::with_capacity(n);
        let mut bound = start;
        for _ in 0..n {
            bounds.push(bound);
            match bound.checked_mul(2) {
                Some(next) => bound = next,
                None => break,
            }
        }
        let mut h = Self::with_bounds(&bounds);
        h.pow2_start = start;
        h
    }

    /// The bucket a sample falls into: O(1) via `leading_zeros` for
    /// exponential bounds, a binary search otherwise.
    fn bucket_index(&self, sample: u64) -> usize {
        if self.pow2_start != 0 {
            if sample <= self.pow2_start {
                0
            } else {
                // Smallest i with start * 2^i >= sample.  q = ceil(sample /
                // start) - 1 rounded into [1, ..], so the answer is the bit
                // length of q — a single leading_zeros instruction.
                let q = (sample - 1) / self.pow2_start;
                ((64 - q.leading_zeros()) as usize).min(self.bounds.len())
            }
        } else {
            self.bounds.partition_point(|&b| b < sample)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = self.bucket_index(sample);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += sample as u128;
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The configured inclusive bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Approximate quantile (0.0–1.0) using the bucket upper bound of the bucket in
    /// which the quantile falls.  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        Self::quantile_from_counts(&self.bounds, &self.counts, self.max, q)
    }

    /// The quantile convention of [`Histogram::quantile`], applied to raw
    /// bucket counts (`counts` has one trailing overflow bucket beyond
    /// `bounds`; `max` is the largest recorded sample, reported for the
    /// overflow bucket).  This is the single home of the bucket-walk and
    /// rounding rules, so consumers that merge bucket counts from several
    /// histograms with shared bounds (e.g. per-device latency merges) stay
    /// convention-identical with per-histogram quantiles.
    pub fn quantile_from_counts(bounds: &[u64], counts: &[u64], max: u64, q: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in counts.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return if i < bounds.len() { bounds[i] } else { max };
            }
        }
        max
    }
}

/// Tracks totals over a run and converts them to rates (bandwidth, IOPS).
///
/// # Example
///
/// ```
/// use sprinkler_sim::{RateTracker, SimTime};
///
/// let mut r = RateTracker::new();
/// r.record_bytes(4096);
/// r.record_ops(1);
/// let bw = r.bytes_per_sec(SimTime::from_micros(1));
/// assert!((bw - 4.096e9).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateTracker {
    bytes: u64,
    ops: u64,
}

impl RateTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds transferred bytes.
    pub fn record_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Adds completed operations.
    pub fn record_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bytes per second over the elapsed simulated time.
    pub fn bytes_per_sec(&self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / secs
        }
    }

    /// Kilobytes per second over the elapsed simulated time (the unit of Fig 10a).
    pub fn kb_per_sec(&self, elapsed: SimTime) -> f64 {
        self.bytes_per_sec(elapsed) / 1024.0
    }

    /// Operations per second over the elapsed simulated time.
    pub fn ops_per_sec(&self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
    }

    #[test]
    fn mean_stat_basic() {
        let mut m = MeanStat::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), 0.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean() - 2.5).abs() < 1e-12);
        assert!((m.variance() - 1.25).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.sum(), 10.0);
    }

    #[test]
    fn mean_stat_merge_matches_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = MeanStat::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = MeanStat::new();
        let mut b = MeanStat::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn mean_stat_merge_empty_cases() {
        let mut a = MeanStat::new();
        let empty = MeanStat::new();
        a.merge(&empty);
        assert_eq!(a.count(), 0);
        let mut b = MeanStat::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
    }

    #[test]
    fn summary_reflects_stat() {
        let mut m = MeanStat::new();
        m.record(2.0);
        m.record(6.0);
        let s = m.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.sum, 8.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_nanos(50), 2.0);
        tw.set(SimTime::from_nanos(150), 0.0);
        // 0 for 50ns, 2 for 100ns, 0 for 50ns over 200ns => 1.0
        assert!((tw.time_average(SimTime::from_nanos(200)) - 1.0).abs() < 1e-12);
        assert!((tw.integral(SimTime::from_nanos(200)) - 200.0).abs() < 1e-9);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_nanos(100), 1.0);
        assert_eq!(tw.current(), 2.0);
        // 1 for first 100ns, 2 for next 100ns => avg 1.5
        assert!((tw.time_average(SimTime::from_nanos(200)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_zero_elapsed_returns_current() {
        let tw = TimeWeighted::new(SimTime::from_nanos(10), 3.0);
        assert_eq!(tw.time_average(SimTime::from_nanos(10)), 3.0);
    }

    #[test]
    fn busy_tracker_accumulates_periods() {
        let mut b = BusyTracker::new();
        assert!(!b.is_busy());
        b.mark_busy(SimTime::from_nanos(10));
        assert!(b.is_busy());
        b.mark_busy(SimTime::from_nanos(15)); // no-op
        b.mark_idle(SimTime::from_nanos(20));
        b.mark_idle(SimTime::from_nanos(25)); // no-op
        b.mark_busy(SimTime::from_nanos(30));
        assert_eq!(b.busy_time(), Duration::from_nanos(10));
        assert_eq!(
            b.busy_time_at(SimTime::from_nanos(40)),
            Duration::from_nanos(20)
        );
        assert_eq!(b.busy_periods(), 2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::with_bounds(&[10, 20, 40]);
        for s in [1, 5, 15, 25, 100] {
            h.record(s);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 29.2).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(0.5), 20);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.bounds(), &[10, 20, 40]);
    }

    #[test]
    fn histogram_exponential_bounds() {
        let h = Histogram::exponential(8, 4);
        assert_eq!(h.bounds(), &[8, 16, 32, 64]);
    }

    #[test]
    fn exponential_bounds_clamp_instead_of_overflowing() {
        // n >= 64 used to overflow the `1 << i` shift before the saturating
        // multiply could help; now generation stops at the last representable
        // bound and stays strictly increasing.
        let h = Histogram::exponential(1 << 62, 70);
        assert_eq!(h.bounds(), &[1 << 62, 1 << 63]);
        let h = Histogram::exponential(3, 128);
        assert!(h.bounds().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*h.bounds().last().unwrap(), 3u64 << 62);

        let mut h = Histogram::exponential(1 << 62, 70);
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts(), &[0, 0, 1]);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn o1_bucket_indexing_matches_the_linear_scan() {
        for start in [1u64, 3, 8, 1_000] {
            let h = Histogram::exponential(start, 27);
            let mut samples: Vec<u64> = vec![0, 1, start, u64::MAX];
            for &b in h.bounds() {
                samples.extend([b - 1, b, b + 1, b.saturating_mul(3) / 2]);
            }
            for sample in samples {
                let scan = h
                    .bounds()
                    .iter()
                    .position(|&b| sample <= b)
                    .unwrap_or(h.bounds().len());
                assert_eq!(
                    h.bucket_index(sample),
                    scan,
                    "start {start}, sample {sample}"
                );
            }
        }
        // Arbitrary (non-exponential) bounds take the search path and agree too.
        let h = Histogram::with_bounds(&[10, 20, 40]);
        for sample in [0, 9, 10, 11, 20, 39, 40, 41, u64::MAX] {
            let scan = h
                .bounds()
                .iter()
                .position(|&b| sample <= b)
                .unwrap_or(h.bounds().len());
            assert_eq!(h.bucket_index(sample), scan);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::with_bounds(&[10, 10]);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::with_bounds(&[10]);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn rate_tracker_rates() {
        let mut r = RateTracker::new();
        r.record_bytes(2048);
        r.record_ops(2);
        let t = SimTime::from_micros(2);
        assert!((r.bytes_per_sec(t) - 1.024e9).abs() < 1.0);
        assert!((r.kb_per_sec(t) - 1.0e6).abs() < 1.0);
        assert!((r.ops_per_sec(t) - 1.0e6).abs() < 1.0);
        assert_eq!(r.bytes(), 2048);
        assert_eq!(r.ops(), 2);
        assert_eq!(r.bytes_per_sec(SimTime::ZERO), 0.0);
        assert_eq!(r.ops_per_sec(SimTime::ZERO), 0.0);
    }
}
