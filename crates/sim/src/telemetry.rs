//! Always-on hot-path telemetry and the test-time counting allocator.
//!
//! Two independent facilities keep the simulator's performance work honest:
//!
//! * [`TelemetryCounters`] — a bundle of relaxed-ordering atomic counters the
//!   hot path increments unconditionally.  One instance is created per run
//!   (never a global: experiment harnesses run many devices concurrently and
//!   per-run figures must stay deterministic), shared via `Arc` between the
//!   SSD substrate and its scheduler, and frozen into a [`TelemetrySnapshot`]
//!   when the run's metrics are finalized.  A relaxed fetch-add on an
//!   uncontended cache line costs a few cycles, so the counters are always on
//!   — every experiment, scenario, and BENCH baseline carries them.
//! * [`CountingAllocator`] — a test-only global allocator that counts
//!   allocations and allocated bytes per thread.  Test binaries install it
//!   with `#[global_allocator]` and use [`AllocScope`] to assert that a
//!   region of code (the steady-state replay loop) performs no allocations.
//!
//! Neither facility is compiled out: the counters are part of the measurement
//! substrate, and the allocator is only active in binaries that opt in.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Relaxed-ordering atomic counters for the scheduling/replay hot path.
///
/// All increments use [`Ordering::Relaxed`]: the counters are statistics, not
/// synchronization, and per-run totals are read only after the run completed.
#[derive(Debug, Default)]
pub struct TelemetryCounters {
    /// Scheduling rounds executed (one per non-trivial `run_scheduler` call).
    pub sched_rounds: AtomicU64,
    /// Rounds whose tag walk was clipped early by the FUA reordering horizon.
    pub hazard_horizon_clips: AtomicU64,
    /// Pages deferred by the §4.4 write-after-read hazard check.
    pub hazard_war_deferrals: AtomicU64,
    /// FARO selections resolved by the single-tag fast path.
    pub faro_fast_path_rounds: AtomicU64,
    /// Commitments dropped because the target chip had no ledger headroom.
    pub ledger_headroom_exhausted: AtomicU64,
    /// Host requests admitted by the streaming replay loop.
    pub stream_admissions: AtomicU64,
    /// Streaming-ingestion stalls: a request was due but the bounded backlog
    /// was full, so the replay loop drained events instead.
    pub stream_stalls: AtomicU64,
    /// Stripes migrated between devices by the array placement rebalancer.
    pub stripes_migrated: AtomicU64,
    /// Bytes of stripe payload relocated by migrations (one stripe's worth
    /// per migration; the injected device traffic is twice this — a read on
    /// the source plus a write on the target).
    pub migration_bytes: AtomicU64,
    /// EWMA decay passes applied to the per-stripe heat table (one per
    /// rebalance window).
    pub heat_decays: AtomicU64,
    /// Host requests admitted through the multi-tenant fair-share front.
    pub tenant_admissions: AtomicU64,
    /// Tenant head-of-line records deferred past their arrival time by the
    /// deficit-round-robin fair scheduler (another tenant held the turn).
    pub tenant_deferrals: AtomicU64,
    /// Tenant head-of-line records held back by the burst-isolation token
    /// bucket (arrival was due but the bucket was empty).
    pub tenant_throttles: AtomicU64,
}

impl TelemetryCounters {
    /// Creates a zeroed counter bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to a counter.  Relaxed ordering: statistics only.
    #[inline]
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the current counter values into a plain snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            sched_rounds: self.sched_rounds.load(Ordering::Relaxed),
            hazard_horizon_clips: self.hazard_horizon_clips.load(Ordering::Relaxed),
            hazard_war_deferrals: self.hazard_war_deferrals.load(Ordering::Relaxed),
            faro_fast_path_rounds: self.faro_fast_path_rounds.load(Ordering::Relaxed),
            ledger_headroom_exhausted: self.ledger_headroom_exhausted.load(Ordering::Relaxed),
            stream_admissions: self.stream_admissions.load(Ordering::Relaxed),
            stream_stalls: self.stream_stalls.load(Ordering::Relaxed),
            stripes_migrated: self.stripes_migrated.load(Ordering::Relaxed),
            migration_bytes: self.migration_bytes.load(Ordering::Relaxed),
            heat_decays: self.heat_decays.load(Ordering::Relaxed),
            tenant_admissions: self.tenant_admissions.load(Ordering::Relaxed),
            tenant_deferrals: self.tenant_deferrals.load(Ordering::Relaxed),
            tenant_throttles: self.tenant_throttles.load(Ordering::Relaxed),
        }
    }
}

/// A frozen, plain-`u64` view of [`TelemetryCounters`], carried by run metrics
/// and summable across devices of an array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Scheduling rounds executed.
    pub sched_rounds: u64,
    /// Rounds clipped early by the FUA reordering horizon.
    pub hazard_horizon_clips: u64,
    /// Pages deferred by the write-after-read hazard check.
    pub hazard_war_deferrals: u64,
    /// FARO selections resolved by the single-tag fast path.
    pub faro_fast_path_rounds: u64,
    /// Commitments dropped for lack of ledger headroom.
    pub ledger_headroom_exhausted: u64,
    /// Host requests admitted by the streaming replay loop.
    pub stream_admissions: u64,
    /// Streaming-ingestion stalls against the bounded backlog.
    pub stream_stalls: u64,
    /// Stripes migrated between devices by the array placement rebalancer.
    pub stripes_migrated: u64,
    /// Bytes of stripe payload relocated by migrations (half the injected
    /// device traffic: each migration is a stripe read plus a stripe write).
    pub migration_bytes: u64,
    /// EWMA decay passes applied to the per-stripe heat table.
    pub heat_decays: u64,
    /// Host requests admitted through the multi-tenant fair-share front.
    #[serde(default)]
    pub tenant_admissions: u64,
    /// Tenant head-of-line records deferred past arrival by the fair scheduler.
    #[serde(default)]
    pub tenant_deferrals: u64,
    /// Tenant head-of-line records held back by the burst-isolation bucket.
    #[serde(default)]
    pub tenant_throttles: u64,
}

impl TelemetrySnapshot {
    /// Elementwise sum, for aggregating per-device snapshots into an array
    /// summary.
    pub fn merged(&self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            sched_rounds: self.sched_rounds + other.sched_rounds,
            hazard_horizon_clips: self.hazard_horizon_clips + other.hazard_horizon_clips,
            hazard_war_deferrals: self.hazard_war_deferrals + other.hazard_war_deferrals,
            faro_fast_path_rounds: self.faro_fast_path_rounds + other.faro_fast_path_rounds,
            ledger_headroom_exhausted: self.ledger_headroom_exhausted
                + other.ledger_headroom_exhausted,
            stream_admissions: self.stream_admissions + other.stream_admissions,
            stream_stalls: self.stream_stalls + other.stream_stalls,
            stripes_migrated: self.stripes_migrated + other.stripes_migrated,
            migration_bytes: self.migration_bytes + other.migration_bytes,
            heat_decays: self.heat_decays + other.heat_decays,
            tenant_admissions: self.tenant_admissions + other.tenant_admissions,
            tenant_deferrals: self.tenant_deferrals + other.tenant_deferrals,
            tenant_throttles: self.tenant_throttles + other.tenant_throttles,
        }
    }
}

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // const-initialized Cells: no lazy TLS initialization, so the counters
    // never allocate (or recurse) from inside the allocator itself.
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static PANIC_ON_ALLOC: Cell<bool> = const { Cell::new(false) };
}

/// Arms (or disarms) panic-on-allocation for this thread: under
/// [`CountingAllocator`], the next allocation event panics with the offending
/// layout size, so the call stack of a hot-path allocation is visible in the
/// test backtrace.  The flag self-disarms before panicking (the panic
/// machinery itself allocates).  Debugging aid for zero-allocation gates.
pub fn panic_on_alloc(enabled: bool) {
    PANIC_ON_ALLOC.with(|flag| flag.set(enabled));
}

#[inline]
fn note_alloc(bytes: usize) {
    ALLOC_COUNT.with(|c| c.set(c.get() + 1));
    ALLOC_BYTES.with(|b| b.set(b.get() + bytes as u64));
    if PANIC_ON_ALLOC.with(Cell::get) {
        PANIC_ON_ALLOC.with(|flag| flag.set(false));
        panic!("unexpected allocation of {bytes} bytes while panic_on_alloc was armed");
    }
}

/// A counting [`GlobalAlloc`] that delegates to the system allocator and
/// tracks per-thread allocation counts and byte totals.
///
/// Install it in a test binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sprinkler_sim::CountingAllocator = sprinkler_sim::CountingAllocator;
/// ```
///
/// and measure a region with [`AllocScope`].  Deallocations are not tracked:
/// the zero-allocation gate cares about allocation *events* on the hot path,
/// not about net memory growth.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAllocator;

// SAFETY: every method delegates directly to `System`; the only extra work is
// updating const-initialized thread-local Cells, which cannot allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocation events observed on this thread since it started.
///
/// Monotonic; only meaningful in binaries whose global allocator is
/// [`CountingAllocator`] (it reads 0 otherwise).
pub fn alloc_count() -> u64 {
    ALLOC_COUNT.with(Cell::get)
}

/// Bytes requested from the allocator on this thread since it started.
///
/// Monotonic (deallocations are not subtracted); only meaningful under
/// [`CountingAllocator`].
pub fn bytes_allocated() -> u64 {
    ALLOC_BYTES.with(Cell::get)
}

/// A scoped guard over the thread's allocation counters: captures them at
/// construction and reports the delta on demand.
///
/// ```ignore
/// let scope = AllocScope::begin();
/// hot_loop();
/// assert_eq!(scope.allocations(), 0, "hot loop must not allocate");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    start_count: u64,
    start_bytes: u64,
}

impl AllocScope {
    /// Starts measuring from the current counter values.
    pub fn begin() -> Self {
        AllocScope {
            start_count: alloc_count(),
            start_bytes: bytes_allocated(),
        }
    }

    /// Allocation events since the scope began.
    pub fn allocations(&self) -> u64 {
        alloc_count() - self.start_count
    }

    /// Bytes requested since the scope began.
    pub fn bytes(&self) -> u64 {
        bytes_allocated() - self.start_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_and_merge() {
        let counters = TelemetryCounters::new();
        TelemetryCounters::incr(&counters.sched_rounds);
        TelemetryCounters::incr(&counters.sched_rounds);
        TelemetryCounters::incr(&counters.stream_stalls);
        let snap = counters.snapshot();
        assert_eq!(snap.sched_rounds, 2);
        assert_eq!(snap.stream_stalls, 1);
        assert_eq!(snap.hazard_war_deferrals, 0);

        let other = TelemetrySnapshot {
            sched_rounds: 3,
            faro_fast_path_rounds: 7,
            ..TelemetrySnapshot::default()
        };
        let merged = snap.merged(&other);
        assert_eq!(merged.sched_rounds, 5);
        assert_eq!(merged.faro_fast_path_rounds, 7);
        assert_eq!(merged.stream_stalls, 1);
    }

    #[test]
    fn default_snapshot_is_zero() {
        assert_eq!(
            TelemetryCounters::new().snapshot(),
            TelemetrySnapshot::default()
        );
    }

    #[test]
    fn alloc_scope_reports_deltas() {
        // Without CountingAllocator installed the counters stay at zero, but
        // the arithmetic must still hold.
        let scope = AllocScope::begin();
        assert_eq!(scope.allocations(), alloc_count() - scope.start_count);
        assert_eq!(scope.bytes(), bytes_allocated() - scope.start_bytes);
    }
}
