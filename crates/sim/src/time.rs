//! Simulation time base.
//!
//! Simulated time is an absolute number of nanoseconds since the start of the run
//! ([`SimTime`]); intervals are expressed as [`Duration`].  Both are thin `u64`
//! newtypes so arithmetic never allocates and comparisons are trivially `Copy`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant in simulated time, measured in nanoseconds from the start of
/// the simulation.
///
/// # Example
///
/// ```
/// use sprinkler_sim::{SimTime, Duration};
///
/// let t = SimTime::ZERO + Duration::from_micros(20);
/// assert_eq!(t.as_nanos(), 20_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_nanos(20_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// # Example
///
/// ```
/// use sprinkler_sim::Duration;
///
/// let bus = Duration::from_micros(12) + Duration::from_nanos(300);
/// assert_eq!(bus.as_nanos(), 12_300);
/// assert_eq!(bus * 2, Duration::from_nanos(24_600));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the elapsed duration since `earlier`, or [`Duration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Duration {
    /// The empty interval.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable interval.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the nearest
    /// nanosecond.
    pub fn from_micros_f64(us: f64) -> Self {
        Duration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; returns [`Duration::ZERO`] on underflow.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_construction_roundtrips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn duration_construction_roundtrips() {
        assert_eq!(Duration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Duration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Duration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Duration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_nanos(100);
        let t2 = t + Duration::from_nanos(50);
        assert_eq!(t2.as_nanos(), 150);
        assert_eq!(t2 - t, Duration::from_nanos(50));
        assert_eq!(t2 - Duration::from_nanos(150), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_handles_future() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.saturating_since(early), Duration::from_nanos(20));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_nanos(10) + Duration::from_nanos(5);
        assert_eq!(d.as_nanos(), 15);
        assert_eq!((d - Duration::from_nanos(5)).as_nanos(), 10);
        assert_eq!((d * 3).as_nanos(), 45);
        assert_eq!((d / 3).as_nanos(), 5);
        assert_eq!(d.saturating_sub(Duration::from_nanos(100)), Duration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [1u64, 2, 3].iter().map(|&n| Duration::from_nanos(n)).sum();
        assert_eq!(total.as_nanos(), 6);
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(format!("{}", Duration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", Duration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Duration::from_millis(5)), "5.000ms");
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            Duration::from_nanos(4).max(Duration::from_nanos(2)),
            Duration::from_nanos(4)
        );
        assert_eq!(
            Duration::from_nanos(4).min(Duration::from_nanos(2)),
            Duration::from_nanos(2)
        );
    }

    #[test]
    fn float_conversions() {
        assert!((Duration::from_micros(1).as_micros_f64() - 1.0).abs() < 1e-9);
        assert!((Duration::from_millis(1).as_millis_f64() - 1.0).abs() < 1e-9);
        assert!((Duration::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((SimTime::from_millis(1).as_millis_f64() - 1.0).abs() < 1e-9);
    }
}
