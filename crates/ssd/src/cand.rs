//! Columnar (struct-of-arrays) candidate index for the scheduler hot path.
//!
//! [`CandidateIndex`] stores every uncommitted page of every queued tag as one
//! row in four parallel column arrays — admission sequence, packed priority
//! key, logical page number, and slot handle — grouped per flash chip into
//! contiguous CSR-style extents of a shared arena.  A scheduling round walks
//! plain `&[u64]`/`&[u32]` slices: no per-chip heap vectors, no `Option`
//! unwrapping, no pointer chase per candidate.
//!
//! # Layout
//!
//! Each chip owns one *extent* `[start, start + cap)` of the arena; the first
//! `len` rows are live and sorted ascending by `(seq, pri)`.  Because the
//! priority key packs the page offset into its high bits (see [`pack_pri`]),
//! `(seq, pri)` order is exactly the `(seq, page)` arrival order the
//! schedulers require, and the die/plane coordinates ride along for free — a
//! FARO candidate is built without touching the tag's placement vector.
//!
//! # Maintenance
//!
//! The index is maintained incrementally at mutation time (admit, commit,
//! retire, readdress), like the per-chip sorted vectors it replaces: a
//! per-round rebuild would be O(total uncommitted pages) and the full-scale
//! 1024-chip workload keeps tens of thousands of pages in flight.  Inserts and
//! removes memmove within one extent; a full extent relocates to the end of
//! the arena with doubled capacity (amortized O(1)); and when dead space
//! exceeds 4× the live rows the arena is compacted into a retained spare
//! buffer, keeping the whole index a few cache-resident kilobytes at steady
//! state.  All buffers retain their capacity across churn, so index
//! maintenance performs no allocations once the high-water mark is reached —
//! the same contract the zero-allocation replay gate enforces on the rest of
//! the queue.

use std::ops::Range;

use serde::{Deserialize, Serialize};

/// Smallest extent capacity handed to a chip on its first insert.
const MIN_EXTENT_CAP: u32 = 4;

/// Packs a candidate's page offset and die/plane coordinates into one sortable
/// priority key: `page << 12 | die << 6 | plane`.  Within a tag every page is
/// unique, so ordering rows by `(seq, pri)` equals ordering by `(seq, page)`.
#[inline]
pub fn pack_pri(page: u32, die: u32, plane: u32) -> u32 {
    debug_assert!(page < 1 << 20, "page offset {page} overflows the key");
    debug_assert!(die < 64, "die {die} overflows the key");
    debug_assert!(plane < 64, "plane {plane} overflows the key");
    page << 12 | die << 6 | plane
}

/// The page offset packed into a priority key.
#[inline]
pub fn pri_page(pri: u32) -> u32 {
    pri >> 12
}

/// The die coordinate packed into a priority key.
#[inline]
pub fn pri_die(pri: u32) -> u32 {
    (pri >> 6) & 0x3f
}

/// The plane coordinate packed into a priority key.
#[inline]
pub fn pri_plane(pri: u32) -> u32 {
    pri & 0x3f
}

/// One chip's contiguous range of the column arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Extent {
    start: u32,
    len: u32,
    cap: u32,
}

/// Borrowed view of the candidate columns for one scheduling round.
///
/// All fields are plain slices over the shared arena; [`CandidateView::range`]
/// gives the contiguous row range owned by a chip.  The view is `Copy`, so hot
/// loops can destructure it into locals without borrow gymnastics.
#[derive(Debug, Clone, Copy)]
pub struct CandidateView<'a> {
    /// Chips with at least one live row, ascending.
    pub active: &'a [u32],
    /// Admission sequence column.
    pub seq: &'a [u64],
    /// Packed priority column (see [`pack_pri`]).
    pub pri: &'a [u32],
    /// Logical page number column (for the write-after-read hazard check).
    pub lpn: &'a [u64],
    /// Queue slot handle column (dense `u32` handles into the slot columns).
    pub slot: &'a [u32],
    extents: &'a [Extent],
}

impl CandidateView<'_> {
    /// The arena row range holding `chip`'s live candidates, sorted by
    /// `(seq, pri)`.  Empty for chips without work.
    #[inline]
    pub fn range(&self, chip: usize) -> Range<usize> {
        match self.extents.get(chip) {
            Some(ext) => ext.start as usize..(ext.start + ext.len) as usize,
            None => 0..0,
        }
    }
}

/// The struct-of-arrays per-chip candidate index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CandidateIndex {
    col_seq: Vec<u64>,
    col_pri: Vec<u32>,
    col_lpn: Vec<u64>,
    col_slot: Vec<u32>,
    /// Per-chip extents; grows to the highest chip index seen.
    extents: Vec<Extent>,
    /// Sorted chip indices with at least one live row.
    active: Vec<u32>,
    /// Live rows across all extents.
    live: u32,
    /// Compaction spares: the arena is rewritten into these and the buffers
    /// are swapped, so both sets retain their high-water capacity.
    spare_seq: Vec<u64>,
    spare_pri: Vec<u32>,
    spare_lpn: Vec<u64>,
    spare_slot: Vec<u32>,
}

impl CandidateIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live rows (uncommitted candidate pages) across all chips.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// True when no chip has candidates.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Sorted chip indices with at least one live row.
    pub fn active_chips(&self) -> &[u32] {
        &self.active
    }

    /// The live row range of one chip (empty for chips without work).
    pub fn chip_range(&self, chip: usize) -> Range<usize> {
        match self.extents.get(chip) {
            Some(ext) => ext.start as usize..(ext.start + ext.len) as usize,
            None => 0..0,
        }
    }

    /// Borrowed columnar view for a scheduling round.
    pub fn view(&self) -> CandidateView<'_> {
        CandidateView {
            active: &self.active,
            seq: &self.col_seq,
            pri: &self.col_pri,
            lpn: &self.col_lpn,
            slot: &self.col_slot,
            extents: &self.extents,
        }
    }

    /// Binary search for `(seq, pri)` within one extent.  Returns the row
    /// offset relative to the extent start.
    fn search(&self, ext: Extent, seq: u64, pri: u32) -> Result<usize, usize> {
        let start = ext.start as usize;
        let len = ext.len as usize;
        let seqs = &self.col_seq[start..start + len];
        let pris = &self.col_pri[start..start + len];
        let (mut lo, mut hi) = (0usize, len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if (seqs[mid], pris[mid]) < (seq, pri) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < len && seqs[lo] == seq && pris[lo] == pri {
            Ok(lo)
        } else {
            Err(lo)
        }
    }

    /// Inserts one candidate row.  `(seq, pri)` must be unique per chip.
    // lint: hot-path
    pub fn insert(&mut self, chip: usize, seq: u64, pri: u32, lpn: u64, slot: u32) {
        if chip >= self.extents.len() {
            self.extents.resize(chip + 1, Extent::default());
        }
        if self.extents[chip].len == self.extents[chip].cap {
            self.grow(chip);
        }
        let ext = self.extents[chip];
        let pos = match self.search(ext, seq, pri) {
            // Admission seqs are unique per page, so duplicates cannot occur.
            Ok(_) => {
                debug_assert!(false, "duplicate candidate row");
                return;
            }
            Err(pos) => pos,
        };
        let start = ext.start as usize;
        let len = ext.len as usize;
        self.col_seq
            .copy_within(start + pos..start + len, start + pos + 1);
        self.col_pri
            .copy_within(start + pos..start + len, start + pos + 1);
        self.col_lpn
            .copy_within(start + pos..start + len, start + pos + 1);
        self.col_slot
            .copy_within(start + pos..start + len, start + pos + 1);
        self.col_seq[start + pos] = seq;
        self.col_pri[start + pos] = pri;
        self.col_lpn[start + pos] = lpn;
        self.col_slot[start + pos] = slot;
        if ext.len == 0 {
            let at = self.active.partition_point(|&c| (c as usize) < chip);
            self.active.insert(at, chip as u32);
        }
        self.extents[chip].len += 1;
        self.live += 1;
    }

    /// Removes one candidate row.  Missing rows are tolerated (mirrors the
    /// sorted-vector index this replaces).
    // lint: hot-path
    pub fn remove(&mut self, chip: usize, seq: u64, pri: u32) {
        let Some(&ext) = self.extents.get(chip) else {
            return;
        };
        let Ok(pos) = self.search(ext, seq, pri) else {
            return;
        };
        let start = ext.start as usize;
        let len = ext.len as usize;
        self.col_seq
            .copy_within(start + pos + 1..start + len, start + pos);
        self.col_pri
            .copy_within(start + pos + 1..start + len, start + pos);
        self.col_lpn
            .copy_within(start + pos + 1..start + len, start + pos);
        self.col_slot
            .copy_within(start + pos + 1..start + len, start + pos);
        self.extents[chip].len -= 1;
        self.live -= 1;
        if self.extents[chip].len == 0 {
            if let Ok(at) = self.active.binary_search(&(chip as u32)) {
                self.active.remove(at);
            }
        }
        self.maybe_compact();
    }

    /// Relocates a full extent to the end of the arena with doubled capacity.
    fn grow(&mut self, chip: usize) {
        let ext = self.extents[chip];
        let new_cap = (ext.cap * 2).max(MIN_EXTENT_CAP);
        let new_start = self.col_seq.len();
        self.col_seq.resize(new_start + new_cap as usize, 0);
        self.col_pri.resize(new_start + new_cap as usize, 0);
        self.col_lpn.resize(new_start + new_cap as usize, 0);
        self.col_slot.resize(new_start + new_cap as usize, 0);
        let (start, len) = (ext.start as usize, ext.len as usize);
        self.col_seq.copy_within(start..start + len, new_start);
        self.col_pri.copy_within(start..start + len, new_start);
        self.col_lpn.copy_within(start..start + len, new_start);
        self.col_slot.copy_within(start..start + len, new_start);
        self.extents[chip] = Extent {
            start: new_start as u32,
            len: ext.len,
            cap: new_cap,
        };
        // Keep the compaction spares' capacity at least as large as the arena:
        // compaction output is strictly smaller than the arena it replaces, so
        // sizing the spares here (at the only point the arena itself grows)
        // guarantees compaction never allocates at steady state.  Compaction
        // itself must NOT run here: the caller is mid-insert and a compaction
        // would reset the just-grown (still empty) extent.
        let need = self.col_seq.len();
        self.reserve_spares(need);
    }

    fn reserve_spares(&mut self, need: usize) {
        if self.spare_seq.capacity() < need {
            self.spare_seq.reserve(need - self.spare_seq.len());
            self.spare_pri.reserve(need - self.spare_pri.len());
            self.spare_lpn.reserve(need - self.spare_lpn.len());
            self.spare_slot.reserve(need - self.spare_slot.len());
        }
    }

    /// Compacts the arena once dead space (relocation garbage plus idle extent
    /// capacity) exceeds 4× the live rows, restoring cache locality.
    fn maybe_compact(&mut self) {
        if self.col_seq.len() > 64 && self.live as usize * 4 < self.col_seq.len() {
            self.compact();
        }
    }

    /// Rewrites every live extent tightly (with 50% slack) into the spare
    /// buffers and swaps them in.  O(live rows + chips), allocation-free once
    /// the spares have reached the arena's high-water capacity.
    fn compact(&mut self) {
        let total: usize = self
            .extents
            .iter()
            .filter(|ext| ext.len > 0)
            .map(|ext| {
                let len = ext.len as usize;
                len + len / 2 + 2
            })
            .sum();
        self.spare_seq.clear();
        self.spare_seq.resize(total, 0);
        self.spare_pri.clear();
        self.spare_pri.resize(total, 0);
        self.spare_lpn.clear();
        self.spare_lpn.resize(total, 0);
        self.spare_slot.clear();
        self.spare_slot.resize(total, 0);
        let mut cursor = 0usize;
        let Self {
            col_seq,
            col_pri,
            col_lpn,
            col_slot,
            extents,
            spare_seq,
            spare_pri,
            spare_lpn,
            spare_slot,
            ..
        } = self;
        for ext in extents.iter_mut() {
            if ext.len == 0 {
                *ext = Extent::default();
                continue;
            }
            let (start, len) = (ext.start as usize, ext.len as usize);
            let cap = len + len / 2 + 2;
            spare_seq[cursor..cursor + len].copy_from_slice(&col_seq[start..start + len]);
            spare_pri[cursor..cursor + len].copy_from_slice(&col_pri[start..start + len]);
            spare_lpn[cursor..cursor + len].copy_from_slice(&col_lpn[start..start + len]);
            spare_slot[cursor..cursor + len].copy_from_slice(&col_slot[start..start + len]);
            *ext = Extent {
                start: cursor as u32,
                len: len as u32,
                cap: cap as u32,
            };
            cursor += cap;
        }
        debug_assert_eq!(cursor, total);
        std::mem::swap(col_seq, spare_seq);
        std::mem::swap(col_pri, spare_pri);
        std::mem::swap(col_lpn, spare_lpn);
        std::mem::swap(col_slot, spare_slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(index: &CandidateIndex, chip: usize) -> Vec<(u64, u32, u64, u32)> {
        let view = index.view();
        view.range(chip)
            .map(|i| (view.seq[i], view.pri[i], view.lpn[i], view.slot[i]))
            .collect()
    }

    #[test]
    fn pri_key_round_trips_and_orders_by_page() {
        let key = pack_pri(513, 1, 3);
        assert_eq!(pri_page(key), 513);
        assert_eq!(pri_die(key), 1);
        assert_eq!(pri_plane(key), 3);
        // Page dominates: die/plane never reorder two pages of the same tag.
        assert!(pack_pri(2, 0, 0) > pack_pri(1, 63, 63));
    }

    #[test]
    fn rows_stay_sorted_within_a_chip() {
        let mut index = CandidateIndex::new();
        index.insert(3, 10, pack_pri(1, 0, 0), 101, 7);
        index.insert(3, 5, pack_pri(0, 1, 2), 50, 2);
        index.insert(3, 10, pack_pri(0, 0, 1), 100, 7);
        assert_eq!(index.len(), 3);
        assert_eq!(index.active_chips(), &[3]);
        let got = rows(&index, 3);
        assert_eq!(got[0], (5, pack_pri(0, 1, 2), 50, 2));
        assert_eq!(got[1], (10, pack_pri(0, 0, 1), 100, 7));
        assert_eq!(got[2], (10, pack_pri(1, 0, 0), 101, 7));
    }

    #[test]
    fn remove_keeps_active_set_and_live_count_coherent() {
        let mut index = CandidateIndex::new();
        index.insert(0, 1, pack_pri(0, 0, 0), 10, 0);
        index.insert(2, 2, pack_pri(0, 0, 0), 20, 1);
        assert_eq!(index.active_chips(), &[0, 2]);
        index.remove(0, 1, pack_pri(0, 0, 0));
        assert_eq!(index.active_chips(), &[2]);
        assert_eq!(index.len(), 1);
        // Removing a missing row is tolerated.
        index.remove(0, 1, pack_pri(0, 0, 0));
        index.remove(9, 1, pack_pri(0, 0, 0));
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn growth_and_compaction_preserve_every_row() {
        let mut index = CandidateIndex::new();
        // Enough rows on few chips to force several extent relocations.
        for seq in 0..256u64 {
            index.insert(
                (seq % 3) as usize,
                seq,
                pack_pri(seq as u32, 0, 0),
                seq,
                seq as u32,
            );
        }
        assert_eq!(index.len(), 256);
        // Drain most of them to trigger compaction.
        for seq in 0..250u64 {
            index.remove((seq % 3) as usize, seq, pack_pri(seq as u32, 0, 0));
        }
        assert_eq!(index.len(), 6);
        let mut survivors: Vec<u64> = (0..3)
            .flat_map(|chip| rows(&index, chip).into_iter().map(|(seq, ..)| seq))
            .collect();
        survivors.sort_unstable();
        assert_eq!(survivors, (250..256).collect::<Vec<_>>());
        for chip in 0..3 {
            let chip_rows = rows(&index, chip);
            assert!(chip_rows.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
