//! Channel bus model.
//!
//! A channel is the shared data path between a flash controller and the chips
//! attached to it.  Only one chip can drive the bus at a time: the issue phase of a
//! transaction (commands, addresses, program payload) and the completion phase
//! (read payload, status) both occupy the channel, while the cell phase leaves it
//! free — that gap is what channel pipelining exploits.  The channel also accounts
//! *contention*: time a transaction had to wait for the bus, which feeds the
//! execution-time breakdown of Fig 13.

use serde::{Deserialize, Serialize};
use sprinkler_sim::{Duration, SimTime};

/// A single channel bus and its occupancy accounting.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::channel::Channel;
/// use sprinkler_sim::{Duration, SimTime};
///
/// let mut ch = Channel::new(0);
/// let grant = ch.acquire(SimTime::ZERO, Duration::from_micros(10));
/// assert_eq!(grant.start, SimTime::ZERO);
/// let grant2 = ch.acquire(SimTime::from_micros(4), Duration::from_micros(2));
/// assert_eq!(grant2.start, SimTime::from_micros(10)); // waited for the bus
/// assert_eq!(grant2.waited, Duration::from_micros(6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    index: usize,
    free_at: SimTime,
    busy: Duration,
    contention: Duration,
    acquisitions: u64,
}

/// The result of acquiring the channel for a bus phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusGrant {
    /// When the bus phase actually starts.
    pub start: SimTime,
    /// When the bus phase ends and the channel becomes free again.
    pub end: SimTime,
    /// How long the requester waited for the bus (contention).
    pub waited: Duration,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(index: usize) -> Self {
        Channel {
            index,
            free_at: SimTime::ZERO,
            busy: Duration::ZERO,
            contention: Duration::ZERO,
            acquisitions: 0,
        }
    }

    /// The channel's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// When the channel next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Acquires the channel at or after `now` for `duration`, returning the grant.
    /// The wait (if any) is accounted as bus contention.
    pub fn acquire(&mut self, now: SimTime, duration: Duration) -> BusGrant {
        let start = now.max(self.free_at);
        let waited = start.saturating_since(now);
        let end = start + duration;
        self.free_at = end;
        self.busy += duration;
        self.contention += waited;
        self.acquisitions += 1;
        BusGrant { start, end, waited }
    }

    /// Total time the bus spent transferring commands/addresses/data.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Total time requesters spent waiting for the bus.
    pub fn contention_time(&self) -> Duration {
        self.contention
    }

    /// Number of bus phases granted.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_channel_is_free() {
        let ch = Channel::new(3);
        assert_eq!(ch.index(), 3);
        assert_eq!(ch.free_at(), SimTime::ZERO);
        assert_eq!(ch.busy_time(), Duration::ZERO);
        assert_eq!(ch.contention_time(), Duration::ZERO);
        assert_eq!(ch.acquisitions(), 0);
    }

    #[test]
    fn back_to_back_acquisitions_serialize() {
        let mut ch = Channel::new(0);
        let a = ch.acquire(SimTime::ZERO, Duration::from_micros(5));
        let b = ch.acquire(SimTime::ZERO, Duration::from_micros(5));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end, SimTime::from_micros(5));
        assert_eq!(a.waited, Duration::ZERO);
        assert_eq!(b.start, SimTime::from_micros(5));
        assert_eq!(b.end, SimTime::from_micros(10));
        assert_eq!(b.waited, Duration::from_micros(5));
        assert_eq!(ch.busy_time(), Duration::from_micros(10));
        assert_eq!(ch.contention_time(), Duration::from_micros(5));
        assert_eq!(ch.acquisitions(), 2);
    }

    #[test]
    fn idle_gap_has_no_contention() {
        let mut ch = Channel::new(0);
        ch.acquire(SimTime::ZERO, Duration::from_micros(1));
        let g = ch.acquire(SimTime::from_micros(10), Duration::from_micros(1));
        assert_eq!(g.waited, Duration::ZERO);
        assert_eq!(g.start, SimTime::from_micros(10));
        assert_eq!(ch.contention_time(), Duration::ZERO);
    }

    #[test]
    fn zero_duration_acquisition_is_allowed() {
        let mut ch = Channel::new(0);
        let g = ch.acquire(SimTime::from_micros(2), Duration::ZERO);
        assert_eq!(g.start, g.end);
        assert_eq!(ch.busy_time(), Duration::ZERO);
    }
}
