//! SSD configuration.

use serde::{Deserialize, Serialize};
use sprinkler_flash::{FlashGeometry, FlashTiming};
use sprinkler_sim::Duration;

/// How the FTL chooses the physical placement (channel, way, die, plane) of a
/// logical page.
///
/// The paper's platform stripes memory requests across channels first (channel
/// stripping), then across the chips of a channel (channel pipelining), then across
/// dies and planes — the classic C-W-D-P order that maximizes system-level
/// parallelism for sequential logical addresses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Channel → way → die → plane striping (the default, highest SLP for
    /// sequential streams).
    #[default]
    ChannelWayDiePlane,
    /// Way → channel → die → plane striping (pipelining-first).
    WayChannelDiePlane,
    /// Die → plane → channel → way striping (flash-level-first; exposes poor SLP
    /// and is useful as an ablation).
    DiePlaneChannelWay,
}

/// Garbage collection configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcConfig {
    /// Whether garbage collection runs at all.  Experiments on pristine SSDs
    /// disable it to isolate scheduling effects (Figs 10–16); Fig 17 enables it.
    pub enabled: bool,
    /// GC triggers when a plane's free-block count drops to this watermark.
    pub free_block_watermark: usize,
    /// How many blocks a single GC invocation reclaims at most.
    pub blocks_per_invocation: usize,
    /// Penalty applied to pending memory requests whose target pages were migrated
    /// while they waited, for schedulers *without* a readdressing callback
    /// (VAS/PAS).  Sprinkler avoids this via its readdressing callback (§4.3).
    pub stale_readdress_penalty: Duration,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            enabled: false,
            free_block_watermark: 2,
            blocks_per_invocation: 1,
            stale_readdress_penalty: Duration::from_micros(40),
        }
    }
}

impl GcConfig {
    /// A GC configuration suitable for the fragmented-SSD experiments (Fig 17).
    pub fn enabled() -> Self {
        GcConfig {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Complete configuration of the simulated many-chip SSD.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::SsdConfig;
///
/// let cfg = SsdConfig::paper_default();
/// assert_eq!(cfg.geometry.total_chips(), 64);
/// assert_eq!(cfg.queue_depth, 32);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Flash array geometry.
    pub geometry: FlashGeometry,
    /// Flash timing parameters.
    pub timing: FlashTiming,
    /// Device-level (NCQ-style) queue depth.
    pub queue_depth: usize,
    /// Host interface (DMA engine) bandwidth in bytes per second.
    pub dma_bytes_per_sec: u64,
    /// Hard upper bound on committed-but-incomplete memory requests per chip.
    /// Schedulers may use less (VAS/PAS effectively use 1); FARO over-commits up
    /// to this bound.
    pub max_committed_per_chip: usize,
    /// The flash controller's transaction type decision window: requests for an
    /// idle chip that arrive within this window can be coalesced into one
    /// transaction (temporal transactional-locality).
    pub decision_window: Duration,
    /// Page allocation / striping policy.
    pub allocation: AllocationPolicy,
    /// Garbage collection settings.
    pub gc: GcConfig,
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl SsdConfig {
    /// The 64-chip baseline configuration of the paper's evaluation platform.
    pub fn paper_default() -> Self {
        SsdConfig {
            geometry: FlashGeometry::paper_default(),
            timing: FlashTiming::paper_default(),
            queue_depth: 32,
            // PCIe-attached host interface; well above a single ONFI channel.
            dma_bytes_per_sec: 1_600_000_000,
            max_committed_per_chip: 32,
            decision_window: Duration::from_micros(1),
            allocation: AllocationPolicy::ChannelWayDiePlane,
            gc: GcConfig::default(),
        }
    }

    /// A small configuration for unit tests: 4 chips, small blocks, shallow queue.
    pub fn small_test() -> Self {
        SsdConfig {
            geometry: FlashGeometry::small_test(),
            timing: FlashTiming::paper_default(),
            queue_depth: 8,
            dma_bytes_per_sec: 1_600_000_000,
            max_committed_per_chip: 8,
            decision_window: Duration::from_micros(1),
            allocation: AllocationPolicy::ChannelWayDiePlane,
            gc: GcConfig::default(),
        }
    }

    /// Returns a copy with a different total chip count (keeps all other settings).
    pub fn with_chip_count(mut self, chips: usize) -> Self {
        self.geometry = self.geometry.with_chip_count(chips);
        self
    }

    /// Returns a copy with a different device queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Returns a copy with fewer blocks per plane (keeps simulated capacity and GC
    /// working sets tractable for experiments).
    pub fn with_blocks_per_plane(mut self, blocks: usize) -> Self {
        self.geometry = self.geometry.with_blocks_per_plane(blocks);
        self
    }

    /// Returns a copy with garbage collection enabled.
    pub fn with_gc(mut self, gc: GcConfig) -> Self {
        self.gc = gc;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry
            .validate()
            .map_err(|e| format!("invalid geometry: {e}"))?;
        if self.queue_depth == 0 {
            return Err("queue_depth must be non-zero".to_string());
        }
        if self.dma_bytes_per_sec == 0 {
            return Err("dma_bytes_per_sec must be non-zero".to_string());
        }
        if self.max_committed_per_chip == 0 {
            return Err("max_committed_per_chip must be non-zero".to_string());
        }
        if self.gc.enabled && self.gc.free_block_watermark == 0 {
            return Err("gc.free_block_watermark must be non-zero when GC is enabled".to_string());
        }
        Ok(())
    }

    /// The atomic flash I/O unit (page size) in bytes.
    pub fn page_size(&self) -> usize {
        self.geometry.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = SsdConfig::paper_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.geometry.total_chips(), 64);
        assert_eq!(cfg.queue_depth, 32);
        assert_eq!(cfg.page_size(), 2048);
        assert!(!cfg.gc.enabled);
    }

    #[test]
    fn small_test_is_valid() {
        SsdConfig::small_test().validate().unwrap();
    }

    #[test]
    fn builder_modifiers() {
        let cfg = SsdConfig::paper_default()
            .with_chip_count(256)
            .with_queue_depth(64)
            .with_blocks_per_plane(32)
            .with_gc(GcConfig::enabled());
        assert_eq!(cfg.geometry.total_chips(), 256);
        assert_eq!(cfg.queue_depth, 64);
        assert_eq!(cfg.geometry.blocks_per_plane, 32);
        assert!(cfg.gc.enabled);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_rejects_zero_fields() {
        let mut cfg = SsdConfig::small_test();
        cfg.queue_depth = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::small_test();
        cfg.dma_bytes_per_sec = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::small_test();
        cfg.max_committed_per_chip = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::small_test();
        cfg.gc.enabled = true;
        cfg.gc.free_block_watermark = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::small_test();
        cfg.geometry.channels = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn allocation_policy_default() {
        assert_eq!(
            AllocationPolicy::default(),
            AllocationPolicy::ChannelWayDiePlane
        );
    }

    #[test]
    fn gc_config_presets() {
        assert!(!GcConfig::default().enabled);
        assert!(GcConfig::enabled().enabled);
        assert!(GcConfig::enabled().free_block_watermark > 0);
    }
}
