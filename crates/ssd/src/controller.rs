//! Per-channel flash controllers.
//!
//! A flash controller owns the chips of one channel.  Committed memory requests are
//! delivered into per-chip pending sets; when a chip is idle the controller builds
//! a flash transaction by coalescing pending requests that target distinct
//! dies/planes of that chip (die interleaving + plane sharing), within the limits
//! the flash microarchitecture allows.  The more requests the scheduler has
//! over-committed for the chip, the higher the flash-level parallelism of the
//! transaction — this is exactly the mechanism FARO exploits.

use serde::{Deserialize, Serialize};
use sprinkler_flash::{
    FlashGeometry, FlashOp, FlashTransaction, PhysicalPageAddr, TransactionBuilder,
};
use sprinkler_sim::{Duration, SimTime};

use crate::request::{MemReqId, TagId};

/// A memory request waiting at the controller to join a flash transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingRequest {
    /// The memory request's identifier.
    pub id: MemReqId,
    /// Fully resolved physical address.
    pub addr: PhysicalPageAddr,
    /// The flash operation required.
    pub op: FlashOp,
    /// When the request reached the controller.
    pub delivered_at: SimTime,
    /// Whether this is internal garbage-collection traffic (served with priority).
    pub gc: bool,
    /// The owning tag, if any.
    pub tag: Option<TagId>,
    /// Extra service delay (stale readdressing penalty for schedulers without a
    /// readdressing callback).
    pub extra_delay: Duration,
}

/// The outcome of asking the controller to build a transaction for a chip.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltTransaction {
    /// The coalesced flash transaction.
    pub txn: FlashTransaction,
    /// The memory requests folded into it, in the same order as `txn.requests()`.
    pub members: Vec<MemReqId>,
    /// The largest extra delay among the members.
    pub extra_delay: Duration,
    /// True when any member is GC traffic.
    pub contains_gc: bool,
}

/// Reusable scratch for [`FlashController::build_transaction_with`].
///
/// The controller itself is serializable simulation state, so the scratch
/// lives with the caller (the SSD owns one) and is threaded through each
/// build.  Once its buffers and pools have grown to the coalescing high-water
/// mark, transaction building performs no allocations: the per-build `Vec`s
/// handed out inside [`BuiltTransaction`] come back through
/// [`TxnScratch::recycle_members`] / [`TxnScratch::recycle_requests`] when the
/// transaction completes.
#[derive(Debug, Default)]
pub struct TxnScratch {
    /// Candidate pending-set indices, sorted into service order.
    order: Vec<usize>,
    /// Pending-set indices accepted into the transaction, in builder order.
    accepted: Vec<usize>,
    /// Recycled request buffers for [`TransactionBuilder::new_with_buffer`].
    request_pool: Vec<Vec<PhysicalPageAddr>>,
    /// Recycled member-id buffers for [`BuiltTransaction::members`].
    member_pool: Vec<Vec<MemReqId>>,
}

impl TxnScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a spent request buffer (from
    /// [`FlashTransaction::into_requests`]) to the pool.
    pub fn recycle_requests(&mut self, buffer: Vec<PhysicalPageAddr>) {
        self.request_pool.push(buffer);
    }

    /// Returns a spent member buffer (from [`BuiltTransaction::members`]) to
    /// the pool.
    pub fn recycle_members(&mut self, buffer: Vec<MemReqId>) {
        self.member_pool.push(buffer);
    }

    /// Pre-sizes every buffer to its structural bound so the scratch never
    /// grows on the hot path: `max_pending` bounds a chip's pending set (the
    /// per-chip commitment cap), `max_fold` bounds a transaction's request
    /// count (distinct (die, plane) pairs), and `txn_slots` bounds the number
    /// of member buffers simultaneously checked out (live transactions, at
    /// most one per chip plus one being built).
    pub fn preallocate(&mut self, max_pending: usize, max_fold: usize, txn_slots: usize) {
        self.order.reserve(max_pending);
        self.accepted.reserve(max_pending);
        while self.request_pool.len() < 2 {
            self.request_pool.push(Vec::with_capacity(max_fold));
        }
        while self.member_pool.len() < txn_slots + 1 {
            self.member_pool.push(Vec::with_capacity(max_fold));
        }
    }
}

/// The flash controller of one channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashController {
    channel: usize,
    pending: Vec<Vec<PendingRequest>>,
    delivered: u64,
    coalesced: u64,
}

impl FlashController {
    /// Creates the controller for `channel` with one pending set per chip (way).
    pub fn new(channel: usize, ways: usize) -> Self {
        FlashController {
            channel,
            pending: (0..ways).map(|_| Vec::new()).collect(),
            delivered: 0,
            coalesced: 0,
        }
    }

    /// The channel this controller drives.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// Delivers a memory request into the pending set of its chip.
    ///
    /// # Panics
    ///
    /// Panics if the request's address is not on this controller's channel.
    pub fn deliver(&mut self, request: PendingRequest) {
        assert_eq!(
            request.addr.channel as usize, self.channel,
            "request delivered to the wrong channel controller"
        );
        self.delivered += 1;
        self.pending[request.addr.way as usize].push(request);
    }

    /// Number of requests pending for a chip (way) of this channel.
    pub fn pending_count(&self, way: usize) -> usize {
        self.pending[way].len()
    }

    /// True when a chip has at least one pending request.
    pub fn has_pending(&self, way: usize) -> bool {
        !self.pending[way].is_empty()
    }

    /// Total pending requests across the channel.
    pub fn total_pending(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }

    /// Number of requests delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of requests that were coalesced into multi-request transactions.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Builds the best transaction currently possible for `way`, removing the
    /// selected requests from the pending set.  Returns `None` when nothing is
    /// pending.
    ///
    /// Selection rules:
    /// 1. GC traffic is served before host traffic.
    /// 2. The operation type of the oldest eligible request wins (reads and
    ///    programs are never mixed in one transaction).
    /// 3. Further requests of the same operation are folded in while they target
    ///    distinct (die, plane) pairs — die interleaving and plane sharing.
    pub fn build_transaction(
        &mut self,
        way: usize,
        geometry: &FlashGeometry,
    ) -> Option<BuiltTransaction> {
        let mut scratch = TxnScratch::new();
        self.build_transaction_with(way, geometry, &mut scratch)
    }

    /// [`FlashController::build_transaction`] with caller-provided scratch, so
    /// a warmed-up scratch makes the build allocation-free.
    pub fn build_transaction_with(
        &mut self,
        way: usize,
        geometry: &FlashGeometry,
        scratch: &mut TxnScratch,
    ) -> Option<BuiltTransaction> {
        let queue = &mut self.pending[way];
        if queue.is_empty() {
            return None;
        }
        // Pick the seed request: GC first, then oldest delivery.
        let seed_index = queue
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| (!r.gc, r.delivered_at, r.id))
            .map(|(i, _)| i)?;
        let op = queue[seed_index].op;

        let mut builder = TransactionBuilder::new_with_buffer(
            op,
            geometry.clone(),
            scratch.request_pool.pop().unwrap_or_default(),
        );

        // Candidates of the same op, ordered GC-first then oldest-first, seed
        // guaranteed to be first.  The key is a total order (ids are unique),
        // so the outcome is independent of the pending set's internal order.
        scratch.order.clear();
        scratch
            .order
            .extend((0..queue.len()).filter(|&i| queue[i].op == op));
        scratch.order.sort_by_key(|&i| {
            (
                i != seed_index,
                !queue[i].gc,
                queue[i].delivered_at,
                queue[i].id,
            )
        });

        scratch.accepted.clear();
        for &i in &scratch.order {
            if builder.try_add(queue[i].addr).is_ok() {
                scratch.accepted.push(i);
            }
        }
        debug_assert!(!scratch.accepted.is_empty());
        let txn = builder.build().ok()?;
        if scratch.accepted.len() > 1 {
            self.coalesced += scratch.accepted.len() as u64;
        }

        // Collect member data in builder-insertion order (txn.requests() order)
        // before any removal disturbs the indices.
        let mut members = scratch.member_pool.pop().unwrap_or_default();
        members.clear();
        let mut extra_delay = Duration::ZERO;
        let mut contains_gc = false;
        for &i in &scratch.accepted {
            let request = &queue[i];
            members.push(request.id);
            extra_delay = extra_delay.max(request.extra_delay);
            contains_gc |= request.gc;
        }
        // Extract the chosen requests, largest index first so the remaining
        // indices stay valid.  `swap_remove` reorders the pending set, which
        // is fine: selection above never depends on positional order.
        scratch.accepted.sort_unstable_by(|a, b| b.cmp(a));
        for &i in &scratch.accepted {
            queue.swap_remove(i);
        }
        Some(BuiltTransaction {
            txn,
            members,
            extra_delay,
            contains_gc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinkler_flash::ParallelismLevel;

    fn geometry() -> FlashGeometry {
        FlashGeometry::paper_default()
    }

    fn pending(
        id: u64,
        way: u32,
        die: u32,
        plane: u32,
        op: FlashOp,
        at: u64,
        gc: bool,
    ) -> PendingRequest {
        PendingRequest {
            id: MemReqId(id),
            addr: PhysicalPageAddr {
                channel: 0,
                way,
                die,
                plane,
                block: 1,
                page: 0,
            },
            op,
            delivered_at: SimTime::from_nanos(at),
            gc,
            tag: Some(TagId(id)),
            extra_delay: Duration::ZERO,
        }
    }

    #[test]
    fn empty_controller_builds_nothing() {
        let mut c = FlashController::new(0, 8);
        assert!(c.build_transaction(0, &geometry()).is_none());
        assert_eq!(c.total_pending(), 0);
        assert_eq!(c.channel(), 0);
    }

    #[test]
    fn single_request_builds_non_pal_transaction() {
        let mut c = FlashController::new(0, 8);
        c.deliver(pending(1, 2, 0, 0, FlashOp::Read, 10, false));
        assert_eq!(c.pending_count(2), 1);
        assert!(c.has_pending(2));
        let built = c.build_transaction(2, &geometry()).unwrap();
        assert_eq!(built.txn.parallelism(), ParallelismLevel::NonPal);
        assert_eq!(built.members, vec![MemReqId(1)]);
        assert!(!built.contains_gc);
        assert_eq!(c.pending_count(2), 0);
        assert_eq!(c.delivered(), 1);
        assert_eq!(c.coalesced(), 0);
    }

    #[test]
    fn coalesces_across_dies_and_planes() {
        let mut c = FlashController::new(0, 8);
        c.deliver(pending(1, 0, 0, 0, FlashOp::Read, 10, false));
        c.deliver(pending(2, 0, 0, 1, FlashOp::Read, 11, false));
        c.deliver(pending(3, 0, 1, 0, FlashOp::Read, 12, false));
        c.deliver(pending(4, 0, 1, 1, FlashOp::Read, 13, false));
        let built = c.build_transaction(0, &geometry()).unwrap();
        assert_eq!(built.txn.requests().len(), 4);
        assert_eq!(built.txn.parallelism(), ParallelismLevel::Pal3);
        assert_eq!(c.pending_count(0), 0);
        assert_eq!(c.coalesced(), 4);
    }

    #[test]
    fn plane_conflicts_stay_pending() {
        let mut c = FlashController::new(0, 8);
        c.deliver(pending(1, 0, 0, 0, FlashOp::Read, 10, false));
        c.deliver(pending(2, 0, 0, 0, FlashOp::Read, 11, false));
        let built = c.build_transaction(0, &geometry()).unwrap();
        assert_eq!(built.members, vec![MemReqId(1)]);
        assert_eq!(c.pending_count(0), 1);
        let second = c.build_transaction(0, &geometry()).unwrap();
        assert_eq!(second.members, vec![MemReqId(2)]);
    }

    #[test]
    fn different_ops_are_not_mixed() {
        let mut c = FlashController::new(0, 8);
        c.deliver(pending(1, 0, 0, 0, FlashOp::Read, 10, false));
        c.deliver(pending(2, 0, 1, 0, FlashOp::Program, 11, false));
        let built = c.build_transaction(0, &geometry()).unwrap();
        assert_eq!(built.txn.op(), FlashOp::Read);
        assert_eq!(built.members, vec![MemReqId(1)]);
        let next = c.build_transaction(0, &geometry()).unwrap();
        assert_eq!(next.txn.op(), FlashOp::Program);
    }

    #[test]
    fn oldest_request_decides_the_operation() {
        let mut c = FlashController::new(0, 8);
        c.deliver(pending(1, 0, 0, 0, FlashOp::Program, 20, false));
        c.deliver(pending(2, 0, 1, 0, FlashOp::Read, 10, false));
        let built = c.build_transaction(0, &geometry()).unwrap();
        assert_eq!(built.txn.op(), FlashOp::Read);
    }

    #[test]
    fn gc_traffic_is_prioritized() {
        let mut c = FlashController::new(0, 8);
        c.deliver(pending(1, 0, 0, 0, FlashOp::Read, 10, false));
        c.deliver(pending(2, 0, 0, 1, FlashOp::Program, 50, true));
        let built = c.build_transaction(0, &geometry()).unwrap();
        assert!(built.contains_gc);
        assert_eq!(built.txn.op(), FlashOp::Program);
        assert_eq!(built.members, vec![MemReqId(2)]);
    }

    #[test]
    fn extra_delay_propagates_as_maximum() {
        let mut c = FlashController::new(0, 8);
        let mut a = pending(1, 0, 0, 0, FlashOp::Read, 10, false);
        a.extra_delay = Duration::from_micros(5);
        let mut b = pending(2, 0, 1, 0, FlashOp::Read, 11, false);
        b.extra_delay = Duration::from_micros(9);
        c.deliver(a);
        c.deliver(b);
        let built = c.build_transaction(0, &geometry()).unwrap();
        assert_eq!(built.extra_delay, Duration::from_micros(9));
    }

    #[test]
    #[should_panic(expected = "wrong channel")]
    fn wrong_channel_delivery_panics() {
        let mut c = FlashController::new(1, 8);
        c.deliver(pending(1, 0, 0, 0, FlashOp::Read, 10, false));
    }

    #[test]
    fn members_match_transaction_request_order() {
        let mut c = FlashController::new(0, 8);
        c.deliver(pending(7, 0, 1, 3, FlashOp::Read, 10, false));
        c.deliver(pending(9, 0, 0, 2, FlashOp::Read, 12, false));
        let built = c.build_transaction(0, &geometry()).unwrap();
        assert_eq!(built.members.len(), built.txn.requests().len());
        // The seed (oldest) request is first in both.
        assert_eq!(built.members[0], MemReqId(7));
        assert_eq!(built.txn.requests()[0].die, 1);
        assert_eq!(built.txn.requests()[0].plane, 3);
    }
}
