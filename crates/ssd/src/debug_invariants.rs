//! Deep debug-mode invariant validation across the scheduler's shared state.
//!
//! [`DeviceQueue::validate_candidate_index`] checks the queue's *internal*
//! consistency (slot columns, the direct-mapped tag ring, the columnar
//! candidate index, the read-hazard counting filter).  This module goes one
//! layer up and cross-checks the structures that must agree *with each
//! other* for Sprinkler's chip-level accounting to mean anything:
//!
//! - ledger outstanding counts vs the per-tag [`PageBits`] commit/complete
//!   masks (the ledger is charged exactly once per committed host page and
//!   credited exactly once per completed one, atomically with the bit flips
//!   in `Ssd::commit_memory_request` / `Ssd::complete_mem_request`; GC
//!   requests never touch the ledger);
//! - the read-LPN hazard entries vs a from-scratch rebuild from the queued
//!   tag states;
//! - the FUA reordering-horizon entries vs the queued FUA tags;
//! - per-tag mask sanity (`completed ⊆ committed`, masks bounded by the
//!   request's page count) and per-page placements within geometry bounds;
//! - the ledger's per-round counters and the hard commitment cap.
//!
//! Everything here compiles to a no-op in release builds: callers are the
//! differential property tests and `tests/invariants.rs`, which wrap a
//! scheduler and validate after every round.
//!
//! [`PageBits`]: crate::queue::PageBits

use crate::ledger::CommitmentLedger;
use crate::queue::DeviceQueue;
use crate::scheduler::SchedulerContext;

/// Validates every cross-structure invariant visible from a scheduling
/// context.  Call after a scheduling round (or a completion) in tests; the
/// body is compiled out in release builds.
///
/// # Panics
///
/// Panics (via `debug_assert!`) when any invariant is violated — each
/// message names the structure pair that diverged.
pub fn validate_context(ctx: &SchedulerContext<'_>) {
    validate_round(ctx.queue, ctx.ledger);
}

/// [`validate_context`] for callers holding the queue and ledger directly.
pub fn validate_round(queue: &DeviceQueue, ledger: &CommitmentLedger) {
    #[cfg(debug_assertions)]
    {
        queue.validate_candidate_index();

        let chips = ledger.chip_count();
        let mut expected_outstanding = vec![0u32; chips];
        let mut expected_hazards: Vec<(u64, u64)> = Vec::new();
        let mut expected_fua: Vec<u64> = Vec::new();

        for state in queue.iter_states() {
            let pages = state.pages();
            debug_assert_eq!(
                state.placements.len(),
                pages,
                "tag {:?}: placement table length diverged from the page count",
                state.id
            );
            let mut fully_committed = true;
            for page in 0..pages as u32 {
                let committed = state.committed.get(page as usize);
                let completed = state.completed.get(page as usize);
                debug_assert!(
                    committed || !completed,
                    "tag {:?} page {page}: completed without being committed",
                    state.id
                );
                fully_committed &= committed;
                let placement = state.placements[page as usize];
                debug_assert!(
                    placement.chip < chips,
                    "tag {:?} page {page}: placement chip {} outside geometry ({chips} chips)",
                    state.id,
                    placement.chip
                );
                if committed && !completed {
                    expected_outstanding[placement.chip] += 1;
                }
                if state.host.direction.is_read() && !committed {
                    expected_hazards.push((state.host.lpn_at(page).value(), state.seq));
                }
            }
            if state.host.fua && !fully_committed {
                expected_fua.push(state.seq);
            }
        }

        // Ledger vs PageBits: outstanding commitments per chip must equal the
        // committed-but-incomplete host pages placed there, exactly.
        debug_assert_eq!(
            expected_outstanding,
            ledger.outstanding_slice(),
            "ledger outstanding counts diverged from the queue's commit/complete masks"
        );
        for chip in 0..chips {
            debug_assert!(
                ledger.outstanding(chip) <= ledger.max_committed_per_chip(),
                "chip {chip}: outstanding {} exceeds the hard cap {}",
                ledger.outstanding(chip),
                ledger.max_committed_per_chip()
            );
            debug_assert!(
                ledger.committed_in_round(chip) <= ledger.outstanding(chip),
                "chip {chip}: this round committed {} but only {} are outstanding",
                ledger.committed_in_round(chip),
                ledger.outstanding(chip)
            );
        }

        // Hazard entries vs a rebuild: every uncommitted page of a read tag,
        // keyed (lpn, seq), sorted — the slice behind has_blocking_read.
        expected_hazards.sort_unstable();
        debug_assert_eq!(
            expected_hazards,
            queue.read_hazards(),
            "read-LPN hazard entries diverged from the queued tag states"
        );

        // FUA horizon vs a rebuild: admission seqs of not-fully-committed FUA
        // tags, ascending; horizon_seq() is its head (or MAX when clear).
        expected_fua.sort_unstable();
        debug_assert_eq!(
            expected_fua,
            queue.fua_pending(),
            "FUA horizon entries diverged from the queued tag states"
        );
        debug_assert_eq!(
            queue.horizon_seq(),
            expected_fua.first().copied().unwrap_or(u64::MAX),
            "horizon_seq diverged from the first pending FUA entry"
        );
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (queue, ledger);
    }
}
