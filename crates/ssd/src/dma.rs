//! Host interface DMA engine model.
//!
//! The NVMHC's DMA engine moves page payloads between the host buffer and the SSD's
//! internal buffer (Fig 2).  It is a single shared resource with a fixed bandwidth;
//! transfers are serialized in FIFO order.  Write data must cross it before the
//! corresponding memory requests can be delivered to the flash controllers; read
//! data crosses it after the flash transaction completes.

use serde::{Deserialize, Serialize};
use sprinkler_sim::{Duration, SimTime};

/// The shared host DMA engine.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::dma::DmaEngine;
/// use sprinkler_sim::SimTime;
///
/// let mut dma = DmaEngine::new(1_000_000_000); // 1 GB/s
/// let first = dma.transfer(SimTime::ZERO, 2048);
/// let second = dma.transfer(SimTime::ZERO, 2048);
/// assert!(second > first); // transfers serialize on the engine
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaEngine {
    bytes_per_sec: u64,
    free_at: SimTime,
    total_bytes: u64,
    total_transfers: u64,
    busy: Duration,
}

impl DmaEngine {
    /// Creates a DMA engine with the given bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "DMA bandwidth must be non-zero");
        DmaEngine {
            bytes_per_sec,
            free_at: SimTime::ZERO,
            total_bytes: 0,
            total_transfers: 0,
            busy: Duration::ZERO,
        }
    }

    /// Time needed to move `bytes` across the host interface.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        let ns = bytes.saturating_mul(1_000_000_000) / self.bytes_per_sec;
        Duration::from_nanos(ns.max(1))
    }

    /// Enqueues a transfer of `bytes` requested at `now` and returns its completion
    /// time.  Transfers are serviced in request order.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.free_at);
        let duration = self.transfer_time(bytes);
        let done = start + duration;
        self.free_at = done;
        self.total_bytes += bytes;
        self.total_transfers += 1;
        self.busy += duration;
        done
    }

    /// When the engine next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total number of transfers served.
    pub fn total_transfers(&self) -> u64 {
        self.total_transfers
    }

    /// Accumulated transfer (busy) time.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let dma = DmaEngine::new(1_000_000_000);
        assert_eq!(dma.transfer_time(0), Duration::ZERO);
        assert_eq!(dma.transfer_time(1_000), Duration::from_micros(1));
        assert_eq!(dma.transfer_time(2_000), Duration::from_micros(2));
    }

    #[test]
    fn transfers_serialize_in_fifo_order() {
        let mut dma = DmaEngine::new(1_000_000_000);
        let a = dma.transfer(SimTime::ZERO, 1_000);
        let b = dma.transfer(SimTime::ZERO, 1_000);
        assert_eq!(a, SimTime::from_micros(1));
        assert_eq!(b, SimTime::from_micros(2));
        assert_eq!(dma.free_at(), b);
        assert_eq!(dma.total_bytes(), 2_000);
        assert_eq!(dma.total_transfers(), 2);
        assert_eq!(dma.busy_time(), Duration::from_micros(2));
    }

    #[test]
    fn idle_gaps_are_not_counted_busy() {
        let mut dma = DmaEngine::new(1_000_000_000);
        dma.transfer(SimTime::ZERO, 1_000);
        let later = dma.transfer(SimTime::from_micros(10), 1_000);
        assert_eq!(later, SimTime::from_micros(11));
        assert_eq!(dma.busy_time(), Duration::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bandwidth_is_rejected() {
        let _ = DmaEngine::new(0);
    }
}
