//! Error types for the SSD substrate.

use std::error::Error;
use std::fmt;

use sprinkler_flash::FlashError;

/// Errors reported by the SSD substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SsdError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// An error bubbled up from the flash model.
    Flash(FlashError),
    /// The simulated SSD ran out of physical space and could not allocate a write.
    OutOfSpace,
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::InvalidConfig(reason) => write!(f, "invalid SSD configuration: {reason}"),
            SsdError::Flash(e) => write!(f, "flash error: {e}"),
            SsdError::OutOfSpace => write!(f, "SSD is out of physical space"),
        }
    }
}

impl Error for SsdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SsdError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for SsdError {
    fn from(e: FlashError) -> Self {
        SsdError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_meaningful() {
        let e = SsdError::InvalidConfig("queue_depth must be non-zero".into());
        assert!(e.to_string().contains("queue_depth"));
        assert!(SsdError::OutOfSpace.to_string().contains("space"));
        let f = SsdError::from(FlashError::EmptyTransaction);
        assert!(f.to_string().contains("flash"));
    }

    #[test]
    fn source_chains_flash_errors() {
        use std::error::Error as _;
        let e = SsdError::Flash(FlashError::EmptyTransaction);
        assert!(e.source().is_some());
        assert!(SsdError::OutOfSpace.source().is_none());
    }
}
