//! Physical page allocation: striping policy, per-plane active blocks, free-block
//! lists, and per-block valid-page accounting.
//!
//! The allocator implements a *static* plane-selection policy (the placement of a
//! logical page's chip/die/plane is a pure function of its LPN and the configured
//! [`AllocationPolicy`]), combined with *dynamic* block/page selection inside the
//! plane (append to the plane's active block).  Static plane selection is what lets
//! the FTL preprocessor expose a stable physical layout preview to the schedulers
//! before the data is actually written — the capability PAS and Sprinkler rely on.

use serde::{Deserialize, Serialize};
use sprinkler_flash::{FlashGeometry, Lpn, PhysicalPageAddr};

use crate::config::AllocationPolicy;

/// Per-plane allocation state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct PlaneState {
    /// Blocks with no valid data and fully erased, available for allocation.
    free_blocks: Vec<u32>,
    /// The block currently being appended to, if any.
    active_block: Option<u32>,
    /// Next page offset to program in the active block.
    next_page: u32,
    /// Valid page count per block in this plane.
    valid_count: Vec<u16>,
    /// Valid page bitmap per block (pages_per_block ≤ 128).
    valid_bits: Vec<u128>,
    /// Whether each block has been handed out (active or fully written) since its
    /// last erase.
    in_use: Vec<bool>,
}

impl PlaneState {
    fn new(blocks_per_plane: usize) -> Self {
        PlaneState {
            // Keep block order so allocation is deterministic: lowest block first.
            free_blocks: (0..blocks_per_plane as u32).rev().collect(),
            active_block: None,
            next_page: 0,
            valid_count: vec![0; blocks_per_plane],
            valid_bits: vec![0; blocks_per_plane],
            in_use: vec![false; blocks_per_plane],
        }
    }
}

/// The physical location of one plane in the SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlaneLocation {
    /// Channel index.
    pub channel: u32,
    /// Chip position within the channel.
    pub way: u32,
    /// Die within the chip.
    pub die: u32,
    /// Plane within the die.
    pub plane: u32,
}

/// Page allocator and valid-page directory for the whole SSD.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::ftl::Allocator;
/// use sprinkler_ssd::config::AllocationPolicy;
/// use sprinkler_flash::{FlashGeometry, Lpn};
///
/// let g = FlashGeometry::small_test();
/// let mut alloc = Allocator::new(g.clone(), AllocationPolicy::ChannelWayDiePlane);
/// let place = alloc.static_placement(Lpn::new(0));
/// let addr = alloc.allocate(alloc.plane_index_of(place)).unwrap();
/// assert_eq!(addr.channel, place.channel);
/// assert_eq!(addr.page, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocator {
    geometry: FlashGeometry,
    policy: AllocationPolicy,
    planes: Vec<PlaneState>,
}

impl Allocator {
    /// Creates an allocator with every block free.
    pub fn new(geometry: FlashGeometry, policy: AllocationPolicy) -> Self {
        let planes = (0..geometry.total_planes())
            .map(|_| PlaneState::new(geometry.blocks_per_plane))
            .collect();
        Allocator {
            geometry,
            policy,
            planes,
        }
    }

    /// The geometry this allocator manages.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Total number of planes.
    pub fn plane_count(&self) -> usize {
        self.planes.len()
    }

    /// The static plane-selection function: which channel/way/die/plane a logical
    /// page is placed on, independent of when it is written.
    pub fn static_placement(&self, lpn: Lpn) -> PlaneLocation {
        let g = &self.geometry;
        let mut idx = lpn.value();
        let (channel, way, die, plane) = match self.policy {
            AllocationPolicy::ChannelWayDiePlane => {
                let channel = idx % g.channels as u64;
                idx /= g.channels as u64;
                let way = idx % g.chips_per_channel as u64;
                idx /= g.chips_per_channel as u64;
                let die = idx % g.dies_per_chip as u64;
                idx /= g.dies_per_chip as u64;
                let plane = idx % g.planes_per_die as u64;
                (channel, way, die, plane)
            }
            AllocationPolicy::WayChannelDiePlane => {
                let way = idx % g.chips_per_channel as u64;
                idx /= g.chips_per_channel as u64;
                let channel = idx % g.channels as u64;
                idx /= g.channels as u64;
                let die = idx % g.dies_per_chip as u64;
                idx /= g.dies_per_chip as u64;
                let plane = idx % g.planes_per_die as u64;
                (channel, way, die, plane)
            }
            AllocationPolicy::DiePlaneChannelWay => {
                let die = idx % g.dies_per_chip as u64;
                idx /= g.dies_per_chip as u64;
                let plane = idx % g.planes_per_die as u64;
                idx /= g.planes_per_die as u64;
                let channel = idx % g.channels as u64;
                idx /= g.channels as u64;
                let way = idx % g.chips_per_channel as u64;
                (channel, way, die, plane)
            }
        };
        PlaneLocation {
            channel: channel as u32,
            way: way as u32,
            die: die as u32,
            plane: plane as u32,
        }
    }

    /// Flat plane index of a plane location.
    pub fn plane_index_of(&self, loc: PlaneLocation) -> usize {
        let g = &self.geometry;
        let chip = g.chip_index(loc.channel, loc.way);
        (chip * g.dies_per_chip + loc.die as usize) * g.planes_per_die + loc.plane as usize
    }

    /// Flat plane index of a physical page address.
    pub fn plane_index_of_addr(&self, addr: PhysicalPageAddr) -> usize {
        self.plane_index_of(PlaneLocation {
            channel: addr.channel,
            way: addr.way,
            die: addr.die,
            plane: addr.plane,
        })
    }

    /// The plane location of a flat plane index.
    pub fn plane_location(&self, plane_index: usize) -> PlaneLocation {
        let g = &self.geometry;
        let plane = (plane_index % g.planes_per_die) as u32;
        let rest = plane_index / g.planes_per_die;
        let die = (rest % g.dies_per_chip) as u32;
        let chip = rest / g.dies_per_chip;
        let loc = g.chip_location(chip);
        PlaneLocation {
            channel: loc.channel,
            way: loc.way,
            die,
            plane,
        }
    }

    /// A deterministic physical address for reads of never-written logical pages.
    /// Keeps unmapped reads exercising the same parallelism as mapped ones.
    pub fn deterministic_addr(&self, lpn: Lpn) -> PhysicalPageAddr {
        let g = &self.geometry;
        let loc = self.static_placement(lpn);
        let planes_total =
            (g.channels * g.chips_per_channel * g.dies_per_chip * g.planes_per_die) as u64;
        let seq = lpn.value() / planes_total;
        PhysicalPageAddr {
            channel: loc.channel,
            way: loc.way,
            die: loc.die,
            plane: loc.plane,
            block: (seq / g.pages_per_block as u64 % g.blocks_per_plane as u64) as u32,
            page: (seq % g.pages_per_block as u64) as u32,
        }
    }

    /// Number of free (erased, unallocated) blocks in a plane.
    pub fn free_blocks(&self, plane_index: usize) -> usize {
        self.planes[plane_index].free_blocks.len()
    }

    /// Allocates the next physical page in `plane_index`, opening a new active
    /// block from the free list when necessary.  Returns `None` when the plane has
    /// neither an active block with room nor a free block (GC must reclaim space
    /// first).
    pub fn allocate(&mut self, plane_index: usize) -> Option<PhysicalPageAddr> {
        let pages_per_block = self.geometry.pages_per_block as u32;
        let loc = self.plane_location(plane_index);
        let state = &mut self.planes[plane_index];

        if state.active_block.is_none() || state.next_page >= pages_per_block {
            let block = state.free_blocks.pop()?;
            state.in_use[block as usize] = true;
            state.active_block = Some(block);
            state.next_page = 0;
        }
        let block = state.active_block.expect("active block was just ensured");
        let page = state.next_page;
        state.next_page += 1;
        Some(PhysicalPageAddr {
            channel: loc.channel,
            way: loc.way,
            die: loc.die,
            plane: loc.plane,
            block,
            page,
        })
    }

    /// Marks the page at `addr` valid (it now holds live data).
    pub fn mark_valid(&mut self, addr: PhysicalPageAddr) {
        let plane = self.plane_index_of_addr(addr);
        let state = &mut self.planes[plane];
        let bit = 1u128 << addr.page;
        if state.valid_bits[addr.block as usize] & bit == 0 {
            state.valid_bits[addr.block as usize] |= bit;
            state.valid_count[addr.block as usize] += 1;
        }
    }

    /// Marks the page at `addr` invalid (its data was overwritten or migrated).
    pub fn mark_invalid(&mut self, addr: PhysicalPageAddr) {
        let plane = self.plane_index_of_addr(addr);
        let state = &mut self.planes[plane];
        let bit = 1u128 << addr.page;
        if state.valid_bits[addr.block as usize] & bit != 0 {
            state.valid_bits[addr.block as usize] &= !bit;
            state.valid_count[addr.block as usize] -= 1;
        }
    }

    /// Number of valid pages in `block` of `plane_index`.
    pub fn valid_pages_in_block(&self, plane_index: usize, block: u32) -> usize {
        self.planes[plane_index].valid_count[block as usize] as usize
    }

    /// The page offsets holding valid data in `block` of `plane_index`.
    pub fn valid_page_offsets(&self, plane_index: usize, block: u32) -> Vec<u32> {
        let bits = self.planes[plane_index].valid_bits[block as usize];
        (0..self.geometry.pages_per_block as u32)
            .filter(|&p| bits & (1u128 << p) != 0)
            .collect()
    }

    /// Chooses a garbage-collection victim in `plane_index`: the in-use,
    /// non-active block with the fewest valid pages (greedy policy).  Returns
    /// `None` if no block is eligible.
    pub fn victim_block(&self, plane_index: usize) -> Option<u32> {
        let state = &self.planes[plane_index];
        let mut best: Option<(u32, u16)> = None;
        for block in 0..self.geometry.blocks_per_plane as u32 {
            if !state.in_use[block as usize] {
                continue;
            }
            if state.active_block == Some(block) {
                continue;
            }
            let valid = state.valid_count[block as usize];
            match best {
                None => best = Some((block, valid)),
                Some((_, best_valid)) if valid < best_valid => best = Some((block, valid)),
                _ => {}
            }
        }
        best.map(|(block, _)| block)
    }

    /// Erases `block` in `plane_index`: clears its valid directory and returns it
    /// to the free list.
    pub fn erase_block(&mut self, plane_index: usize, block: u32) {
        let state = &mut self.planes[plane_index];
        state.valid_bits[block as usize] = 0;
        state.valid_count[block as usize] = 0;
        state.in_use[block as usize] = false;
        if state.active_block == Some(block) {
            state.active_block = None;
            state.next_page = 0;
        }
        state.free_blocks.insert(0, block);
    }

    /// Global block index of an address (used by the wear tracker).
    pub fn global_block_index(&self, addr: PhysicalPageAddr) -> usize {
        self.plane_index_of_addr(addr) * self.geometry.blocks_per_plane + addr.block as usize
    }

    /// Total number of blocks in the SSD.
    pub fn total_blocks(&self) -> usize {
        self.geometry.total_planes() * self.geometry.blocks_per_plane
    }

    /// Total valid pages across the SSD (live data footprint, in pages).
    pub fn total_valid_pages(&self) -> u64 {
        self.planes
            .iter()
            .map(|p| p.valid_count.iter().map(|&c| c as u64).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> Allocator {
        Allocator::new(
            FlashGeometry::small_test(),
            AllocationPolicy::ChannelWayDiePlane,
        )
    }

    #[test]
    fn static_placement_stripes_channels_first() {
        let a = alloc();
        let g = a.geometry().clone();
        let p0 = a.static_placement(Lpn::new(0));
        let p1 = a.static_placement(Lpn::new(1));
        let p2 = a.static_placement(Lpn::new(g.channels as u64));
        assert_eq!(p0.channel, 0);
        assert_eq!(p1.channel, 1);
        assert_eq!(p2.channel, 0);
        assert_eq!(p2.way, 1);
    }

    #[test]
    fn static_placement_policies_differ() {
        let g = FlashGeometry::small_test();
        let cwdp = Allocator::new(g.clone(), AllocationPolicy::ChannelWayDiePlane);
        let wcdp = Allocator::new(g.clone(), AllocationPolicy::WayChannelDiePlane);
        let dpcw = Allocator::new(g, AllocationPolicy::DiePlaneChannelWay);
        // LPN 1 hits channel 1 under CWDP, way 1 under WCDP, die 1 under DPCW.
        assert_eq!(cwdp.static_placement(Lpn::new(1)).channel, 1);
        assert_eq!(wcdp.static_placement(Lpn::new(1)).way, 1);
        assert_eq!(dpcw.static_placement(Lpn::new(1)).die, 1);
    }

    #[test]
    fn plane_index_roundtrip() {
        let a = alloc();
        for plane_index in 0..a.plane_count() {
            let loc = a.plane_location(plane_index);
            assert_eq!(a.plane_index_of(loc), plane_index);
        }
    }

    #[test]
    fn consecutive_lpns_spread_over_all_planes() {
        let a = alloc();
        let total = a.plane_count();
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..total as u64 {
            seen.insert(a.plane_index_of(a.static_placement(Lpn::new(lpn))));
        }
        assert_eq!(seen.len(), total, "every plane should be hit exactly once");
    }

    #[test]
    fn allocation_fills_blocks_sequentially() {
        let mut a = alloc();
        let pages_per_block = a.geometry().pages_per_block as u32;
        let first = a.allocate(0).unwrap();
        assert_eq!(first.block, 0);
        assert_eq!(first.page, 0);
        for expected_page in 1..pages_per_block {
            let addr = a.allocate(0).unwrap();
            assert_eq!(addr.block, 0);
            assert_eq!(addr.page, expected_page);
        }
        // Block 0 is now full; the next allocation opens block 1.
        let next = a.allocate(0).unwrap();
        assert_eq!(next.block, 1);
        assert_eq!(next.page, 0);
    }

    #[test]
    fn allocation_exhausts_and_returns_none() {
        let mut a = alloc();
        let g = a.geometry().clone();
        let capacity = g.blocks_per_plane * g.pages_per_block;
        for _ in 0..capacity {
            assert!(a.allocate(3).is_some());
        }
        assert!(a.allocate(3).is_none());
        assert_eq!(a.free_blocks(3), 0);
    }

    #[test]
    fn valid_accounting_and_victim_selection() {
        let mut a = alloc();
        // Fill block 0 and block 1 of plane 0 with valid pages.
        let mut addrs = Vec::new();
        for _ in 0..2 * a.geometry().pages_per_block {
            let addr = a.allocate(0).unwrap();
            a.mark_valid(addr);
            addrs.push(addr);
        }
        assert_eq!(a.valid_pages_in_block(0, 0), a.geometry().pages_per_block);
        // Invalidate most of block 0.
        for addr in addrs.iter().filter(|ad| ad.block == 0).take(6) {
            a.mark_invalid(*addr);
        }
        assert_eq!(a.valid_pages_in_block(0, 0), 2);
        // Open a third block so block 1 is not active; victim should be block 0.
        let addr = a.allocate(0).unwrap();
        assert_eq!(addr.block, 2);
        let victim = a.victim_block(0).unwrap();
        assert_eq!(victim, 0);
        let survivors = a.valid_page_offsets(0, 0);
        assert_eq!(survivors.len(), 2);
    }

    #[test]
    fn erase_returns_block_to_free_list() {
        let mut a = alloc();
        let blocks = a.geometry().blocks_per_plane;
        let addr = a.allocate(0).unwrap();
        a.mark_valid(addr);
        assert_eq!(a.free_blocks(0), blocks - 1);
        a.erase_block(0, addr.block);
        assert_eq!(a.free_blocks(0), blocks);
        assert_eq!(a.valid_pages_in_block(0, addr.block), 0);
        // After erase the block can be reused from the start.
        let fresh = a.allocate(0).unwrap();
        assert_eq!(fresh.page, 0);
    }

    #[test]
    fn double_mark_valid_is_idempotent() {
        let mut a = alloc();
        let addr = a.allocate(0).unwrap();
        a.mark_valid(addr);
        a.mark_valid(addr);
        assert_eq!(a.valid_pages_in_block(0, addr.block), 1);
        a.mark_invalid(addr);
        a.mark_invalid(addr);
        assert_eq!(a.valid_pages_in_block(0, addr.block), 0);
    }

    #[test]
    fn victim_requires_in_use_blocks() {
        let a = alloc();
        assert!(a.victim_block(0).is_none());
    }

    #[test]
    fn global_block_index_is_unique() {
        let a = alloc();
        let g = a.geometry().clone();
        let mut seen = std::collections::HashSet::new();
        for plane in 0..a.plane_count() {
            let loc = a.plane_location(plane);
            for block in 0..g.blocks_per_plane as u32 {
                let addr = PhysicalPageAddr {
                    channel: loc.channel,
                    way: loc.way,
                    die: loc.die,
                    plane: loc.plane,
                    block,
                    page: 0,
                };
                assert!(seen.insert(a.global_block_index(addr)));
            }
        }
        assert_eq!(seen.len(), a.total_blocks());
    }

    #[test]
    fn deterministic_addr_is_stable_and_in_range() {
        let a = alloc();
        let g = a.geometry().clone();
        for lpn in 0..500u64 {
            let addr = a.deterministic_addr(Lpn::new(lpn));
            assert!(g.check_addr(addr).is_ok(), "lpn {lpn} gave {addr}");
            assert_eq!(addr, a.deterministic_addr(Lpn::new(lpn)));
        }
    }

    #[test]
    fn total_valid_pages_counts_live_data() {
        let mut a = alloc();
        assert_eq!(a.total_valid_pages(), 0);
        let addr = a.allocate(0).unwrap();
        a.mark_valid(addr);
        let addr2 = a.allocate(5).unwrap();
        a.mark_valid(addr2);
        assert_eq!(a.total_valid_pages(), 2);
    }
}
