//! Garbage collection planning and live-data migration bookkeeping.
//!
//! GC is the most important source of live data migration (§4.3): valid pages of a
//! victim block are read, re-programmed elsewhere, the mapping is updated, and the
//! victim is erased.  The FTL updates its metadata when the plan is built; the SSD
//! substrate turns the plan into real flash traffic (reads, programs, an erase)
//! whose timing competes with host I/O, and fires the readdressing callback for
//! schedulers that support it.

use serde::{Deserialize, Serialize};
use sprinkler_flash::{Lpn, PhysicalPageAddr};

/// One live page moved by garbage collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageMigration {
    /// The logical page that moved.
    pub lpn: Lpn,
    /// Where its data used to live.
    pub from: PhysicalPageAddr,
    /// Where its data lives now.
    pub to: PhysicalPageAddr,
    /// True when the page moved to a *different* plane/die/chip — the only case in
    /// which Sprinkler's readdressing callback needs to fire (§4.3).
    pub crossed_plane: bool,
}

/// A fully planned garbage-collection invocation for one plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcPlan {
    /// The plane being collected (flat plane index).
    pub plane_index: usize,
    /// The victim block within that plane.
    pub victim_block: u32,
    /// Valid pages that must be migrated before the erase.
    pub migrations: Vec<PageMigration>,
    /// Address (any page) of the victim block, used to issue the erase.
    pub erase_addr: PhysicalPageAddr,
}

impl GcPlan {
    /// Number of pages that must be read and re-programmed.
    pub fn migration_count(&self) -> usize {
        self.migrations.len()
    }

    /// Number of migrations that crossed a plane boundary (and therefore require a
    /// readdressing callback).
    pub fn crossed_plane_count(&self) -> usize {
        self.migrations.iter().filter(|m| m.crossed_plane).count()
    }

    /// The total flash operations this plan will generate: one read and one program
    /// per migration plus one erase.
    pub fn flash_ops(&self) -> usize {
        self.migrations.len() * 2 + 1
    }
}

/// Counters describing garbage-collection activity over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcStats {
    /// Number of GC invocations.
    pub invocations: u64,
    /// Valid pages migrated.
    pub pages_migrated: u64,
    /// Migrations that crossed a plane boundary.
    pub cross_plane_migrations: u64,
    /// Blocks erased by GC.
    pub blocks_erased: u64,
}

impl GcStats {
    /// Records one executed plan.
    pub fn record_plan(&mut self, plan: &GcPlan) {
        self.invocations += 1;
        self.pages_migrated += plan.migration_count() as u64;
        self.cross_plane_migrations += plan.crossed_plane_count() as u64;
        self.blocks_erased += 1;
    }

    /// Write amplification contributed by GC: extra programs per GC-erased block's
    /// worth of pages (0 when GC never ran).
    pub fn migrations_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.pages_migrated as f64 / self.invocations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(block: u32, page: u32) -> PhysicalPageAddr {
        PhysicalPageAddr {
            channel: 0,
            way: 0,
            die: 0,
            plane: 0,
            block,
            page,
        }
    }

    fn sample_plan() -> GcPlan {
        GcPlan {
            plane_index: 0,
            victim_block: 3,
            migrations: vec![
                PageMigration {
                    lpn: Lpn::new(10),
                    from: addr(3, 0),
                    to: addr(5, 0),
                    crossed_plane: false,
                },
                PageMigration {
                    lpn: Lpn::new(11),
                    from: addr(3, 1),
                    to: PhysicalPageAddr {
                        plane: 1,
                        ..addr(5, 1)
                    },
                    crossed_plane: true,
                },
            ],
            erase_addr: addr(3, 0),
        }
    }

    #[test]
    fn plan_counts() {
        let plan = sample_plan();
        assert_eq!(plan.migration_count(), 2);
        assert_eq!(plan.crossed_plane_count(), 1);
        assert_eq!(plan.flash_ops(), 5);
    }

    #[test]
    fn stats_accumulate_plans() {
        let mut stats = GcStats::default();
        assert_eq!(stats.migrations_per_invocation(), 0.0);
        stats.record_plan(&sample_plan());
        stats.record_plan(&sample_plan());
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.pages_migrated, 4);
        assert_eq!(stats.cross_plane_migrations, 2);
        assert_eq!(stats.blocks_erased, 2);
        assert_eq!(stats.migrations_per_invocation(), 2.0);
    }
}
