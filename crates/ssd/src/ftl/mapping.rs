//! Page-level logical→physical address mapping.
//!
//! The paper's firmware uses a pure page-level mapping FTL (§5.1).  The map is
//! sparse (hash-based) so simulated SSDs with very large geometries only pay for
//! the logical footprint a workload actually touches.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sprinkler_flash::{Lpn, Ppn};

/// Bidirectional page-level map: LPN → PPN and PPN → LPN.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::ftl::PageMap;
/// use sprinkler_flash::{Lpn, Ppn};
///
/// let mut map = PageMap::new();
/// assert!(map.lookup(Lpn::new(7)).is_none());
/// map.map(Lpn::new(7), Ppn::new(100));
/// assert_eq!(map.lookup(Lpn::new(7)), Some(Ppn::new(100)));
/// assert_eq!(map.lpn_of(Ppn::new(100)), Some(Lpn::new(7)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageMap {
    l2p: HashMap<u64, u64>,
    p2l: HashMap<u64, u64>,
}

impl PageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped logical pages.
    pub fn len(&self) -> usize {
        self.l2p.len()
    }

    /// True when nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.l2p.is_empty()
    }

    /// Looks up the physical location of a logical page.
    pub fn lookup(&self, lpn: Lpn) -> Option<Ppn> {
        self.l2p.get(&lpn.value()).copied().map(Ppn::new)
    }

    /// Reverse lookup: which logical page lives at `ppn`.
    pub fn lpn_of(&self, ppn: Ppn) -> Option<Lpn> {
        self.p2l.get(&ppn.value()).copied().map(Lpn::new)
    }

    /// Maps `lpn` to `ppn`, returning the previous physical location if the page
    /// was already mapped (that location now holds stale data and should be
    /// invalidated by the caller).
    pub fn map(&mut self, lpn: Lpn, ppn: Ppn) -> Option<Ppn> {
        let old = self.l2p.insert(lpn.value(), ppn.value());
        if let Some(old_ppn) = old {
            self.p2l.remove(&old_ppn);
        }
        self.p2l.insert(ppn.value(), lpn.value());
        old.map(Ppn::new)
    }

    /// Removes the mapping for `lpn`, returning its physical location.
    pub fn unmap(&mut self, lpn: Lpn) -> Option<Ppn> {
        let old = self.l2p.remove(&lpn.value());
        if let Some(old_ppn) = old {
            self.p2l.remove(&old_ppn);
        }
        old.map(Ppn::new)
    }

    /// Iterates over all (lpn, ppn) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Lpn, Ppn)> + '_ {
        self.l2p.iter().map(|(&l, &p)| (Lpn::new(l), Ppn::new(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_has_no_entries() {
        let map = PageMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert!(map.lookup(Lpn::new(1)).is_none());
        assert!(map.lpn_of(Ppn::new(1)).is_none());
    }

    #[test]
    fn map_and_lookup_roundtrip() {
        let mut map = PageMap::new();
        assert!(map.map(Lpn::new(5), Ppn::new(50)).is_none());
        assert_eq!(map.lookup(Lpn::new(5)), Some(Ppn::new(50)));
        assert_eq!(map.lpn_of(Ppn::new(50)), Some(Lpn::new(5)));
        assert_eq!(map.len(), 1);
        assert!(!map.is_empty());
    }

    #[test]
    fn remap_returns_stale_location() {
        let mut map = PageMap::new();
        map.map(Lpn::new(5), Ppn::new(50));
        let old = map.map(Lpn::new(5), Ppn::new(99));
        assert_eq!(old, Some(Ppn::new(50)));
        assert_eq!(map.lookup(Lpn::new(5)), Some(Ppn::new(99)));
        // The stale physical page no longer reverse-maps.
        assert!(map.lpn_of(Ppn::new(50)).is_none());
        assert_eq!(map.lpn_of(Ppn::new(99)), Some(Lpn::new(5)));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn unmap_removes_both_directions() {
        let mut map = PageMap::new();
        map.map(Lpn::new(1), Ppn::new(10));
        assert_eq!(map.unmap(Lpn::new(1)), Some(Ppn::new(10)));
        assert!(map.lookup(Lpn::new(1)).is_none());
        assert!(map.lpn_of(Ppn::new(10)).is_none());
        assert!(map.unmap(Lpn::new(1)).is_none());
    }

    #[test]
    fn iter_visits_all_mappings() {
        let mut map = PageMap::new();
        for i in 0..10 {
            map.map(Lpn::new(i), Ppn::new(1000 + i));
        }
        let mut pairs: Vec<(u64, u64)> = map.iter().map(|(l, p)| (l.value(), p.value())).collect();
        pairs.sort_unstable();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[0], (0, 1000));
        assert_eq!(pairs[9], (9, 1009));
    }
}
