//! The Flash Translation Layer: page-level mapping, allocation, garbage collection
//! planning, wear accounting, and the physical-layout preview (preprocessor) the
//! schedulers rely on.

mod allocator;
mod gc;
mod mapping;
mod wear;

pub use allocator::{Allocator, PlaneLocation};
pub use gc::{GcPlan, GcStats, PageMigration};
pub use mapping::PageMap;
pub use wear::WearTracker;

use serde::{Deserialize, Serialize};
use sprinkler_flash::{FlashGeometry, Lpn, PhysicalPageAddr};
use sprinkler_sim::DeterministicRng;

use crate::config::AllocationPolicy;
use crate::request::{Direction, Placement};

/// Counters describing FTL activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host page reads translated.
    pub host_reads: u64,
    /// Host page writes allocated.
    pub host_writes: u64,
    /// Reads of never-written logical pages (served from a deterministic location).
    pub unmapped_reads: u64,
    /// Writes whose target plane was full and had to spill to another plane.
    pub spilled_writes: u64,
}

/// The result of allocating a physical page for a host (or GC) write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteAllocation {
    /// The freshly allocated physical page.
    pub addr: PhysicalPageAddr,
    /// The stale physical page this write superseded, if the LPN was mapped.
    pub invalidated: Option<PhysicalPageAddr>,
    /// True when the page could not be placed on its statically preferred plane.
    pub spilled: bool,
}

/// The page-level FTL.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::ftl::Ftl;
/// use sprinkler_ssd::config::AllocationPolicy;
/// use sprinkler_ssd::request::Direction;
/// use sprinkler_flash::{FlashGeometry, Lpn};
///
/// let mut ftl = Ftl::new(FlashGeometry::small_test(), AllocationPolicy::ChannelWayDiePlane, 1);
/// let w = ftl.allocate_write(Lpn::new(3)).unwrap();
/// assert!(w.invalidated.is_none());
/// // The preview agrees with where the data actually went.
/// let preview = ftl.preview(Lpn::new(3), Direction::Read);
/// assert_eq!(preview.channel, w.addr.channel);
/// assert_eq!(preview.die, w.addr.die);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ftl {
    geometry: FlashGeometry,
    map: PageMap,
    alloc: Allocator,
    wear: WearTracker,
    gc_watermark: usize,
    stats: FtlStats,
    gc_stats: GcStats,
}

impl Ftl {
    /// Creates an FTL for `geometry` with the given allocation policy and GC
    /// free-block watermark (GC triggers when a plane's free blocks drop to the
    /// watermark or below).
    pub fn new(geometry: FlashGeometry, policy: AllocationPolicy, gc_watermark: usize) -> Self {
        let alloc = Allocator::new(geometry.clone(), policy);
        let wear = WearTracker::new(alloc.total_blocks());
        Ftl {
            geometry,
            map: PageMap::new(),
            alloc,
            wear,
            gc_watermark,
            stats: FtlStats::default(),
            gc_stats: GcStats::default(),
        }
    }

    /// The geometry this FTL manages.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Activity counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Garbage-collection counters.
    pub fn gc_stats(&self) -> GcStats {
        self.gc_stats
    }

    /// Wear (erase-count) tracker.
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Number of mapped logical pages (live data footprint).
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// The FTL preprocessor of Algorithm 1: the physical layout (chip, die, plane)
    /// an LPN resolves to, *without* performing any allocation.  For mapped pages
    /// this is where the data lives; for unmapped pages (and all writes, thanks to
    /// the static plane-selection policy) it is where the data will be placed.
    pub fn preview(&self, lpn: Lpn, direction: Direction) -> Placement {
        if direction.is_read() {
            if let Some(ppn) = self.map.lookup(lpn) {
                let addr = self.geometry.addr_of(ppn);
                return Placement::from_addr(addr, self.geometry.chips_per_channel);
            }
        }
        let loc = self.alloc.static_placement(lpn);
        Placement {
            chip: self.geometry.chip_index(loc.channel, loc.way),
            channel: loc.channel,
            way: loc.way,
            die: loc.die,
            plane: loc.plane,
        }
    }

    /// Resolves a read to a physical page.  Unmapped reads are served from a
    /// deterministic location so they still exercise the flash array.
    pub fn translate_read(&mut self, lpn: Lpn) -> PhysicalPageAddr {
        self.stats.host_reads += 1;
        match self.map.lookup(lpn) {
            Some(ppn) => self.geometry.addr_of(ppn),
            None => {
                self.stats.unmapped_reads += 1;
                self.alloc.deterministic_addr(lpn)
            }
        }
    }

    /// Allocates a physical page for a write of `lpn`, updating the mapping and
    /// valid-page directory.  Falls back to neighbouring planes when the preferred
    /// plane is out of free space ("spilling"), and returns `None` only when the
    /// entire SSD is full.
    pub fn allocate_write(&mut self, lpn: Lpn) -> Option<WriteAllocation> {
        self.stats.host_writes += 1;
        let preferred = self.alloc.plane_index_of(self.alloc.static_placement(lpn));
        let plane_count = self.alloc.plane_count();
        let mut chosen = None;
        for offset in 0..plane_count {
            let plane = (preferred + offset) % plane_count;
            if let Some(addr) = self.alloc.allocate(plane) {
                chosen = Some((addr, offset != 0));
                break;
            }
        }
        let (addr, spilled) = chosen?;
        if spilled {
            self.stats.spilled_writes += 1;
        }
        let invalidated = self
            .map
            .map(lpn, self.geometry.ppn_of(addr))
            .map(|old| self.geometry.addr_of(old));
        if let Some(old) = invalidated {
            self.alloc.mark_invalid(old);
        }
        self.alloc.mark_valid(addr);
        Some(WriteAllocation {
            addr,
            invalidated,
            spilled,
        })
    }

    /// Free blocks remaining in the plane that `lpn` statically maps to.
    pub fn free_blocks_for(&self, lpn: Lpn) -> usize {
        let plane = self.alloc.plane_index_of(self.alloc.static_placement(lpn));
        self.alloc.free_blocks(plane)
    }

    /// The flat plane index an address belongs to.
    pub fn plane_index_of_addr(&self, addr: PhysicalPageAddr) -> usize {
        self.alloc.plane_index_of_addr(addr)
    }

    /// Whether the plane holding `addr` has dropped to the GC watermark.
    pub fn needs_gc(&self, plane_index: usize) -> bool {
        self.alloc.free_blocks(plane_index) <= self.gc_watermark
    }

    /// Plans (and applies the metadata side of) one garbage-collection invocation
    /// for `plane_index`: picks the greedy victim, migrates its valid pages'
    /// mappings to fresh locations, erases the victim, and returns the plan whose
    /// flash work the SSD must still simulate.  Returns `None` when the plane has
    /// no eligible victim.
    pub fn collect_plane(&mut self, plane_index: usize) -> Option<GcPlan> {
        let victim = self.alloc.victim_block(plane_index)?;
        let loc = self.alloc.plane_location(plane_index);
        let valid_offsets = self.alloc.valid_page_offsets(plane_index, victim);
        let mut migrations = Vec::with_capacity(valid_offsets.len());
        for page in valid_offsets {
            let from = PhysicalPageAddr {
                channel: loc.channel,
                way: loc.way,
                die: loc.die,
                plane: loc.plane,
                block: victim,
                page,
            };
            let Some(lpn) = self.map.lpn_of(self.geometry.ppn_of(from)) else {
                // Directory and map disagree; treat the page as stale.
                self.alloc.mark_invalid(from);
                continue;
            };
            // Prefer a destination in the same plane; spill outwards if needed.
            let plane_count = self.alloc.plane_count();
            let mut dest = None;
            for offset in 0..plane_count {
                let candidate = (plane_index + offset) % plane_count;
                // Never migrate into the victim block itself.
                if let Some(addr) = self.alloc.allocate(candidate) {
                    if candidate == plane_index && addr.block == victim {
                        continue;
                    }
                    dest = Some((addr, candidate != plane_index));
                    break;
                }
            }
            let (to, crossed_plane) = dest?;
            self.map.map(lpn, self.geometry.ppn_of(to));
            self.alloc.mark_invalid(from);
            self.alloc.mark_valid(to);
            migrations.push(PageMigration {
                lpn,
                from,
                to,
                crossed_plane,
            });
        }
        let erase_addr = PhysicalPageAddr {
            channel: loc.channel,
            way: loc.way,
            die: loc.die,
            plane: loc.plane,
            block: victim,
            page: 0,
        };
        self.alloc.erase_block(plane_index, victim);
        self.wear
            .record_erase(self.alloc.global_block_index(erase_addr));
        let plan = GcPlan {
            plane_index,
            victim_block: victim,
            migrations,
            erase_addr,
        };
        self.gc_stats.record_plan(&plan);
        Some(plan)
    }

    /// Pre-conditions the SSD to a fragmented state: issues `target_utilization`
    /// (0.0–1.0) of the physical capacity as random-LPN writes over a logical span
    /// covering half the capacity, so remapping produces invalid pages exactly as
    /// the paper's "filled by 95% with 1 MB random writes" preparation does.
    /// Metadata only — no simulated time passes.
    pub fn precondition(&mut self, target_utilization: f64, seed: u64) {
        let total_pages = self.geometry.total_pages() as u64;
        let logical_span = (total_pages / 2).max(1);
        let writes = (total_pages as f64 * target_utilization.clamp(0.0, 1.0)) as u64;
        let mut rng = DeterministicRng::seeded(seed);
        for _ in 0..writes {
            let lpn = Lpn::new(rng.uniform_u64(logical_span));
            if self.allocate_write(lpn).is_none() {
                break;
            }
        }
        // Pre-conditioning is not host traffic; keep the host counters clean.
        self.stats.host_writes = 0;
    }

    /// Total valid (live) pages across the SSD.
    pub fn live_pages(&self) -> u64 {
        self.alloc.total_valid_pages()
    }

    /// Free blocks in an arbitrary plane (mainly for tests and reporting).
    pub fn free_blocks_in_plane(&self, plane_index: usize) -> usize {
        self.alloc.free_blocks(plane_index)
    }

    /// Number of planes managed.
    pub fn plane_count(&self) -> usize {
        self.alloc.plane_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> Ftl {
        Ftl::new(
            FlashGeometry::small_test(),
            AllocationPolicy::ChannelWayDiePlane,
            1,
        )
    }

    #[test]
    fn preview_matches_allocation_for_writes() {
        let mut f = ftl();
        for lpn in 0..32u64 {
            let preview = f.preview(Lpn::new(lpn), Direction::Write);
            let alloc = f.allocate_write(Lpn::new(lpn)).unwrap();
            assert_eq!(preview.channel, alloc.addr.channel, "lpn {lpn}");
            assert_eq!(preview.way, alloc.addr.way);
            assert_eq!(preview.die, alloc.addr.die);
            assert_eq!(preview.plane, alloc.addr.plane);
            assert!(!alloc.spilled);
        }
        assert_eq!(f.stats().host_writes, 32);
    }

    #[test]
    fn preview_of_mapped_read_follows_the_data() {
        let mut f = ftl();
        let lpn = Lpn::new(5);
        let w = f.allocate_write(lpn).unwrap();
        let preview = f.preview(lpn, Direction::Read);
        assert_eq!(preview.channel, w.addr.channel);
        assert_eq!(preview.plane, w.addr.plane);
    }

    #[test]
    fn translate_read_unmapped_is_deterministic() {
        let mut f = ftl();
        let a = f.translate_read(Lpn::new(99));
        let b = f.translate_read(Lpn::new(99));
        assert_eq!(a, b);
        assert_eq!(f.stats().unmapped_reads, 2);
        assert_eq!(f.stats().host_reads, 2);
    }

    #[test]
    fn translate_read_mapped_returns_write_location() {
        let mut f = ftl();
        let lpn = Lpn::new(7);
        let w = f.allocate_write(lpn).unwrap();
        assert_eq!(f.translate_read(lpn), w.addr);
        assert_eq!(f.stats().unmapped_reads, 0);
    }

    #[test]
    fn overwrite_invalidates_previous_location() {
        let mut f = ftl();
        let lpn = Lpn::new(3);
        let first = f.allocate_write(lpn).unwrap();
        assert!(first.invalidated.is_none());
        let second = f.allocate_write(lpn).unwrap();
        assert_eq!(second.invalidated, Some(first.addr));
        assert_ne!(second.addr, first.addr);
    }

    #[test]
    fn writes_spill_when_plane_is_full() {
        let mut f = ftl();
        let g = f.geometry().clone();
        let plane_capacity = (g.blocks_per_plane * g.pages_per_block) as u64;
        let planes_total = g.total_planes() as u64;
        // Hammer a single static plane with more distinct LPNs than it can hold.
        // LPNs that are `planes_total` apart share the same static plane.
        let mut spilled = false;
        for i in 0..plane_capacity + 4 {
            let lpn = Lpn::new(i * planes_total);
            let alloc = f.allocate_write(lpn).unwrap();
            spilled |= alloc.spilled;
        }
        assert!(spilled, "overflowing a plane must spill to a neighbour");
        assert!(f.stats().spilled_writes > 0);
    }

    #[test]
    fn gc_reclaims_invalidated_blocks() {
        let mut f = ftl();
        let g = f.geometry().clone();
        let planes_total = g.total_planes() as u64;
        // Write the same small set of LPNs (all in plane 0) repeatedly so blocks
        // fill with mostly-stale data.
        let lpns: Vec<Lpn> = (0..4).map(|i| Lpn::new(i * planes_total)).collect();
        for round in 0..((g.blocks_per_plane * g.pages_per_block) / 4 - 1) {
            let _ = round;
            for &lpn in &lpns {
                f.allocate_write(lpn).unwrap();
            }
        }
        let plane = 0;
        assert!(f.needs_gc(plane) || f.free_blocks_in_plane(plane) <= 2);
        let before_free = f.free_blocks_in_plane(plane);
        let plan = f.collect_plane(plane).expect("victim should exist");
        assert_eq!(plan.plane_index, plane);
        // The victim was mostly stale, so few migrations are expected.
        assert!(plan.migration_count() <= 4);
        assert!(f.free_blocks_in_plane(plane) >= before_free);
        assert_eq!(f.gc_stats().invocations, 1);
        assert_eq!(f.wear().total(), 1);
        // Migrated LPNs still resolve somewhere valid.
        for m in &plan.migrations {
            assert_eq!(f.translate_read(m.lpn), m.to);
        }
    }

    #[test]
    fn gc_without_victims_returns_none() {
        let mut f = ftl();
        assert!(f.collect_plane(0).is_none());
    }

    #[test]
    fn precondition_fills_requested_fraction() {
        let mut f = ftl();
        f.precondition(0.5, 42);
        let total = f.geometry().total_pages() as u64;
        // Live pages are bounded by the logical span (half the capacity) and by
        // what was written.
        assert!(f.live_pages() > 0);
        assert!(f.live_pages() <= total / 2 + 1);
        assert_eq!(
            f.stats().host_writes,
            0,
            "preconditioning is not host traffic"
        );
        assert!(f.mapped_pages() > 0);
    }

    #[test]
    fn needs_gc_tracks_watermark() {
        let mut f = Ftl::new(
            FlashGeometry::small_test(),
            AllocationPolicy::ChannelWayDiePlane,
            2,
        );
        assert!(!f.needs_gc(0));
        let g = f.geometry().clone();
        let planes_total = g.total_planes() as u64;
        // Consume blocks of plane 0 until only the watermark remains.
        let mut i = 0u64;
        while f.free_blocks_in_plane(0) > 2 {
            f.allocate_write(Lpn::new(i * planes_total)).unwrap();
            i += 1;
        }
        assert!(f.needs_gc(0));
    }
}
