//! Block erase (wear) accounting.

use serde::{Deserialize, Serialize};

/// Tracks per-block erase counts and summarizes wear across the SSD.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::ftl::WearTracker;
///
/// let mut wear = WearTracker::new(4);
/// wear.record_erase(1);
/// wear.record_erase(1);
/// wear.record_erase(2);
/// assert_eq!(wear.count(1), 2);
/// assert_eq!(wear.max(), 2);
/// assert_eq!(wear.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearTracker {
    counts: Vec<u32>,
    total: u64,
}

impl WearTracker {
    /// Creates a tracker for `blocks` blocks, all with zero erases.
    pub fn new(blocks: usize) -> Self {
        WearTracker {
            counts: vec![0; blocks],
            total: 0,
        }
    }

    /// Number of tracked blocks.
    pub fn blocks(&self) -> usize {
        self.counts.len()
    }

    /// Records an erase of the block at `block_index`.
    pub fn record_erase(&mut self, block_index: usize) {
        self.counts[block_index] += 1;
        self.total += 1;
    }

    /// Erase count of one block.
    pub fn count(&self, block_index: usize) -> u32 {
        self.counts[block_index]
    }

    /// Total erases across all blocks.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Highest per-block erase count.
    pub fn max(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Lowest per-block erase count.
    pub fn min(&self) -> u32 {
        self.counts.iter().copied().min().unwrap_or(0)
    }

    /// Mean per-block erase count.
    pub fn mean(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.total as f64 / self.counts.len() as f64
    }

    /// The wear imbalance: max − min erase count.  A perfectly wear-levelled SSD
    /// keeps this small.
    pub fn imbalance(&self) -> u32 {
        self.max().saturating_sub(self.min())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tracker_is_zeroed() {
        let wear = WearTracker::new(8);
        assert_eq!(wear.blocks(), 8);
        assert_eq!(wear.total(), 0);
        assert_eq!(wear.max(), 0);
        assert_eq!(wear.min(), 0);
        assert_eq!(wear.mean(), 0.0);
        assert_eq!(wear.imbalance(), 0);
    }

    #[test]
    fn erases_accumulate_per_block() {
        let mut wear = WearTracker::new(4);
        wear.record_erase(0);
        wear.record_erase(0);
        wear.record_erase(3);
        assert_eq!(wear.count(0), 2);
        assert_eq!(wear.count(1), 0);
        assert_eq!(wear.count(3), 1);
        assert_eq!(wear.total(), 3);
        assert_eq!(wear.max(), 2);
        assert_eq!(wear.min(), 0);
        assert_eq!(wear.imbalance(), 2);
        assert!((wear.mean() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_safe() {
        let wear = WearTracker::new(0);
        assert_eq!(wear.max(), 0);
        assert_eq!(wear.mean(), 0.0);
    }
}
