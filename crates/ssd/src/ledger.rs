//! Per-chip commitment and occupancy accounting.
//!
//! [`CommitmentLedger`] is the single bookkeeper for how many committed-but-
//! incomplete memory requests each flash chip holds.  The SSD substrate charges
//! it on every commitment, credits it on every retirement, and hands schedulers
//! a read-only view of it through
//! [`SchedulerContext`](crate::scheduler::SchedulerContext); nothing else in the
//! simulator touches the counters.
//!
//! The counters are stored struct-of-arrays — one dense `u32` slice of
//! outstanding counts indexed by flat chip index ([`CommitmentLedger::
//! outstanding_slice`]) plus a parallel busy-flag vector — so scheduler round
//! loops read chip headroom straight out of a contiguous array instead of
//! striding over per-chip record structs.
//!
//! # Invariants
//!
//! The ledger keeps two counters per chip and they are *never* conflated:
//!
//! * **`outstanding`** — committed-but-incomplete memory requests, across
//!   rounds.  Incremented by [`CommitmentLedger::commit`], decremented by
//!   [`CommitmentLedger::retire`].  It never exceeds the per-chip cap and never
//!   underflows: a retirement without a matching commitment is a bug and trips a
//!   debug assertion rather than saturating silently.
//! * **`committed_in_round`** — commitments made since the last
//!   [`CommitmentLedger::begin_round`].  Purely observational: it audits round
//!   behavior, it is *not* charged against the cap.
//!
//! Headroom per chip per round is therefore the full
//! `max_committed_per_chip - outstanding`.  (The seed substrate charged the
//! per-round scratch *on top of* `outstanding` even though `outstanding` was
//! already incremented on the same code path, double-counting same-round
//! commits and silently halving the effective over-commitment headroom FARO
//! depends on — the bug this module exists to make structurally impossible.)

use serde::{Deserialize, Serialize};

/// Occupancy of one flash chip, as visible to the scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipOccupancy {
    /// Flat chip index.
    pub chip: usize,
    /// True while the chip is executing a flash transaction.
    pub busy: bool,
    /// Committed host memory requests that have not completed yet (in DMA,
    /// pending at the controller, executing, or returning data).
    pub outstanding: usize,
}

/// The per-chip commitment ledger.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::ledger::CommitmentLedger;
///
/// let mut ledger = CommitmentLedger::new(2, 4);
/// ledger.begin_round();
/// // The full cap is available within a single round.
/// for _ in 0..4 {
///     ledger.commit(0);
/// }
/// assert_eq!(ledger.outstanding(0), 4);
/// assert_eq!(ledger.committed_in_round(0), 4);
/// assert_eq!(ledger.headroom(0), 0);
/// assert_eq!(ledger.headroom(1), 4);
/// ledger.retire(0);
/// assert_eq!(ledger.headroom(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitmentLedger {
    max_committed_per_chip: usize,
    /// Outstanding committed-but-incomplete requests per chip (dense column).
    outstanding: Vec<u32>,
    /// Busy flag per chip (parallel column).
    busy: Vec<bool>,
    /// Per-round commit counts; only the chips listed in `round_dirty` hold
    /// non-zero entries between rounds.
    round_committed: Vec<usize>,
    round_dirty: Vec<usize>,
}

impl CommitmentLedger {
    /// Creates a ledger for `total_chips` idle chips under the given per-chip
    /// commitment cap.
    pub fn new(total_chips: usize, max_committed_per_chip: usize) -> Self {
        debug_assert!(max_committed_per_chip > 0, "the cap must be non-zero");
        CommitmentLedger {
            max_committed_per_chip,
            outstanding: vec![0; total_chips],
            busy: vec![false; total_chips],
            round_committed: vec![0; total_chips],
            round_dirty: Vec::new(),
        }
    }

    /// Creates a ledger with the given pre-existing outstanding counts (one per
    /// chip) — fixture support for scheduler tests and tools that need a ledger
    /// mid-flight without replaying every commitment.
    ///
    /// # Panics
    ///
    /// Panics if any count exceeds `max_committed_per_chip`: such a state is
    /// unreachable through the audited API.
    pub fn from_outstanding(max_committed_per_chip: usize, outstanding: &[usize]) -> Self {
        let mut ledger = Self::new(outstanding.len(), max_committed_per_chip);
        for (chip, &count) in outstanding.iter().enumerate() {
            assert!(
                count <= max_committed_per_chip,
                "chip {chip}: outstanding {count} exceeds the cap {max_committed_per_chip}"
            );
            ledger.outstanding[chip] = count as u32;
        }
        ledger
    }

    /// The hard cap on committed-but-incomplete memory requests per chip.
    pub fn max_committed_per_chip(&self) -> usize {
        self.max_committed_per_chip
    }

    /// Number of chips tracked.
    pub fn chip_count(&self) -> usize {
        self.outstanding.len()
    }

    /// The dense per-chip outstanding column, indexed by flat chip index — the
    /// slice scheduler round loops iterate directly.
    pub fn outstanding_slice(&self) -> &[u32] {
        &self.outstanding
    }

    /// One chip's occupancy as a record (0/idle for out-of-range indices).
    pub fn chip_occupancy(&self, chip: usize) -> ChipOccupancy {
        ChipOccupancy {
            chip,
            busy: self.is_busy(chip),
            outstanding: self.outstanding(chip),
        }
    }

    /// Outstanding committed requests for a chip (0 for out-of-range indices).
    pub fn outstanding(&self, chip: usize) -> usize {
        self.outstanding.get(chip).map_or(0, |&c| c as usize)
    }

    /// Whether a chip is currently executing a transaction.
    pub fn is_busy(&self, chip: usize) -> bool {
        self.busy.get(chip).copied().unwrap_or(false)
    }

    /// Remaining commit capacity for a chip: the full cap minus `outstanding`.
    /// `outstanding` already reflects same-round commits, so this is the whole
    /// double-count fix — nothing else is charged.
    // lint: hot-path
    pub fn headroom(&self, chip: usize) -> usize {
        self.max_committed_per_chip
            .saturating_sub(self.outstanding(chip))
    }

    /// Opens a new scheduling round: resets the per-round commit counters.
    // lint: hot-path
    pub fn begin_round(&mut self) {
        for &chip in &self.round_dirty {
            self.round_committed[chip] = 0;
        }
        self.round_dirty.clear();
    }

    /// Commitments charged to a chip since the last
    /// [`CommitmentLedger::begin_round`].
    pub fn committed_in_round(&self, chip: usize) -> usize {
        self.round_committed.get(chip).copied().unwrap_or(0)
    }

    /// Charges one commitment to a chip.  Must only be called with headroom
    /// available; a call at zero headroom is a scheduler-enforcement bug.
    // lint: hot-path
    pub fn commit(&mut self, chip: usize) {
        debug_assert!(
            self.headroom(chip) > 0,
            "chip {chip}: commit beyond the cap of {}",
            self.max_committed_per_chip
        );
        if self.round_committed[chip] == 0 {
            self.round_dirty.push(chip);
        }
        self.round_committed[chip] += 1;
        self.outstanding[chip] += 1;
        self.audit(chip);
    }

    /// Credits one retirement (memory-request completion) to a chip.
    ///
    /// An unmatched retirement never silently saturates: it trips a debug
    /// assertion, and in release builds the counter is left at zero.
    // lint: hot-path
    pub fn retire(&mut self, chip: usize) {
        debug_assert!(
            self.outstanding(chip) > 0,
            "chip {chip}: retire without a matching commitment (outstanding underflow)"
        );
        if let Some(entry) = self.outstanding.get_mut(chip) {
            *entry = entry.saturating_sub(1);
        }
        self.audit(chip);
    }

    /// Records whether a chip is executing a transaction.
    pub fn set_busy(&mut self, chip: usize, busy: bool) {
        if let Some(entry) = self.busy.get_mut(chip) {
            *entry = busy;
        }
    }

    /// Debug-build audit of the per-chip invariants: `outstanding` stays within
    /// the cap, and the per-round count never exceeds what could have been
    /// committed.  Compiled out of release builds.
    #[inline]
    fn audit(&self, chip: usize) {
        #[cfg(debug_assertions)]
        {
            assert!(
                (self.outstanding[chip] as usize) <= self.max_committed_per_chip,
                "chip {chip}: outstanding {} exceeds the cap {}",
                self.outstanding[chip],
                self.max_committed_per_chip
            );
            assert!(
                self.round_committed[chip] <= self.max_committed_per_chip,
                "chip {chip}: {} same-round commits exceed the cap {}",
                self.round_committed[chip],
                self.max_committed_per_chip
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = chip;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cap_is_available_within_one_round() {
        let mut ledger = CommitmentLedger::new(1, 8);
        ledger.begin_round();
        for expected in 1..=8 {
            assert!(ledger.headroom(0) > 0);
            ledger.commit(0);
            assert_eq!(ledger.outstanding(0), expected);
            assert_eq!(ledger.committed_in_round(0), expected);
        }
        // The cap binds at exactly max_committed_per_chip, not ceil(max / 2).
        assert_eq!(ledger.headroom(0), 0);
    }

    #[test]
    fn rounds_reset_the_scratch_but_not_outstanding() {
        let mut ledger = CommitmentLedger::new(2, 4);
        ledger.begin_round();
        ledger.commit(0);
        ledger.commit(0);
        ledger.commit(1);
        ledger.begin_round();
        assert_eq!(ledger.committed_in_round(0), 0);
        assert_eq!(ledger.committed_in_round(1), 0);
        assert_eq!(ledger.outstanding(0), 2);
        assert_eq!(ledger.outstanding(1), 1);
        ledger.commit(0);
        assert_eq!(ledger.committed_in_round(0), 1);
        assert_eq!(ledger.outstanding(0), 3);
    }

    #[test]
    fn retire_credits_headroom_back() {
        let mut ledger = CommitmentLedger::new(1, 2);
        ledger.begin_round();
        ledger.commit(0);
        ledger.commit(0);
        assert_eq!(ledger.headroom(0), 0);
        ledger.retire(0);
        assert_eq!(ledger.headroom(0), 1);
        assert_eq!(ledger.outstanding(0), 1);
        ledger.retire(0);
        assert_eq!(ledger.outstanding(0), 0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "underflow"))]
    fn unmatched_retire_is_an_audited_bug_not_a_saturation() {
        let mut ledger = CommitmentLedger::new(1, 2);
        ledger.retire(0);
        // Release builds keep the counter at zero instead of wrapping.
        assert_eq!(ledger.outstanding(0), 0);
        // Make the debug expectation unmistakable if the assertion is removed.
        #[cfg(debug_assertions)]
        panic!("retire must panic before reaching this point (underflow)");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "beyond the cap"))]
    fn commit_beyond_the_cap_is_an_audited_bug() {
        let mut ledger = CommitmentLedger::new(1, 1);
        ledger.begin_round();
        ledger.commit(0);
        ledger.commit(0);
        #[cfg(debug_assertions)]
        panic!("commit must panic before reaching this point (beyond the cap)");
    }

    #[test]
    fn busy_flags_are_tracked_per_chip() {
        let mut ledger = CommitmentLedger::new(3, 4);
        ledger.set_busy(1, true);
        assert!(!ledger.is_busy(0));
        assert!(ledger.is_busy(1));
        ledger.set_busy(1, false);
        assert!(!ledger.is_busy(1));
        // Out-of-range chips are inert.
        ledger.set_busy(99, true);
        assert!(!ledger.is_busy(99));
        assert_eq!(ledger.outstanding(99), 0);
        assert_eq!(ledger.headroom(99), 4);
    }

    #[test]
    fn from_outstanding_seeds_mid_flight_state() {
        let ledger = CommitmentLedger::from_outstanding(4, &[0, 2, 4]);
        assert_eq!(ledger.chip_count(), 3);
        assert_eq!(ledger.outstanding(1), 2);
        assert_eq!(ledger.headroom(1), 2);
        assert_eq!(ledger.headroom(2), 0);
        assert_eq!(ledger.chip_occupancy(2).chip, 2);
        assert_eq!(ledger.outstanding_slice(), &[0, 2, 4]);
        assert_eq!(ledger.max_committed_per_chip(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds the cap")]
    fn from_outstanding_rejects_over_cap_state() {
        let _ = CommitmentLedger::from_outstanding(2, &[3]);
    }
}
