//! Many-chip SSD system substrate for the Sprinkler reproduction.
//!
//! This crate implements the SSD architecture of §2 of the paper — everything the
//! schedulers need to sit on top of:
//!
//! * the NVMHC device-level queue and memory-request composition pipeline
//!   ([`queue`], [`request`], [`dma`]),
//! * the per-chip commitment/occupancy ledger that enforces the over-commitment
//!   cap with full per-round headroom ([`ledger`]),
//! * per-channel flash controllers that coalesce committed memory requests into
//!   flash transactions with die interleaving and plane sharing ([`controller`],
//!   [`channel`]),
//! * a page-level FTL with static plane striping, greedy garbage collection, and
//!   wear accounting ([`ftl`]),
//! * the [`scheduler::IoScheduler`] trait the paper's controllers (VAS, PAS,
//!   SPK1–3 in the `sprinkler-core` crate) implement,
//! * the event-driven simulator itself ([`ssd::Ssd`]) and the run metrics every
//!   figure of the evaluation is derived from ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use sprinkler_ssd::{Ssd, SsdConfig};
//! use sprinkler_ssd::scheduler::CommitAllScheduler;
//! use sprinkler_ssd::request::{Direction, HostRequest};
//! use sprinkler_flash::Lpn;
//! use sprinkler_sim::SimTime;
//!
//! let mut trace = Vec::new();
//! for i in 0..16u64 {
//!     trace.push(HostRequest::new(i, SimTime::from_micros(i * 20), Direction::Read,
//!                                 Lpn::new(i * 8), 8));
//! }
//! let ssd = Ssd::new(SsdConfig::small_test(), Box::new(CommitAllScheduler::new())).unwrap();
//! let metrics = ssd.run(trace);
//! assert_eq!(metrics.io_count, 16);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cand;
pub mod channel;
pub mod config;
pub mod controller;
pub mod debug_invariants;
pub mod dma;
pub mod error;
pub mod ftl;
pub mod ledger;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod scheduler;
pub mod ssd;

pub use cand::{pack_pri, pri_die, pri_page, pri_plane, CandidateView};
pub use config::{AllocationPolicy, GcConfig, SsdConfig};
pub use debug_invariants::{validate_context, validate_round};
pub use error::SsdError;
pub use ledger::{ChipOccupancy, CommitmentLedger};
pub use metrics::{
    latency_bucket_bounds, merged_latency_quantile, weighted_mean_latency_ns, ExecutionBreakdown,
    FlpBreakdown, MetricsCollector, RunMetrics, TenantLaneSpec, TenantMetrics,
};
pub use request::{Direction, HostRequest, MemReqId, MemoryRequest, Placement, TagId};
pub use scheduler::{Commitment, IoScheduler, SchedulerContext};
pub use ssd::Ssd;
