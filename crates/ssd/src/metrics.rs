//! Run metrics: everything the paper's evaluation section measures.
//!
//! The [`MetricsCollector`] is fed by the SSD simulator while it runs; at the end
//! of a run it is frozen into a [`RunMetrics`] value that the experiment harness
//! turns into the rows and series of the paper's tables and figures.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use sprinkler_flash::ParallelismLevel;
use sprinkler_sim::{Duration, Histogram, MeanStat, SimTime, TelemetryCounters, TelemetrySnapshot};

use crate::ftl::GcStats;

/// First inclusive bucket bound of the latency histogram, in nanoseconds.
const LATENCY_HIST_START_NS: u64 = 1_000;
/// Number of exponential latency buckets (excluding the overflow bucket).
const LATENCY_HIST_BUCKETS: usize = 27;

/// The inclusive upper bounds of the latency histogram every run records:
/// exponential buckets from 1 µs to ~67 s, shared by all [`RunMetrics`] so
/// per-device bucket counts can be merged exactly (see
/// [`merged_latency_quantile`]).
pub fn latency_bucket_bounds() -> Vec<u64> {
    Histogram::exponential(LATENCY_HIST_START_NS, LATENCY_HIST_BUCKETS)
        .bounds()
        .to_vec()
}

/// Exact quantile of the union of several runs' latency samples, computed from
/// their shared-bound latency bucket counts ([`RunMetrics::latency_buckets`]).
///
/// All runs record latencies into histograms with identical bounds
/// ([`latency_bucket_bounds`]), so summing bucket counts elementwise yields the
/// histogram a single collector observing every I/O would have built; the
/// quantile of that merged histogram is returned (bucket upper bound, or the
/// overall maximum latency for the overflow bucket — the same convention as a
/// single run's `p99_latency_ns`).  Runs with no recorded buckets (legacy or
/// empty) contribute nothing.  Returns 0 when no samples exist.
pub fn merged_latency_quantile<'a>(runs: impl IntoIterator<Item = &'a RunMetrics>, q: f64) -> u64 {
    let mut counts = vec![0u64; LATENCY_HIST_BUCKETS + 1];
    let mut max_latency = 0u64;
    for run in runs {
        // A run that contributed no bucket counts must not contribute its
        // `max_latency_ns` either: the overflow-bucket answer would otherwise
        // report a latency absent from the merged samples.
        if run.latency_buckets.iter().all(|&count| count == 0) {
            continue;
        }
        max_latency = max_latency.max(run.max_latency_ns);
        for (slot, &count) in counts.iter_mut().zip(&run.latency_buckets) {
            *slot += count;
        }
    }
    // One shared quantile convention: the walk and rounding live in
    // `Histogram`, so merged and per-run quantiles can never diverge.
    Histogram::quantile_from_counts(&latency_bucket_bounds(), &counts, max_latency, q)
}

/// I/O-count-weighted mean latency across several runs, in nanoseconds — the
/// average a single collector observing every run's I/Os would report.
/// Returns 0 when no I/Os were completed.
pub fn weighted_mean_latency_ns<'a>(runs: impl IntoIterator<Item = &'a RunMetrics>) -> f64 {
    let mut ios = 0u64;
    let mut weighted = 0.0f64;
    for run in runs {
        ios += run.io_count;
        weighted += run.avg_latency_ns * run.io_count as f64;
    }
    if ios == 0 {
        0.0
    } else {
        weighted / ios as f64
    }
}

/// Fractions of memory requests served at each flash-level parallelism class
/// (Fig 14).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlpBreakdown {
    /// Served with no flash-level parallelism.
    pub non_pal: f64,
    /// Served via plane sharing.
    pub pal1: f64,
    /// Served via die interleaving.
    pub pal2: f64,
    /// Served via die interleaving combined with plane sharing.
    pub pal3: f64,
}

impl FlpBreakdown {
    /// The four fractions in `[NON-PAL, PAL1, PAL2, PAL3]` order.
    pub fn as_array(&self) -> [f64; 4] {
        [self.non_pal, self.pal1, self.pal2, self.pal3]
    }

    /// Weighted average parallelism class (0 = NON-PAL … 3 = PAL3); a scalar
    /// summary used in assertions and reports.
    pub fn mean_level(&self) -> f64 {
        self.pal1 + 2.0 * self.pal2 + 3.0 * self.pal3
    }
}

/// Execution-time breakdown fractions (Fig 13).  Fractions are of total chip-time
/// (elapsed time × number of chips) and sum to ≤ 1, the remainder being idle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionBreakdown {
    /// Time chips spent driving bus operations (commands, addresses, payload).
    pub bus_operation: f64,
    /// Time transactions waited for a busy channel.
    pub bus_contention: f64,
    /// Time flash memory cells were active.
    pub memory_operation: f64,
    /// Remaining (idle) fraction.
    pub idle: f64,
}

/// All measurements from one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Scheduler that produced this run.
    pub scheduler: String,
    /// Host I/O requests completed.
    pub io_count: u64,
    /// Completed reads.
    pub read_ios: u64,
    /// Completed writes.
    pub write_ios: u64,
    /// Bytes returned to the host by reads.
    pub bytes_read: u64,
    /// Bytes accepted from the host by writes.
    pub bytes_written: u64,
    /// Simulated time from the first arrival to the last completion, in ns.
    pub elapsed_ns: u64,
    /// Simulated instant of the first host arrival, ns (0 when no I/Os
    /// arrived).  Together with [`RunMetrics::run_end_ns`] this places the
    /// run's activity window on the simulation clock, so independent runs
    /// (e.g. the devices of a striped array) can merge their windows as a
    /// *union* rather than assuming they coincide.
    pub run_start_ns: u64,
    /// Simulated instant the run's activity ended (last completion or final
    /// event), ns; `run_end_ns - run_start_ns == elapsed_ns`.
    pub run_end_ns: u64,
    /// I/O bandwidth in KB/s (the unit of Fig 10a).
    pub bandwidth_kb_per_sec: f64,
    /// I/O operations per second (Fig 10b).
    pub iops: f64,
    /// Mean device-level latency per I/O request in ns (Fig 10c).
    pub avg_latency_ns: f64,
    /// 99th-percentile latency in ns.
    pub p99_latency_ns: u64,
    /// Maximum latency in ns.
    pub max_latency_ns: u64,
    /// Total time host requests waited for a device-queue slot, in ns (Fig 10d is
    /// this value normalized to VAS).
    pub queue_stall_ns: u64,
    /// Peak number of host requests buffered *outside* the device queue at any
    /// instant.  The streaming replay path bounds this by the queue depth, so a
    /// multi-million-I/O replay runs in memory proportional to the outstanding
    /// work, not the trace length.
    pub peak_host_backlog: u64,
    /// Peak number of pending simulation events at any instant; bounded by the
    /// in-flight work (the eager replay of the seed held one arrival event per
    /// trace record up front).
    pub peak_pending_events: u64,
    /// Mean chip utilization: busy time / elapsed, averaged over chips (Figs 6/15).
    pub chip_utilization: f64,
    /// Inter-chip idleness (Fig 11a).
    pub inter_chip_idleness: f64,
    /// Intra-chip idleness (Fig 11b).
    pub intra_chip_idleness: f64,
    /// Flash-level parallelism breakdown (Fig 14).
    pub flp: FlpBreakdown,
    /// Execution-time breakdown (Fig 13).
    pub execution: ExecutionBreakdown,
    /// Number of flash transactions executed (Fig 16).
    pub transactions: u64,
    /// Number of memory requests served.
    pub memory_requests: u64,
    /// Memory requests folded per transaction, on average.
    pub requests_per_transaction: f64,
    /// Garbage collection statistics (Fig 17).
    pub gc: GcStats,
    /// Per-bucket latency sample counts over the shared exponential bounds of
    /// [`latency_bucket_bounds`], with one trailing overflow bucket.  Because
    /// every run uses the same bounds, bucket counts from independent runs
    /// (e.g. the devices of a striped array) merge exactly — see
    /// [`merged_latency_quantile`].
    pub latency_buckets: Vec<u64>,
    /// Optional per-I/O latency time series `(host request id, latency ns)`
    /// (Fig 12); populated only when series recording is enabled.
    pub latency_series: Vec<(u64, u64)>,
    /// Always-on hot-path telemetry counters, frozen at finalize.  Summed
    /// elementwise when device runs are aggregated into an array summary.
    pub telemetry: TelemetrySnapshot,
    /// Per-tenant metric slices, in tenant-lane order.  Empty unless the run
    /// was fed through the multi-tenant admission front and the lanes were
    /// registered with [`MetricsCollector::configure_tenants`] before replay.
    pub tenants: Vec<TenantMetrics>,
}

impl RunMetrics {
    /// Average latency expressed in milliseconds.
    pub fn avg_latency_ms(&self) -> f64 {
        self.avg_latency_ns / 1e6
    }

    /// Bandwidth expressed in MB/s.
    pub fn bandwidth_mb_per_sec(&self) -> f64 {
        self.bandwidth_kb_per_sec / 1024.0
    }
}

/// Identity and QoS contract of one tenant lane, registered with
/// [`MetricsCollector::configure_tenants`] before a multi-tenant replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantLaneSpec {
    /// Tenant name, carried into [`TenantMetrics::name`].
    pub name: String,
    /// Latency SLO threshold in ns; completions slower than this count as
    /// violations.  `0` means the tenant has no latency SLO.
    pub slo_latency_ns: u64,
}

/// The per-tenant slice of a run's metrics.
///
/// Latency is measured from the tenant's *submission* time (before fair-share
/// admission delay), so queueing imposed by the multi-tenant front counts
/// against the tenant — unlike the device-level figures in [`RunMetrics`],
/// which measure from device arrival.  The latency buckets use the same shared
/// bounds as [`RunMetrics::latency_buckets`] ([`latency_bucket_bounds`]), so
/// per-tenant histograms from independent runs merge exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantMetrics {
    /// Tenant name from the lane spec.
    pub name: String,
    /// Host I/Os completed for this tenant.
    pub io_count: u64,
    /// Completed reads.
    pub read_ios: u64,
    /// Completed writes.
    pub write_ios: u64,
    /// Bytes returned to this tenant by reads.
    pub bytes_read: u64,
    /// Bytes accepted from this tenant by writes.
    pub bytes_written: u64,
    /// Mean submission-to-completion latency, ns.
    pub avg_latency_ns: f64,
    /// 99th-percentile submission-to-completion latency, ns.
    pub p99_latency_ns: u64,
    /// Maximum submission-to-completion latency, ns.
    pub max_latency_ns: u64,
    /// The lane's SLO threshold (0 = none).
    pub slo_latency_ns: u64,
    /// Completions whose latency exceeded the SLO threshold.
    pub slo_violations: u64,
    /// Per-bucket latency counts over the shared [`latency_bucket_bounds`].
    pub latency_buckets: Vec<u64>,
}

impl TenantMetrics {
    /// Total bytes moved for this tenant.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Live accumulation state for one tenant lane.
#[derive(Debug, Clone)]
struct TenantLane {
    spec: TenantLaneSpec,
    io_count: u64,
    read_ios: u64,
    write_ios: u64,
    bytes_read: u64,
    bytes_written: u64,
    latency: MeanStat,
    latency_hist: Histogram,
    slo_violations: u64,
}

impl TenantLane {
    fn new(spec: TenantLaneSpec) -> Self {
        TenantLane {
            spec,
            io_count: 0,
            read_ios: 0,
            write_ios: 0,
            bytes_read: 0,
            bytes_written: 0,
            latency: MeanStat::new(),
            latency_hist: Histogram::exponential(LATENCY_HIST_START_NS, LATENCY_HIST_BUCKETS),
            slo_violations: 0,
        }
    }

    fn finalize(self) -> TenantMetrics {
        TenantMetrics {
            name: self.spec.name,
            io_count: self.io_count,
            read_ios: self.read_ios,
            write_ios: self.write_ios,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            avg_latency_ns: self.latency.mean(),
            p99_latency_ns: self.latency_hist.quantile(0.99),
            max_latency_ns: self.latency_hist.max(),
            slo_latency_ns: self.spec.slo_latency_ns,
            slo_violations: self.slo_violations,
            latency_buckets: self.latency_hist.bucket_counts().to_vec(),
        }
    }
}

/// Collects measurements during a run.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    scheduler: String,
    record_series: bool,
    io_count: u64,
    read_ios: u64,
    write_ios: u64,
    bytes_read: u64,
    bytes_written: u64,
    latency: MeanStat,
    latency_hist: Histogram,
    queue_stall: Duration,
    first_arrival: Option<SimTime>,
    last_completion: SimTime,
    flp_requests: [u64; 4],
    transactions: u64,
    memory_requests: u64,
    bus_operation: Duration,
    bus_contention: Duration,
    cell_operation: Duration,
    latency_series: Vec<(u64, u64)>,
    peak_host_backlog: u64,
    peak_pending_events: u64,
    telemetry: Arc<TelemetryCounters>,
    tenant_lanes: Vec<TenantLane>,
}

impl MetricsCollector {
    /// Creates a collector for a run driven by `scheduler`.
    pub fn new(scheduler: &str, record_series: bool) -> Self {
        MetricsCollector {
            scheduler: scheduler.to_string(),
            record_series,
            io_count: 0,
            read_ios: 0,
            write_ios: 0,
            bytes_read: 0,
            bytes_written: 0,
            latency: MeanStat::new(),
            // Buckets from 1 µs to ~67 s; shared bounds, see latency_bucket_bounds.
            latency_hist: Histogram::exponential(LATENCY_HIST_START_NS, LATENCY_HIST_BUCKETS),
            queue_stall: Duration::ZERO,
            first_arrival: None,
            last_completion: SimTime::ZERO,
            flp_requests: [0; 4],
            transactions: 0,
            memory_requests: 0,
            bus_operation: Duration::ZERO,
            bus_contention: Duration::ZERO,
            cell_operation: Duration::ZERO,
            latency_series: Vec::new(),
            peak_host_backlog: 0,
            peak_pending_events: 0,
            telemetry: Arc::new(TelemetryCounters::new()),
            tenant_lanes: Vec::new(),
        }
    }

    /// Registers the run's tenant lanes, pre-sizing one histogram and stat
    /// bundle per tenant so the per-I/O attribution path never allocates.
    /// Replaces any previously configured lanes.
    pub fn configure_tenants(&mut self, specs: &[TenantLaneSpec]) {
        self.tenant_lanes = specs.iter().cloned().map(TenantLane::new).collect();
    }

    /// The run's hot-path telemetry counters.  The SSD substrate and its
    /// scheduler clone this `Arc` and increment the counters directly; the
    /// collector freezes them into [`RunMetrics::telemetry`] at finalize.
    pub fn telemetry(&self) -> &Arc<TelemetryCounters> {
        &self.telemetry
    }

    /// Records the replay loop's memory pressure: how many host requests sit
    /// outside the device queue and how many simulation events are pending.
    pub fn record_queue_pressure(&mut self, host_backlog: usize, pending_events: usize) {
        self.peak_host_backlog = self.peak_host_backlog.max(host_backlog as u64);
        self.peak_pending_events = self.peak_pending_events.max(pending_events as u64);
    }

    /// Records a host arrival.
    pub fn record_arrival(&mut self, at: SimTime) {
        let first = self.first_arrival.get_or_insert(at);
        *first = (*first).min(at);
    }

    /// Records the admission of a host request that arrived at `arrival` into the
    /// device queue at `admitted` (the difference is queue stall).
    pub fn record_admission(&mut self, arrival: SimTime, admitted: SimTime) {
        self.queue_stall += admitted.saturating_since(arrival);
    }

    /// Records a completed host I/O.
    pub fn record_io(
        &mut self,
        host_id: u64,
        is_read: bool,
        bytes: u64,
        arrival: SimTime,
        completed: SimTime,
    ) {
        self.io_count += 1;
        if is_read {
            self.read_ios += 1;
            self.bytes_read += bytes;
        } else {
            self.write_ios += 1;
            self.bytes_written += bytes;
        }
        let latency = completed.saturating_since(arrival);
        self.latency.record(latency.as_nanos() as f64);
        self.latency_hist.record(latency.as_nanos());
        self.last_completion = self.last_completion.max(completed);
        if self.record_series {
            self.latency_series.push((host_id, latency.as_nanos()));
        }
    }

    /// Attributes a completed host I/O to its tenant lane.  Latency is
    /// measured from `submitted` (the tenant's pre-admission submission time),
    /// so fair-share queueing delay counts against the tenant's SLO.  A no-op
    /// when no lanes are configured or `tenant` is out of range.
    pub fn record_tenant_io(
        &mut self,
        tenant: u32,
        is_read: bool,
        bytes: u64,
        submitted: SimTime,
        completed: SimTime,
    ) {
        let Some(lane) = self.tenant_lanes.get_mut(tenant as usize) else {
            return;
        };
        lane.io_count += 1;
        if is_read {
            lane.read_ios += 1;
            lane.bytes_read += bytes;
        } else {
            lane.write_ios += 1;
            lane.bytes_written += bytes;
        }
        let latency = completed.saturating_since(submitted);
        lane.latency.record(latency.as_nanos() as f64);
        lane.latency_hist.record(latency.as_nanos());
        if lane.spec.slo_latency_ns > 0 && latency.as_nanos() > lane.spec.slo_latency_ns {
            lane.slo_violations += 1;
        }
    }

    /// Records an executed flash transaction: its parallelism class, how many
    /// memory requests it folded, its bus occupancy, the contention it suffered,
    /// and its cell time.
    pub fn record_transaction(
        &mut self,
        level: ParallelismLevel,
        requests: usize,
        bus_time: Duration,
        contention: Duration,
        cell_time: Duration,
    ) {
        self.transactions += 1;
        self.memory_requests += requests as u64;
        let idx = match level {
            ParallelismLevel::NonPal => 0,
            ParallelismLevel::Pal1 => 1,
            ParallelismLevel::Pal2 => 2,
            ParallelismLevel::Pal3 => 3,
        };
        self.flp_requests[idx] += requests as u64;
        self.bus_operation += bus_time;
        self.bus_contention += contention;
        self.cell_operation += cell_time;
    }

    /// Number of I/Os completed so far.
    pub fn completed_ios(&self) -> u64 {
        self.io_count
    }

    /// Freezes the collector into a [`RunMetrics`], given the final simulation
    /// time, per-chip busy/plane-busy totals, and GC statistics.
    pub fn finalize(
        self,
        end: SimTime,
        chip_busy: &[Duration],
        chip_plane_busy: &[Duration],
        planes_per_chip: usize,
        gc: GcStats,
    ) -> RunMetrics {
        let start = self.first_arrival.unwrap_or(SimTime::ZERO);
        let end = end.max(self.last_completion);
        let elapsed = end.saturating_since(start);
        let elapsed_secs = elapsed.as_secs_f64().max(1e-12);

        let chips = chip_busy.len().max(1);
        let utilization = if elapsed.is_zero() {
            0.0
        } else {
            chip_busy
                .iter()
                .map(|b| b.as_nanos() as f64 / elapsed.as_nanos() as f64)
                .sum::<f64>()
                / chips as f64
        };
        let total_chip_busy: f64 = chip_busy.iter().map(|b| b.as_nanos() as f64).sum();
        let total_plane_busy: f64 = chip_plane_busy.iter().map(|b| b.as_nanos() as f64).sum();
        let intra_idle = if total_chip_busy <= 0.0 || planes_per_chip == 0 {
            0.0
        } else {
            (1.0 - total_plane_busy / (total_chip_busy * planes_per_chip as f64)).clamp(0.0, 1.0)
        };

        let total_requests: u64 = self.flp_requests.iter().sum();
        let frac = |n: u64| {
            if total_requests == 0 {
                0.0
            } else {
                n as f64 / total_requests as f64
            }
        };
        let flp = FlpBreakdown {
            non_pal: frac(self.flp_requests[0]),
            pal1: frac(self.flp_requests[1]),
            pal2: frac(self.flp_requests[2]),
            pal3: frac(self.flp_requests[3]),
        };

        let total_chip_time = elapsed.as_nanos() as f64 * chips as f64;
        let breakdown_frac = |d: Duration| {
            if total_chip_time <= 0.0 {
                0.0
            } else {
                (d.as_nanos() as f64 / total_chip_time).clamp(0.0, 1.0)
            }
        };
        let bus_operation = breakdown_frac(self.bus_operation);
        let bus_contention = breakdown_frac(self.bus_contention);
        let memory_operation = breakdown_frac(self.cell_operation);
        let execution = ExecutionBreakdown {
            bus_operation,
            bus_contention,
            memory_operation,
            idle: (1.0 - bus_operation - bus_contention - memory_operation).clamp(0.0, 1.0),
        };

        let total_bytes = self.bytes_read + self.bytes_written;
        RunMetrics {
            scheduler: self.scheduler,
            io_count: self.io_count,
            read_ios: self.read_ios,
            write_ios: self.write_ios,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            elapsed_ns: elapsed.as_nanos(),
            run_start_ns: start.as_nanos(),
            run_end_ns: end.as_nanos(),
            bandwidth_kb_per_sec: total_bytes as f64 / 1024.0 / elapsed_secs,
            iops: self.io_count as f64 / elapsed_secs,
            avg_latency_ns: self.latency.mean(),
            p99_latency_ns: self.latency_hist.quantile(0.99),
            max_latency_ns: self.latency_hist.max(),
            queue_stall_ns: self.queue_stall.as_nanos(),
            peak_host_backlog: self.peak_host_backlog,
            peak_pending_events: self.peak_pending_events,
            chip_utilization: utilization,
            inter_chip_idleness: (1.0 - utilization).clamp(0.0, 1.0),
            intra_chip_idleness: intra_idle,
            flp,
            execution,
            transactions: self.transactions,
            memory_requests: self.memory_requests,
            requests_per_transaction: if self.transactions == 0 {
                0.0
            } else {
                self.memory_requests as f64 / self.transactions as f64
            },
            gc,
            latency_buckets: self.latency_hist.bucket_counts().to_vec(),
            latency_series: self.latency_series,
            telemetry: self.telemetry.snapshot(),
            tenants: self
                .tenant_lanes
                .into_iter()
                .map(TenantLane::finalize)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn basic_io_accounting() {
        let mut m = MetricsCollector::new("test", true);
        m.record_arrival(micros(0));
        m.record_admission(micros(0), micros(2));
        m.record_io(0, true, 4096, micros(0), micros(100));
        m.record_io(1, false, 2048, micros(10), micros(60));
        assert_eq!(m.completed_ios(), 2);
        let r = m.finalize(
            micros(100),
            &[Duration::from_micros(50)],
            &[Duration::from_micros(50)],
            8,
            GcStats::default(),
        );
        assert_eq!(r.io_count, 2);
        assert_eq!(r.read_ios, 1);
        assert_eq!(r.write_ios, 1);
        assert_eq!(r.bytes_read, 4096);
        assert_eq!(r.bytes_written, 2048);
        assert_eq!(r.elapsed_ns, 100_000);
        assert_eq!(r.run_start_ns, 0);
        assert_eq!(r.run_end_ns, 100_000);
        assert_eq!(r.run_end_ns - r.run_start_ns, r.elapsed_ns);
        assert_eq!(r.queue_stall_ns, 2_000);
        assert!((r.avg_latency_ns - 75_000.0).abs() < 1.0);
        assert_eq!(r.scheduler, "test");
        assert_eq!(r.latency_series.len(), 2);
        assert!(r.iops > 0.0);
        assert!(r.bandwidth_kb_per_sec > 0.0);
        assert!((r.bandwidth_mb_per_sec() - r.bandwidth_kb_per_sec / 1024.0).abs() < 1e-9);
        assert!((r.avg_latency_ms() - 0.075).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_idleness() {
        let mut m = MetricsCollector::new("util", false);
        m.record_arrival(micros(0));
        m.record_io(0, true, 2048, micros(0), micros(100));
        let chip_busy = vec![Duration::from_micros(100), Duration::from_micros(0)];
        // Chip 0 busy the whole time but only 1 of 8 plane-equivalents active.
        let plane_busy = vec![Duration::from_micros(100), Duration::ZERO];
        let r = m.finalize(micros(100), &chip_busy, &plane_busy, 8, GcStats::default());
        assert!((r.chip_utilization - 0.5).abs() < 1e-9);
        assert!((r.inter_chip_idleness - 0.5).abs() < 1e-9);
        assert!((r.intra_chip_idleness - 0.875).abs() < 1e-9);
    }

    #[test]
    fn flp_and_execution_breakdowns() {
        let mut m = MetricsCollector::new("flp", false);
        m.record_arrival(micros(0));
        m.record_io(0, true, 2048, micros(0), micros(200));
        m.record_transaction(
            ParallelismLevel::NonPal,
            1,
            Duration::from_micros(10),
            Duration::from_micros(5),
            Duration::from_micros(20),
        );
        m.record_transaction(
            ParallelismLevel::Pal3,
            4,
            Duration::from_micros(20),
            Duration::ZERO,
            Duration::from_micros(20),
        );
        let r = m.finalize(
            micros(200),
            &[Duration::from_micros(100)],
            &[Duration::from_micros(100)],
            8,
            GcStats::default(),
        );
        assert!((r.flp.non_pal - 0.2).abs() < 1e-9);
        assert!((r.flp.pal3 - 0.8).abs() < 1e-9);
        assert_eq!(r.flp.as_array()[0], r.flp.non_pal);
        assert!(r.flp.mean_level() > 2.0);
        assert_eq!(r.transactions, 2);
        assert_eq!(r.memory_requests, 5);
        assert!((r.requests_per_transaction - 2.5).abs() < 1e-9);
        // Execution fractions: total chip time = 200us * 1 chip.
        assert!((r.execution.bus_operation - 0.15).abs() < 1e-9);
        assert!((r.execution.bus_contention - 0.025).abs() < 1e-9);
        assert!((r.execution.memory_operation - 0.2).abs() < 1e-9);
        assert!((r.execution.idle - 0.625).abs() < 1e-9);
    }

    #[test]
    fn series_recording_is_optional() {
        let mut m = MetricsCollector::new("s", false);
        m.record_arrival(micros(0));
        m.record_io(0, true, 2048, micros(0), micros(10));
        let r = m.finalize(micros(10), &[], &[], 8, GcStats::default());
        assert!(r.latency_series.is_empty());
        assert_eq!(r.chip_utilization, 0.0);
    }

    #[test]
    fn empty_run_finalizes_cleanly() {
        let m = MetricsCollector::new("empty", false);
        let r = m.finalize(SimTime::ZERO, &[], &[], 0, GcStats::default());
        assert_eq!(r.io_count, 0);
        assert_eq!(r.avg_latency_ns, 0.0);
        assert_eq!(r.requests_per_transaction, 0.0);
        assert_eq!(r.flp.as_array(), [0.0; 4]);
        assert!(r.latency_buckets.iter().all(|&c| c == 0));
    }

    /// Builds a finalized run from raw latency samples (µs).
    fn run_with_latencies(latencies_us: &[u64]) -> RunMetrics {
        let mut m = MetricsCollector::new("m", false);
        m.record_arrival(micros(0));
        for (i, &l) in latencies_us.iter().enumerate() {
            m.record_io(i as u64, true, 2048, micros(0), micros(l));
        }
        m.finalize(micros(10_000_000), &[], &[], 8, GcStats::default())
    }

    #[test]
    fn bucket_counts_match_the_shared_bounds() {
        let bounds = latency_bucket_bounds();
        assert_eq!(bounds.len(), LATENCY_HIST_BUCKETS);
        assert_eq!(bounds[0], LATENCY_HIST_START_NS);
        let r = run_with_latencies(&[1, 10, 100]);
        assert_eq!(r.latency_buckets.len(), LATENCY_HIST_BUCKETS + 1);
        assert_eq!(r.latency_buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn merged_quantile_of_one_run_matches_its_own_p99() {
        let latencies: Vec<u64> = (1..=200).collect();
        let r = run_with_latencies(&latencies);
        assert_eq!(merged_latency_quantile([&r], 0.99), r.p99_latency_ns);
        // The bucket convention reports the containing bucket's upper bound,
        // so any quantile is at least the true sample quantile's bucket floor.
        assert!(merged_latency_quantile([&r], 1.0) >= r.max_latency_ns);
    }

    #[test]
    fn merged_quantile_equals_a_single_collector_over_the_union() {
        // Two disjoint sample sets merged must match one collector that saw all.
        let a: Vec<u64> = (1..=150).collect();
        let b: Vec<u64> = (500..=600).collect();
        let union: Vec<u64> = a.iter().chain(&b).copied().collect();
        let ra = run_with_latencies(&a);
        let rb = run_with_latencies(&b);
        let whole = run_with_latencies(&union);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(
                merged_latency_quantile([&ra, &rb], q),
                merged_latency_quantile([&whole], q),
                "quantile {q} diverged",
            );
        }
    }

    #[test]
    fn weighted_mean_latency_weights_by_io_count() {
        let a = run_with_latencies(&[10, 10, 10, 10]); // mean 10 µs, 4 I/Os
        let b = run_with_latencies(&[50]); // mean 50 µs, 1 I/O
        let merged = weighted_mean_latency_ns([&a, &b]);
        assert!((merged - 18_000.0).abs() < 1.0, "got {merged}");
        assert_eq!(weighted_mean_latency_ns([]), 0.0);
    }

    #[test]
    fn empty_bucket_runs_do_not_leak_their_max_into_the_merge() {
        let real = run_with_latencies(&[10, 20, 30]);
        // A run carrying a max but no bucket counts (e.g. a legacy summary)
        // must not become the merged overflow answer.
        let phantom = RunMetrics {
            max_latency_ns: u64::MAX,
            p99_latency_ns: u64::MAX,
            ..RunMetrics::default()
        };
        assert_eq!(
            merged_latency_quantile([&real, &phantom], 1.0),
            merged_latency_quantile([&real], 1.0)
        );
        assert_eq!(
            merged_latency_quantile([&real, &phantom], 0.99),
            real.p99_latency_ns
        );
    }

    #[test]
    fn telemetry_snapshot_is_carried_through_finalize() {
        let m = MetricsCollector::new("t", false);
        let counters = Arc::clone(m.telemetry());
        TelemetryCounters::incr(&counters.sched_rounds);
        TelemetryCounters::incr(&counters.stream_admissions);
        let r = m.finalize(SimTime::ZERO, &[], &[], 0, GcStats::default());
        assert_eq!(r.telemetry.sched_rounds, 1);
        assert_eq!(r.telemetry.stream_admissions, 1);
        assert_eq!(r.telemetry.stream_stalls, 0);
    }

    #[test]
    fn merged_quantile_of_empty_runs_is_zero() {
        let empty = MetricsCollector::new("e", false).finalize(
            SimTime::ZERO,
            &[],
            &[],
            0,
            GcStats::default(),
        );
        assert_eq!(merged_latency_quantile([&empty], 0.99), 0);
    }
}
