//! The NVMHC device-level queue (NCQ-style).
//!
//! The queue holds *tags* — admitted host I/O requests — in arrival order.  All the
//! schedulers evaluated in the paper sit on top of the same out-of-order-capable
//! device queue; they differ only in how they compose and commit memory requests
//! from the queued tags.
//!
//! # Storage and indices
//!
//! Internally the queue is a free-list slot map bounded by its capacity: a tag
//! occupies one slot from admission to retirement, retired slots are recycled, and
//! arrival order is threaded through the slots as an intrusive doubly-linked list so
//! [`DeviceQueue::retire`] is O(1).  Total storage is O(queue depth), independent of
//! how many I/Os have ever been served.
//!
//! The slot index is the queue's *dense handle*: tag-id lookups resolve to a
//! `u32` slot through a direct-mapped ring (`TagMap`, no hashing — tags are
//! issued densely), and per-slot hot fields (admission seq, raw tag id,
//! direction flag) are mirrored into parallel *slot columns* so the scheduler
//! hot path reads small contiguous arrays instead of chasing `Option<TagState>`.
//!
//! On top of the slots the queue maintains three incremental indices that turn the
//! scheduler hot path from full-queue scans into point lookups:
//!
//! * a **columnar per-chip candidate index** ([`crate::cand::CandidateIndex`]) —
//!   for every flash chip, the uncommitted pages targeting it as rows of four
//!   parallel columns (seq/priority/lpn/slot) in a contiguous CSR-style extent,
//!   ordered by arrival, so resource-driven schedulers iterate plain slices and
//!   visit only chips that actually have work;
//! * a **read-LPN hazard index** — for every logical page with an uncommitted read,
//!   the admission sequence numbers of the reading tags, so the §4.4
//!   write-after-read check is an O(log n) lookup instead of a full-queue scan;
//! * a **pending-FUA index** — the admission sequence numbers of queued
//!   force-unit-access tags that are not yet fully committed, so the reordering
//!   horizon is an O(1) lookup.
//!
//! The hazard and FUA indices are sorted vectors, not B-trees: at steady state
//! their capacity is retained across churn, so index maintenance performs no
//! allocations once the high-water mark is reached (a B-tree frees and
//! re-allocates nodes as sets empty and refill, which defeats the
//! zero-allocation replay gate).  Entry counts are bounded by the queued work,
//! so the O(n) memmove per insert/remove is a handful of cache lines.
//!
//! To keep the indices coherent, all mutation of queued tag state goes through the
//! queue ([`DeviceQueue::commit_page`], [`DeviceQueue::complete_page`],
//! [`DeviceQueue::refresh_placements`]); queued tags are only handed out immutably.

use serde::{Deserialize, Serialize};
use sprinkler_sim::SimTime;

use crate::cand::{pack_pri, pri_page, CandidateIndex, CandidateView};
use crate::request::{HostRequest, Placement, TagId};

/// Sentinel for "no slot" in the intrusive arrival-order list.
const NIL: usize = usize::MAX;

/// Sentinel slot value marking an empty [`TagMap`] ring cell.
const NO_SLOT: u32 = u32::MAX;

/// Bit set in the slot flag column for write tags.
pub const SLOT_WRITE: u8 = 1;

/// Buckets in the read-LPN counting filter (see
/// [`DeviceQueue::read_hazard_filter`]).  Must stay a power of two: the
/// bucket hash takes the top `log2(READ_FILTER_BUCKETS)` bits.
pub const READ_FILTER_BUCKETS: usize = 512;

/// The counting-filter bucket of a logical page number.  Fibonacci hashing
/// spreads the sequential LPN ranges real workloads produce across the whole
/// bucket space before the top bits are taken.
#[inline]
pub fn read_filter_bucket(lpn: u64) -> usize {
    const _: () = assert!(READ_FILTER_BUCKETS == 1 << 9);
    (lpn.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - 9)) as usize
}

/// A fixed-size page bitmap packed into `u64` words.
///
/// Replaces the per-tag `Vec<bool>` commitment/completion bitmaps: pages per
/// tag are bounded by the transfer size, so a handful of words covers even the
/// 4 MB configuration, and [`PageBits::zeros`] turns the "which pages are
/// uncommitted" scan into a bit-scan over one or two cache lines.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageBits {
    words: Vec<u64>,
    len: usize,
}

static BIT_TRUE: bool = true;
static BIT_FALSE: bool = false;

impl PageBits {
    /// Creates an all-zero bitmap of `pages` bits.
    pub fn new(pages: usize) -> Self {
        PageBits {
            words: vec![0; pages.div_ceil(64)],
            len: pages,
        }
    }

    /// Resets the bitmap to `pages` all-zero bits, retaining word capacity.
    pub fn reset(&mut self, pages: usize) {
        self.words.clear();
        self.words.resize(pages.div_ceil(64), 0);
        self.len = pages;
    }

    /// Number of bits tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap tracks no pages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `index` is set.  Out-of-range bits read as unset.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|word| word >> (index % 64) & 1 != 0)
    }

    /// Sets bit `index`; returns `false` if it was already set.
    #[inline]
    pub fn set(&mut self, index: usize) -> bool {
        debug_assert!(index < self.len, "page {index} out of range");
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        true
    }

    /// The complement of word `w`, with bits past `len` masked off.
    #[inline]
    fn zeros_in_word(&self, w: usize) -> u64 {
        match self.words.get(w) {
            Some(&word) => {
                let remaining = self.len - w * 64;
                if remaining >= 64 {
                    !word
                } else {
                    !word & ((1u64 << remaining) - 1)
                }
            }
            None => 0,
        }
    }

    /// Iterates the positions of unset bits, ascending — a `trailing_zeros`
    /// bit-scan, allocation-free.
    pub fn zeros(&self) -> ZeroBits<'_> {
        ZeroBits {
            bits: self,
            word: 0,
            mask: self.zeros_in_word(0),
        }
    }
}

/// `PageBits` indexes like the `Vec<bool>` it replaced, so the reference
/// schedulers (`sprinkler_core::reference`) read `state.committed[page]`
/// unchanged and stay a textually untouched differential oracle.
impl std::ops::Index<usize> for PageBits {
    type Output = bool;

    #[inline]
    fn index(&self, index: usize) -> &bool {
        if self.get(index) {
            &BIT_TRUE
        } else {
            &BIT_FALSE
        }
    }
}

/// Iterator over the unset bit positions of a [`PageBits`].
#[derive(Debug, Clone)]
pub struct ZeroBits<'a> {
    bits: &'a PageBits,
    word: usize,
    mask: u64,
}

impl Iterator for ZeroBits<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.mask == 0 {
            self.word += 1;
            if self.word >= self.bits.words.len() {
                return None;
            }
            self.mask = self.bits.zeros_in_word(self.word);
        }
        let bit = self.mask.trailing_zeros();
        self.mask &= self.mask - 1;
        Some(self.word as u32 * 64 + bit)
    }
}

/// Per-tag state while the I/O request sits in the device queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagState {
    /// The tag identifier.
    pub id: TagId,
    /// Admission sequence number: strictly increasing with arrival order, so
    /// `a.seq < b.seq` iff tag `a` was admitted before tag `b`.  Hazard and
    /// horizon comparisons are expressed over this field.
    pub seq: u64,
    /// The originating host request.
    pub host: HostRequest,
    /// When the tag was admitted into the device queue.
    pub admitted_at: SimTime,
    /// Physical placement preview per page (filled by the FTL preprocessor).
    pub placements: Vec<Placement>,
    /// Whether each page has been committed as a memory request.
    pub committed: PageBits,
    /// Whether each page's memory request has fully completed.  This is the
    /// per-queue-entry completion bitmap described in §4.4 ("The Order of Output
    /// Data").
    pub completed: PageBits,
    /// Number of set bits in `committed` (kept so fullness checks are O(1)).
    committed_count: usize,
    /// Number of set bits in `completed` (kept so fullness checks are O(1)).
    completed_count: usize,
    /// When the first memory request of this tag was committed.
    pub first_commit_at: Option<SimTime>,
}

impl TagState {
    /// Creates the state for a newly admitted tag.  The admission sequence number
    /// starts at 0; [`DeviceQueue::admit`] assigns the real one.
    pub fn new(
        id: TagId,
        host: HostRequest,
        admitted_at: SimTime,
        placements: Vec<Placement>,
    ) -> Self {
        let pages = host.pages as usize;
        debug_assert_eq!(placements.len(), pages);
        TagState {
            id,
            seq: 0,
            host,
            admitted_at,
            placements,
            committed: PageBits::new(pages),
            completed: PageBits::new(pages),
            committed_count: 0,
            completed_count: 0,
            first_commit_at: None,
        }
    }

    /// Number of pages in the I/O request.
    pub fn pages(&self) -> usize {
        self.host.pages as usize
    }

    /// Page offsets not yet committed, ascending (a bitmap bit-scan).
    pub fn uncommitted_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.committed.zeros()
    }

    /// Number of pages not yet committed.
    pub fn uncommitted_count(&self) -> usize {
        self.pages() - self.committed_count
    }

    /// True once every page has been committed.
    pub fn fully_committed(&self) -> bool {
        self.committed_count == self.pages()
    }

    /// True once every page's memory request has completed.
    pub fn fully_completed(&self) -> bool {
        self.completed_count == self.pages()
    }

    /// Marks a page committed.  Returns `false` if it was already committed.
    pub fn mark_committed(&mut self, page: u32, now: SimTime) -> bool {
        if !self.committed.set(page as usize) {
            return false;
        }
        self.committed_count += 1;
        self.first_commit_at.get_or_insert(now);
        true
    }

    /// Marks a page's memory request completed (sets its bitmap bit).  Returns
    /// `false` if it was already completed.
    pub fn mark_completed(&mut self, page: u32) -> bool {
        if !self.completed.set(page as usize) {
            return false;
        }
        self.completed_count += 1;
        true
    }
}

/// One recycled storage slot of the queue's slot map.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    state: Option<TagState>,
    /// Previous slot in arrival order (`NIL` at the head).
    prev: usize,
    /// Next slot in arrival order (`NIL` at the tail).
    next: usize,
}

/// Direct-mapped tag-id → slot lookup.
///
/// The SSD issues tag ids densely (a monotonically increasing counter), so a
/// power-of-two ring indexed by `tag & mask` resolves nearly every lookup with
/// one load and one compare — no hashing on admit, commit, or retire.  Two
/// live tags can still collide modulo the ring size (one tag outliving many
/// churn cycles, or tests using arbitrary ids); colliders spill into a small
/// linear-scanned overflow list bounded by the queue depth.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TagMap {
    mask: u64,
    /// `(raw tag id, slot)` cells; `slot == NO_SLOT` marks an empty cell.
    ring: Vec<(u64, u32)>,
    /// Colliding entries, linearly scanned (rare: requires two live tags with
    /// equal residues).
    overflow: Vec<(u64, u32)>,
}

impl TagMap {
    fn new(capacity: usize) -> Self {
        let size = capacity.max(1).next_power_of_two();
        TagMap {
            mask: size as u64 - 1,
            ring: vec![(0, NO_SLOT); size],
            overflow: Vec::with_capacity(capacity.min(size)),
        }
    }

    #[inline]
    fn get(&self, tag: u64) -> Option<u32> {
        let cell = self.ring[(tag & self.mask) as usize];
        if cell.1 != NO_SLOT && cell.0 == tag {
            return Some(cell.1);
        }
        self.overflow
            .iter()
            .find(|entry| entry.0 == tag)
            .map(|entry| entry.1)
    }

    fn insert(&mut self, tag: u64, slot: u32) {
        debug_assert!(slot != NO_SLOT);
        debug_assert!(self.get(tag).is_none(), "tag {tag} is already mapped");
        let cell = &mut self.ring[(tag & self.mask) as usize];
        if cell.1 == NO_SLOT {
            *cell = (tag, slot);
        } else {
            self.overflow.push((tag, slot));
        }
    }

    fn remove(&mut self, tag: u64) -> Option<u32> {
        let index = (tag & self.mask) as usize;
        let cell = self.ring[index];
        if cell.1 != NO_SLOT && cell.0 == tag {
            // Promote a colliding overflow entry into the freed cell so dense
            // workloads keep their one-load fast path.
            let promoted = self
                .overflow
                .iter()
                .position(|entry| entry.0 & self.mask == tag & self.mask);
            self.ring[index] = match promoted {
                Some(pos) => self.overflow.swap_remove(pos),
                None => (0, NO_SLOT),
            };
            return Some(cell.1);
        }
        if let Some(pos) = self.overflow.iter().position(|entry| entry.0 == tag) {
            return Some(self.overflow.swap_remove(pos).1);
        }
        None
    }
}

/// The bounded device-level queue.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::queue::DeviceQueue;
/// use sprinkler_ssd::request::{Direction, HostRequest, TagId};
/// use sprinkler_flash::Lpn;
/// use sprinkler_sim::SimTime;
///
/// let mut q = DeviceQueue::new(2);
/// assert!(!q.is_full());
/// let host = HostRequest::new(0, SimTime::ZERO, Direction::Read, Lpn::new(0), 1);
/// assert!(q.admit(TagId(0), host, SimTime::ZERO, vec![]));
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceQueue {
    capacity: usize,
    /// Slot-map storage; never grows past `capacity` entries.
    slots: Vec<Slot>,
    /// Recycled slot indices.
    free: Vec<usize>,
    /// Tag id → slot handle (direct-mapped ring, no hashing).
    tag_map: TagMap,
    /// Slot column: admission seq per occupied slot (generation guard for
    /// handle-based access).
    slot_seq: Vec<u64>,
    /// Slot column: raw tag id per occupied slot.
    slot_tag: Vec<u64>,
    /// Slot column: per-slot flags ([`SLOT_WRITE`]).
    slot_flags: Vec<u8>,
    /// First slot in arrival order (`NIL` when empty).
    head: usize,
    /// Last slot in arrival order (`NIL` when empty).
    tail: usize,
    len: usize,
    /// Next admission sequence number.
    next_seq: u64,
    /// Total uncommitted pages across all queued tags.
    uncommitted_total: usize,
    /// Columnar per-chip candidate index of every uncommitted page.
    cand: CandidateIndex,
    /// Sorted `(lpn, seq)` pairs: read tags whose page at that LPN is
    /// uncommitted.
    read_lpn_index: Vec<(u64, u64)>,
    /// Counting filter over `read_lpn_index`: per-bucket entry counts keyed by
    /// [`read_filter_bucket`].  A zero bucket proves no uncommitted read of
    /// any LPN hashing there exists, so the §4.4 write-after-read check skips
    /// its binary search for the (dominant) unblocked case.
    read_lpn_filter: Vec<u32>,
    /// Sorted admission seqs of queued FUA tags not yet fully committed.
    fua_pending: Vec<u64>,
    /// Recycled [`TagState`] storage: retired tags returned via
    /// [`DeviceQueue::recycle`] donate their heap buffers to later admissions.
    spare_states: Vec<TagState>,
}

impl DeviceQueue {
    /// Creates an empty queue with the given capacity.
    pub fn new(capacity: usize) -> Self {
        DeviceQueue {
            capacity,
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            tag_map: TagMap::new(capacity),
            slot_seq: Vec::with_capacity(capacity),
            slot_tag: Vec::with_capacity(capacity),
            slot_flags: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            len: 0,
            next_seq: 0,
            uncommitted_total: 0,
            cand: CandidateIndex::new(),
            read_lpn_index: Vec::new(),
            read_lpn_filter: vec![0; READ_FILTER_BUCKETS],
            fua_pending: Vec::with_capacity(capacity),
            spare_states: Vec::with_capacity(capacity),
        }
    }

    // ------------------------------------------------------------------
    // Sorted-vector index maintenance (allocation-free at steady state)
    // ------------------------------------------------------------------

    fn read_lpn_insert(&mut self, lpn: u64, seq: u64) {
        if let Err(pos) = self.read_lpn_index.binary_search(&(lpn, seq)) {
            self.read_lpn_index.insert(pos, (lpn, seq));
            self.read_lpn_filter[read_filter_bucket(lpn)] += 1;
        }
    }

    fn read_lpn_remove(&mut self, lpn: u64, seq: u64) {
        if let Ok(pos) = self.read_lpn_index.binary_search(&(lpn, seq)) {
            self.read_lpn_index.remove(pos);
            self.read_lpn_filter[read_filter_bucket(lpn)] -= 1;
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tags currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tags are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when no further tag can be admitted.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Admits a host request as a tag.  Returns `false` — without admitting —
    /// when the queue is already at capacity.
    ///
    /// Placement previews may be empty if the scheduler never consults them
    /// (virtual address scheduling); in that case page accounting still works but
    /// placement lookups must not be used.
    #[must_use = "admission fails when the queue is full; the request would be lost"]
    pub fn admit(
        &mut self,
        id: TagId,
        host: HostRequest,
        now: SimTime,
        placements: Vec<Placement>,
    ) -> bool {
        if placements.is_empty() {
            self.admit_with(id, host, now, |_| Placement {
                chip: 0,
                channel: 0,
                way: 0,
                die: 0,
                plane: 0,
            })
        } else {
            debug_assert_eq!(placements.len(), host.pages as usize);
            self.admit_with(id, host, now, |page| placements[page as usize])
        }
    }

    /// [`DeviceQueue::admit`] with the placement previews produced in place by
    /// `placement_of` (called once per page, in page order), filling buffers
    /// recycled from retired tags instead of taking a freshly allocated
    /// `Vec<Placement>`.  The replay hot path admits through this entry point
    /// so steady-state admission performs no allocations.
    #[must_use = "admission fails when the queue is full; the request would be lost"]
    pub fn admit_with(
        &mut self,
        id: TagId,
        host: HostRequest,
        now: SimTime,
        mut placement_of: impl FnMut(u32) -> Placement,
    ) -> bool {
        if self.is_full() {
            return false;
        }
        debug_assert!(
            self.tag_map.get(id.0).is_none(),
            "tag {id} is already queued"
        );
        let pages = host.pages as usize;
        let mut state = match self.spare_states.pop() {
            Some(mut spare) => {
                spare.placements.clear();
                spare.id = id;
                spare.host = host;
                spare.admitted_at = now;
                spare
            }
            None => TagState {
                id,
                seq: 0,
                host,
                admitted_at: now,
                placements: Vec::new(),
                committed: PageBits::default(),
                completed: PageBits::default(),
                committed_count: 0,
                completed_count: 0,
                first_commit_at: None,
            },
        };
        state
            .placements
            .extend((0..state.host.pages).map(&mut placement_of));
        state.committed.reset(pages);
        state.completed.reset(pages);
        state.committed_count = 0;
        state.completed_count = 0;
        state.first_commit_at = None;
        state.seq = self.next_seq;
        self.next_seq += 1;
        let seq = state.seq;

        // Reserve the storage slot first: the index entries carry it as a
        // dense handle so hot-path consumers skip the tag-id lookup entirely.
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(Slot {
                    state: None,
                    prev: NIL,
                    next: NIL,
                });
                self.slot_seq.push(0);
                self.slot_tag.push(0);
                self.slot_flags.push(0);
                self.slots.len() - 1
            }
        };
        self.slot_seq[slot] = seq;
        self.slot_tag[slot] = id.0;
        self.slot_flags[slot] = if state.host.direction.is_write() {
            SLOT_WRITE
        } else {
            0
        };

        let is_read = state.host.direction.is_read();
        for page in 0..pages {
            let p = state.placements[page];
            let lpn = state.host.lpn_at(page as u32).value();
            self.cand.insert(
                p.chip,
                seq,
                pack_pri(page as u32, p.die, p.plane),
                lpn,
                slot as u32,
            );
            if is_read {
                self.read_lpn_insert(lpn, seq);
            }
        }
        if state.host.fua {
            // Admission seqs are monotonic, so this is a push in practice.
            let pos = self.fua_pending.partition_point(|&s| s < seq);
            self.fua_pending.insert(pos, seq);
        }
        self.uncommitted_total += pages;
        self.slots[slot].state = Some(state);
        // Link at the tail of the arrival-order list.
        self.slots[slot].prev = self.tail;
        self.slots[slot].next = NIL;
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.slots[self.tail].next = slot;
        }
        self.tail = slot;
        self.tag_map.insert(id.0, slot as u32);
        self.len += 1;
        true
    }

    /// Removes a completed tag, freeing its queue slot.  Returns its final state.
    /// O(1) in the queue length (plus index removal for any still-uncommitted
    /// pages).
    pub fn retire(&mut self, id: TagId) -> Option<TagState> {
        let slot = self.tag_map.remove(id.0)?;
        self.retire_slot(slot as usize)
    }

    /// [`DeviceQueue::retire`] through a dense slot handle, skipping the tag-id
    /// lookup.
    pub fn retire_at(&mut self, slot: u32) -> Option<TagState> {
        let id = self.slots.get(slot as usize)?.state.as_ref()?.id;
        self.tag_map.remove(id.0)?;
        self.retire_slot(slot as usize)
    }

    fn retire_slot(&mut self, slot: usize) -> Option<TagState> {
        let state = self.slots[slot].state.take()?;
        // Unlink from the arrival-order list.
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
        self.free.push(slot);
        self.len -= 1;
        // Drop any remaining index entries for uncommitted pages.
        for page in state.uncommitted_pages() {
            let p = state.placements[page as usize];
            self.cand
                .remove(p.chip, state.seq, pack_pri(page, p.die, p.plane));
            if state.host.direction.is_read() {
                self.read_lpn_remove(state.host.lpn_at(page).value(), state.seq);
            }
            self.uncommitted_total -= 1;
        }
        if let Ok(pos) = self.fua_pending.binary_search(&state.seq) {
            self.fua_pending.remove(pos);
        }
        Some(state)
    }

    /// Returns a retired [`TagState`]'s heap buffers to the queue's internal
    /// pool so a later [`DeviceQueue::admit_with`] reuses them instead of
    /// allocating.  The pool is bounded by the queue capacity; surplus states
    /// are simply dropped.
    pub fn recycle(&mut self, state: TagState) {
        if self.spare_states.len() < self.capacity {
            self.spare_states.push(state);
        }
    }

    /// Marks a page of a queued tag committed, keeping the hazard and chip indices
    /// coherent.  Returns `false` when the tag is not queued, the page offset is
    /// out of range, or the page was already committed.
    pub fn commit_page(&mut self, id: TagId, page: u32, now: SimTime) -> bool {
        match self.tag_map.get(id.0) {
            Some(slot) => self.commit_page_at(slot, page, now),
            None => false,
        }
    }

    /// [`DeviceQueue::commit_page`] through a dense slot handle, skipping the
    /// tag-id lookup.
    // lint: hot-path
    pub fn commit_page_at(&mut self, slot: u32, page: u32, now: SimTime) -> bool {
        let Some(entry) = self.slots.get_mut(slot as usize) else {
            return false;
        };
        let Some(state) = entry.state.as_mut() else {
            return false;
        };
        if page as usize >= state.pages() || !state.mark_committed(page, now) {
            return false;
        }
        let seq = state.seq;
        let p = state.placements[page as usize];
        let read_lpn = state
            .host
            .direction
            .is_read()
            .then(|| state.host.lpn_at(page).value());
        let fua_done = state.host.fua && state.fully_committed();
        self.uncommitted_total -= 1;
        self.cand
            .remove(p.chip, seq, pack_pri(page, p.die, p.plane));
        if let Some(lpn) = read_lpn {
            self.read_lpn_remove(lpn, seq);
        }
        if fua_done {
            if let Ok(pos) = self.fua_pending.binary_search(&seq) {
                self.fua_pending.remove(pos);
            }
        }
        true
    }

    /// Marks a page's memory request completed.  Returns `false` when the tag is
    /// not queued or the page was already completed.
    pub fn complete_page(&mut self, id: TagId, page: u32) -> bool {
        match self.tag_map.get(id.0) {
            Some(slot) => self.complete_page_at(slot, page),
            None => false,
        }
    }

    /// [`DeviceQueue::complete_page`] through a dense slot handle.
    // lint: hot-path
    pub fn complete_page_at(&mut self, slot: u32, page: u32) -> bool {
        match self
            .slots
            .get_mut(slot as usize)
            .and_then(|s| s.state.as_mut())
        {
            Some(state) if (page as usize) < state.pages() => state.mark_completed(page),
            _ => false,
        }
    }

    /// Rewrites the placement preview of every queued, still-uncommitted page
    /// addressing `lpn` (GC readdressing, §4.3), keeping the chip index coherent.
    pub fn refresh_placements(&mut self, lpn: u64, preview: Placement) {
        let mut cursor = self.head;
        while cursor != NIL {
            let next;
            // (seq, old placement, page) of a rewritten page whose index row
            // must move to a new (chip, die, plane) key.
            let mut moved: Option<(u64, Placement, u32)> = None;
            {
                let slot = &mut self.slots[cursor];
                next = slot.next;
                if let Some(state) = slot.state.as_mut() {
                    let start = state.host.start_lpn.value();
                    let end = start + state.host.pages as u64;
                    if (start..end).contains(&lpn) {
                        let page = (lpn - start) as usize;
                        if !state.committed.get(page) {
                            let old = state.placements[page];
                            state.placements[page] = preview;
                            if (old.chip, old.die, old.plane)
                                != (preview.chip, preview.die, preview.plane)
                            {
                                moved = Some((state.seq, old, page as u32));
                            }
                        }
                    }
                }
            }
            if let Some((seq, old, page)) = moved {
                self.cand
                    .remove(old.chip, seq, pack_pri(page, old.die, old.plane));
                self.cand.insert(
                    preview.chip,
                    seq,
                    pack_pri(page, preview.die, preview.plane),
                    lpn,
                    cursor as u32,
                );
            }
            cursor = next;
        }
    }

    /// Resolves a tag id to its dense slot handle.
    pub fn slot_of(&self, id: TagId) -> Option<u32> {
        self.tag_map.get(id.0)
    }

    /// Queued tag identifiers in arrival order.
    pub fn tags_in_order(&self) -> impl Iterator<Item = TagId> + '_ {
        self.iter_states().map(|state| state.id)
    }

    /// Queued tag states in arrival order.
    pub fn iter_states(&self) -> impl Iterator<Item = &TagState> + '_ {
        let mut cursor = self.head;
        std::iter::from_fn(move || {
            while cursor != NIL {
                let slot = &self.slots[cursor];
                cursor = slot.next;
                if let Some(state) = slot.state.as_ref() {
                    return Some(state);
                }
            }
            None
        })
    }

    /// Looks up a tag's state.
    pub fn tag(&self, id: TagId) -> Option<&TagState> {
        let slot = self.tag_map.get(id.0)?;
        self.slots[slot as usize].state.as_ref()
    }

    /// A queued tag's admission sequence number.
    pub fn seq_of(&self, id: TagId) -> Option<u64> {
        self.tag(id).map(|state| state.seq)
    }

    /// Total uncommitted pages across all queued tags (O(1)).
    pub fn total_uncommitted_pages(&self) -> usize {
        self.uncommitted_total
    }

    // ------------------------------------------------------------------
    // Index views consumed by the scheduler hot path
    // ------------------------------------------------------------------

    /// The §4.4 reordering horizon as an admission-sequence bound: tags with
    /// `seq <= horizon_seq()` may be considered this round; tags beyond the first
    /// not-fully-committed FUA request are off limits.  O(1).
    pub fn horizon_seq(&self) -> u64 {
        self.fua_pending.first().copied().unwrap_or(u64::MAX)
    }

    /// Whether a read tag admitted strictly before `seq` still has an uncommitted
    /// read of logical page `lpn` (the §4.4 write-after-read hazard).  O(log n).
    // lint: hot-path
    pub fn has_blocking_read(&self, lpn: u64, seq: u64) -> bool {
        if self.read_lpn_filter[read_filter_bucket(lpn)] == 0 {
            // No uncommitted read hashes to this bucket: provably unblocked.
            return false;
        }
        // Entries are sorted by (lpn, seq); the first entry for `lpn` holds
        // the earliest reading seq.
        let pos = self.read_lpn_index.partition_point(|&(l, _)| l < lpn);
        self.read_lpn_index
            .get(pos)
            .is_some_and(|&(l, earliest)| l == lpn && earliest < seq)
    }

    /// The pending-FUA horizon entries: admission seqs of queued FUA tags not
    /// yet fully committed, ascending.  Exposed for the debug invariant
    /// validator; hot paths use [`DeviceQueue::horizon_seq`].
    pub fn fua_pending(&self) -> &[u64] {
        &self.fua_pending
    }

    /// The raw read-LPN hazard entries, sorted by `(lpn, seq)` — the dense
    /// slice behind [`DeviceQueue::has_blocking_read`], exposed so hot loops
    /// can hoist the queue dereference out of their per-candidate checks.
    pub fn read_hazards(&self) -> &[(u64, u64)] {
        &self.read_lpn_index
    }

    /// The counting filter over [`DeviceQueue::read_hazards`]: per-bucket
    /// entry counts keyed by [`read_filter_bucket`].  A zero bucket proves no
    /// uncommitted read of any LPN hashing there exists, so hot loops skip
    /// the hazard binary search entirely for such writes.
    pub fn read_hazard_filter(&self) -> &[u32] {
        &self.read_lpn_filter
    }

    /// The columnar candidate view for one scheduling round: active chips,
    /// CSR-style per-chip row ranges, and the seq/pri/lpn/slot columns.
    pub fn candidate_view(&self) -> CandidateView<'_> {
        self.cand.view()
    }

    /// Slot column: admission sequence per slot handle.
    pub fn slot_seqs(&self) -> &[u64] {
        &self.slot_seq
    }

    /// Slot column: raw tag id per slot handle.
    pub fn slot_tags(&self) -> &[u64] {
        &self.slot_tag
    }

    /// Slot column: flag bits ([`SLOT_WRITE`]) per slot handle.
    pub fn slot_flag_bits(&self) -> &[u8] {
        &self.slot_flags
    }

    /// Chips with at least one uncommitted candidate page, in ascending chip
    /// order.  Iterating this instead of every chip keeps resource-driven
    /// scheduling rounds proportional to queued work, not to the chip population.
    pub fn candidate_chips(&self) -> impl Iterator<Item = usize> + '_ {
        self.cand.active_chips().iter().map(|&chip| chip as usize)
    }

    /// The uncommitted candidate pages targeting one chip, in arrival order
    /// (admission seq, then page offset).  The final element is the tag's slot
    /// handle for [`DeviceQueue::state_at`].
    pub fn chip_candidates(
        &self,
        chip: usize,
    ) -> impl Iterator<Item = (u64, u32, TagId, usize)> + '_ {
        let view = self.cand.view();
        self.cand.chip_range(chip).map(move |row| {
            let slot = view.slot[row] as usize;
            (
                view.seq[row],
                pri_page(view.pri[row]),
                TagId(self.slot_tag[slot]),
                slot,
            )
        })
    }

    /// Resolves a slot handle from the candidate index to the tag state it
    /// indexes, without a tag-id lookup.
    pub fn state_at(&self, slot: usize) -> Option<&TagState> {
        self.slots.get(slot)?.state.as_ref()
    }

    // ------------------------------------------------------------------
    // Storage introspection (regression tests for bounded memory)
    // ------------------------------------------------------------------

    /// Number of storage slots ever allocated.  Bounded by the queue capacity, no
    /// matter how many I/Os have been served.
    pub fn allocated_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total live entries across the chip, read-LPN, and FUA indices.  Bounded
    /// by the number of queued uncommitted pages.
    pub fn index_entries(&self) -> usize {
        self.cand.len() + self.read_lpn_index.len() + self.fua_pending.len()
    }

    /// Debug-build invariant checker: cross-validates the incremental columnar
    /// candidate index (and the slot columns) against a from-scratch rebuild
    /// from the queued tag states.  Compiled to a no-op in release builds; the
    /// differential property tests call it after every scheduling round.
    pub fn validate_candidate_index(&self) {
        #[cfg(debug_assertions)]
        {
            let mut expected: Vec<(usize, u64, u32, u64, u32)> = Vec::new();
            let mut expected_uncommitted = 0usize;
            for (slot, entry) in self.slots.iter().enumerate() {
                let Some(state) = entry.state.as_ref() else {
                    continue;
                };
                debug_assert_eq!(self.slot_seq[slot], state.seq, "stale slot seq column");
                debug_assert_eq!(self.slot_tag[slot], state.id.0, "stale slot tag column");
                debug_assert_eq!(
                    self.slot_flags[slot] & SLOT_WRITE != 0,
                    state.host.direction.is_write(),
                    "stale slot flag column"
                );
                debug_assert_eq!(self.tag_map.get(state.id.0), Some(slot as u32));
                for page in state.uncommitted_pages() {
                    let p = state.placements[page as usize];
                    expected.push((
                        p.chip,
                        state.seq,
                        pack_pri(page, p.die, p.plane),
                        state.host.lpn_at(page).value(),
                        slot as u32,
                    ));
                    expected_uncommitted += 1;
                }
            }
            expected.sort_unstable();
            debug_assert_eq!(expected_uncommitted, self.uncommitted_total);
            debug_assert_eq!(expected.len(), self.cand.len());

            let view = self.cand.view();
            let mut actual: Vec<(usize, u64, u32, u64, u32)> = Vec::new();
            let mut previous_chip = None;
            for &chip in view.active {
                debug_assert!(previous_chip < Some(chip), "active chips not sorted");
                previous_chip = Some(chip);
                let range = view.range(chip as usize);
                debug_assert!(!range.is_empty(), "active chip without rows");
                let mut previous_row = None;
                for row in range {
                    let key = (view.seq[row], view.pri[row]);
                    debug_assert!(previous_row < Some(key), "chip rows not sorted");
                    previous_row = Some(key);
                    actual.push((
                        chip as usize,
                        view.seq[row],
                        view.pri[row],
                        view.lpn[row],
                        view.slot[row],
                    ));
                }
            }
            actual.sort_unstable();
            debug_assert_eq!(
                expected, actual,
                "columnar candidate index diverged from a from-scratch rebuild"
            );

            // The read-LPN counting filter must agree with the hazard index it
            // summarizes, bucket for bucket.
            let mut expected_filter = vec![0u32; READ_FILTER_BUCKETS];
            for &(lpn, _) in &self.read_lpn_index {
                expected_filter[read_filter_bucket(lpn)] += 1;
            }
            debug_assert_eq!(
                expected_filter, self.read_lpn_filter,
                "read-LPN counting filter diverged from the hazard index"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Direction;
    use sprinkler_flash::Lpn;

    fn host(id: u64, pages: u32) -> HostRequest {
        HostRequest::new(
            id,
            SimTime::ZERO,
            Direction::Write,
            Lpn::new(id * 100),
            pages,
        )
    }

    fn read_host(id: u64, lpn: u64, pages: u32) -> HostRequest {
        HostRequest::new(id, SimTime::ZERO, Direction::Read, Lpn::new(lpn), pages)
    }

    fn placements(n: usize) -> Vec<Placement> {
        (0..n)
            .map(|i| Placement {
                chip: i,
                channel: 0,
                way: i as u32,
                die: 0,
                plane: 0,
            })
            .collect()
    }

    #[test]
    fn admit_and_retire_roundtrip() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), host(0, 2), SimTime::ZERO, placements(2)));
        assert!(q.admit(TagId(1), host(1, 3), SimTime::from_nanos(5), placements(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert!(!q.is_full());
        assert_eq!(
            q.tags_in_order().collect::<Vec<_>>(),
            vec![TagId(0), TagId(1)]
        );
        q.validate_candidate_index();
        let retired = q.retire(TagId(0)).unwrap();
        assert_eq!(retired.host.id, 0);
        assert_eq!(q.len(), 1);
        assert!(q.tag(TagId(0)).is_none());
        assert!(q.retire(TagId(0)).is_none());
        q.validate_candidate_index();
    }

    #[test]
    fn capacity_is_reported_and_enforced() {
        let mut q = DeviceQueue::new(2);
        assert!(q.admit(TagId(0), host(0, 1), SimTime::ZERO, placements(1)));
        assert!(!q.is_full());
        assert!(q.admit(TagId(1), host(1, 1), SimTime::ZERO, placements(1)));
        assert!(q.is_full());
        assert_eq!(q.capacity(), 2);
        // Over-capacity admission is rejected, not silently allowed.
        assert!(!q.admit(TagId(2), host(2, 1), SimTime::ZERO, placements(1)));
        assert_eq!(q.len(), 2);
        assert!(q.tag(TagId(2)).is_none());
        // Retiring frees the slot for a new admission.
        q.retire(TagId(0)).unwrap();
        assert!(q.admit(TagId(2), host(2, 1), SimTime::ZERO, placements(1)));
        assert_eq!(
            q.tags_in_order().collect::<Vec<_>>(),
            vec![TagId(1), TagId(2)]
        );
    }

    #[test]
    fn tag_commit_and_complete_bitmaps() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(7), host(7, 3), SimTime::from_nanos(10), placements(3)));
        assert_eq!(q.tag(TagId(7)).unwrap().uncommitted_count(), 3);
        assert_eq!(
            q.tag(TagId(7))
                .unwrap()
                .uncommitted_pages()
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(q.commit_page(TagId(7), 1, SimTime::from_nanos(20)));
        assert!(!q.commit_page(TagId(7), 1, SimTime::from_nanos(30)));
        let tag = q.tag(TagId(7)).unwrap();
        assert_eq!(tag.first_commit_at, Some(SimTime::from_nanos(20)));
        assert_eq!(tag.uncommitted_pages().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!tag.fully_committed());
        assert!(q.commit_page(TagId(7), 0, SimTime::from_nanos(40)));
        assert!(q.commit_page(TagId(7), 2, SimTime::from_nanos(40)));
        assert!(q.tag(TagId(7)).unwrap().fully_committed());
        assert!(!q.tag(TagId(7)).unwrap().fully_completed());
        assert!(q.complete_page(TagId(7), 0));
        assert!(q.complete_page(TagId(7), 1));
        assert!(
            !q.complete_page(TagId(7), 1),
            "double completion is rejected"
        );
        assert!(q.complete_page(TagId(7), 2));
        assert!(q.tag(TagId(7)).unwrap().fully_completed());
    }

    #[test]
    fn page_bitmaps_index_like_vectors_and_scan_zeros() {
        let mut bits = PageBits::new(130);
        assert_eq!(bits.len(), 130);
        assert!(bits.set(0));
        assert!(bits.set(64));
        assert!(bits.set(129));
        assert!(!bits.set(64), "double set is rejected");
        assert!(bits[0] && bits[64] && bits[129]);
        assert!(!bits[1] && !bits[128]);
        let zeros: Vec<u32> = bits.zeros().collect();
        assert_eq!(zeros.len(), 127);
        assert_eq!(zeros[0], 1);
        assert_eq!(zeros[62], 63);
        assert_eq!(zeros[63], 65);
        assert_eq!(*zeros.last().unwrap(), 128);
        // The tail bits past `len` are never reported as zeros.
        let empty = PageBits::new(0);
        assert!(empty.is_empty());
        assert_eq!(empty.zeros().count(), 0);
        let one = PageBits::new(65);
        assert_eq!(one.zeros().count(), 65);
    }

    #[test]
    fn total_uncommitted_pages_sums_tags() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), host(0, 2), SimTime::ZERO, placements(2)));
        assert!(q.admit(TagId(1), host(1, 5), SimTime::ZERO, placements(5)));
        assert_eq!(q.total_uncommitted_pages(), 7);
        assert!(q.commit_page(TagId(1), 0, SimTime::ZERO));
        assert_eq!(q.total_uncommitted_pages(), 6);
        q.retire(TagId(0)).unwrap();
        assert_eq!(q.total_uncommitted_pages(), 4);
    }

    #[test]
    fn empty_placements_are_padded() {
        let mut q = DeviceQueue::new(2);
        assert!(q.admit(TagId(0), host(0, 3), SimTime::ZERO, Vec::new()));
        assert_eq!(q.tag(TagId(0)).unwrap().placements.len(), 3);
    }

    #[test]
    fn tag_state_page_count() {
        let state = TagState::new(TagId(1), host(1, 4), SimTime::ZERO, placements(4));
        assert_eq!(state.pages(), 4);
        assert_eq!(state.seq, 0);
    }

    #[test]
    fn admission_seqs_increase_with_arrival_order() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(9), host(9, 1), SimTime::ZERO, placements(1)));
        assert!(q.admit(TagId(3), host(3, 1), SimTime::ZERO, placements(1)));
        let (a, b) = (q.seq_of(TagId(9)).unwrap(), q.seq_of(TagId(3)).unwrap());
        assert!(a < b, "arrival order must be reflected in seqs");
        q.retire(TagId(9)).unwrap();
        assert!(q.admit(TagId(9), host(9, 1), SimTime::ZERO, placements(1)));
        assert!(q.seq_of(TagId(9)).unwrap() > b, "seqs never repeat");
    }

    #[test]
    fn tag_map_ring_handles_colliding_ids() {
        let mut q = DeviceQueue::new(4);
        // Ids 1 and 5 collide modulo the ring size (4): both must stay live.
        assert!(q.admit(TagId(1), host(1, 1), SimTime::ZERO, placements(1)));
        assert!(q.admit(TagId(5), host(5, 1), SimTime::ZERO, placements(1)));
        assert!(q.admit(TagId(9), host(9, 1), SimTime::ZERO, placements(1)));
        assert_eq!(q.tag(TagId(1)).unwrap().host.id, 1);
        assert_eq!(q.tag(TagId(5)).unwrap().host.id, 5);
        assert_eq!(q.tag(TagId(9)).unwrap().host.id, 9);
        // Removing the ring occupant promotes a collider; both survive lookup.
        q.retire(TagId(1)).unwrap();
        assert!(q.tag(TagId(1)).is_none());
        assert_eq!(q.tag(TagId(5)).unwrap().host.id, 5);
        assert_eq!(q.tag(TagId(9)).unwrap().host.id, 9);
        q.retire(TagId(9)).unwrap();
        assert_eq!(q.tag(TagId(5)).unwrap().host.id, 5);
        assert_eq!(q.slot_of(TagId(5)), q.slot_of(TagId(5)));
        q.validate_candidate_index();
    }

    #[test]
    fn chip_index_tracks_uncommitted_pages() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), host(0, 2), SimTime::ZERO, placements(2)));
        assert!(q.admit(TagId(1), host(1, 2), SimTime::ZERO, placements(2)));
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![0, 1]);
        // Chip 0 holds page 0 of both tags, in arrival order.
        let chip0: Vec<(u32, TagId)> = q
            .chip_candidates(0)
            .map(|(_, page, tag, _)| (page, tag))
            .collect();
        assert_eq!(chip0, vec![(0, TagId(0)), (0, TagId(1))]);
        assert!(q.commit_page(TagId(0), 0, SimTime::ZERO));
        let chip0: Vec<TagId> = q.chip_candidates(0).map(|(_, _, tag, _)| tag).collect();
        assert_eq!(chip0, vec![TagId(1)]);
        q.retire(TagId(1)).unwrap();
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn chip_index_follows_placement_refreshes() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), read_host(0, 500, 1), SimTime::ZERO, placements(1)));
        let moved = Placement {
            chip: 3,
            channel: 1,
            way: 1,
            die: 0,
            plane: 1,
        };
        q.refresh_placements(500, moved);
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![3]);
        assert_eq!(q.tag(TagId(0)).unwrap().placements[0], moved);
        q.validate_candidate_index();
        // A same-chip die/plane move rewrites the row's priority key too.
        let rotated = Placement {
            chip: 3,
            channel: 1,
            way: 1,
            die: 1,
            plane: 0,
        };
        q.refresh_placements(500, rotated);
        assert_eq!(q.tag(TagId(0)).unwrap().placements[0], rotated);
        q.validate_candidate_index();
        // Committed pages are not rewritten.
        assert!(q.commit_page(TagId(0), 0, SimTime::ZERO));
        let back = Placement {
            chip: 0,
            channel: 0,
            way: 0,
            die: 0,
            plane: 0,
        };
        q.refresh_placements(500, back);
        assert_eq!(q.tag(TagId(0)).unwrap().placements[0], rotated);
    }

    #[test]
    fn read_lpn_index_answers_hazard_queries() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), read_host(0, 100, 4), SimTime::ZERO, placements(4)));
        let writer_seq = q.seq_of(TagId(0)).unwrap() + 1;
        assert!(q.has_blocking_read(102, writer_seq));
        assert!(!q.has_blocking_read(104, writer_seq));
        // Reads at or after the writer's seq do not block it.
        assert!(!q.has_blocking_read(102, q.seq_of(TagId(0)).unwrap()));
        assert!(q.commit_page(TagId(0), 2, SimTime::ZERO));
        assert!(!q.has_blocking_read(102, writer_seq));
        assert!(q.has_blocking_read(101, writer_seq));
        q.retire(TagId(0)).unwrap();
        assert!(!q.has_blocking_read(101, writer_seq));
    }

    #[test]
    fn fua_horizon_is_constant_time_and_tracks_commitment() {
        let mut q = DeviceQueue::new(4);
        assert_eq!(q.horizon_seq(), u64::MAX);
        assert!(q.admit(TagId(0), read_host(0, 0, 1), SimTime::ZERO, placements(1)));
        let fua = host(1, 2).with_fua(true);
        assert!(q.admit(TagId(1), fua, SimTime::ZERO, placements(2)));
        assert!(q.admit(TagId(2), read_host(2, 50, 1), SimTime::ZERO, placements(1)));
        assert_eq!(q.horizon_seq(), q.seq_of(TagId(1)).unwrap());
        assert!(q.commit_page(TagId(1), 0, SimTime::ZERO));
        assert_eq!(q.horizon_seq(), q.seq_of(TagId(1)).unwrap());
        assert!(q.commit_page(TagId(1), 1, SimTime::ZERO));
        assert_eq!(q.horizon_seq(), u64::MAX);
    }

    /// Satellite regression test: storage stays bounded by the queue depth no
    /// matter how many I/Os flow through — retired slots are recycled and index
    /// entries are reclaimed (the seed kept a `Vec` indexed by raw `TagId`, so
    /// memory grew O(total I/Os served)).
    #[test]
    fn storage_is_bounded_by_depth_across_many_ios() {
        const DEPTH: usize = 8;
        const IOS: u64 = 10_000;
        let mut q = DeviceQueue::new(DEPTH);
        let mut next_admit = 0u64;
        let mut next_retire = 0u64;
        while next_retire < IOS {
            while next_admit < IOS && !q.is_full() {
                let dir_read = next_admit.is_multiple_of(3);
                let fua = next_admit.is_multiple_of(97);
                let h = HostRequest::new(
                    next_admit,
                    SimTime::ZERO,
                    if dir_read {
                        Direction::Read
                    } else {
                        Direction::Write
                    },
                    Lpn::new(next_admit % 512),
                    3,
                )
                .with_fua(fua);
                assert!(q.admit(TagId(next_admit), h, SimTime::ZERO, placements(3)));
                next_admit += 1;
            }
            // Retire the oldest tag after committing and completing its pages.
            let oldest = TagId(next_retire);
            for page in 0..3 {
                assert!(q.commit_page(oldest, page, SimTime::ZERO));
                assert!(q.complete_page(oldest, page));
            }
            assert!(q.retire(oldest).is_some());
            next_retire += 1;

            assert!(
                q.allocated_slots() <= DEPTH,
                "slot storage grew past the queue depth: {}",
                q.allocated_slots()
            );
            assert!(
                q.index_entries() <= DEPTH * 3 + DEPTH,
                "index storage grew past the queued work: {}",
                q.index_entries()
            );
        }
        assert!(q.is_empty());
        assert_eq!(q.total_uncommitted_pages(), 0);
        assert_eq!(q.index_entries(), 0);
        assert!(q.allocated_slots() <= DEPTH);
        q.validate_candidate_index();
    }

    #[test]
    fn admit_with_fills_placements_and_recycles_storage() {
        let mut q = DeviceQueue::new(2);
        assert!(q.admit_with(TagId(0), host(0, 3), SimTime::ZERO, |page| {
            Placement {
                chip: page as usize,
                channel: 0,
                way: page,
                die: 0,
                plane: 0,
            }
        }));
        assert_eq!(q.tag(TagId(0)).unwrap().placements.len(), 3);
        assert_eq!(q.tag(TagId(0)).unwrap().placements[2].chip, 2);
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![0, 1, 2]);

        let retired = q.retire(TagId(0)).unwrap();
        q.recycle(retired);
        // A recycled state's buffers are reused and fully reset.
        assert!(
            q.admit_with(TagId(1), read_host(1, 10, 2), SimTime::ZERO, |_| {
                Placement {
                    chip: 5,
                    channel: 0,
                    way: 0,
                    die: 0,
                    plane: 0,
                }
            })
        );
        let tag = q.tag(TagId(1)).unwrap();
        assert_eq!(tag.id, TagId(1));
        assert_eq!(tag.pages(), 2);
        assert_eq!(tag.placements.len(), 2);
        assert_eq!(tag.uncommitted_count(), 2);
        assert_eq!(tag.first_commit_at, None);
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![5]);

        // The pool is bounded by the queue capacity.
        for i in 0..10u64 {
            q.recycle(TagState::new(
                TagId(100 + i),
                host(100 + i, 1),
                SimTime::ZERO,
                placements(1),
            ));
        }
        assert!(q.spare_states.len() <= q.capacity());
    }

    #[test]
    fn iter_states_matches_arrival_order_after_interior_retire() {
        let mut q = DeviceQueue::new(4);
        for id in 0..4u64 {
            assert!(q.admit(TagId(id), host(id, 1), SimTime::ZERO, placements(1)));
        }
        q.retire(TagId(1)).unwrap();
        q.retire(TagId(2)).unwrap();
        assert!(q.admit(TagId(4), host(4, 1), SimTime::ZERO, placements(1)));
        assert_eq!(
            q.tags_in_order().collect::<Vec<_>>(),
            vec![TagId(0), TagId(3), TagId(4)]
        );
        let seqs: Vec<u64> = q.iter_states().map(|s| s.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }
}
