//! The NVMHC device-level queue (NCQ-style).
//!
//! The queue holds *tags* — admitted host I/O requests — in arrival order.  All the
//! schedulers evaluated in the paper sit on top of the same out-of-order-capable
//! device queue; they differ only in how they compose and commit memory requests
//! from the queued tags.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sprinkler_sim::SimTime;

use crate::request::{HostRequest, Placement, TagId};

/// Per-tag state while the I/O request sits in the device queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagState {
    /// The tag identifier.
    pub id: TagId,
    /// The originating host request.
    pub host: HostRequest,
    /// When the tag was admitted into the device queue.
    pub admitted_at: SimTime,
    /// Physical placement preview per page (filled by the FTL preprocessor).
    pub placements: Vec<Placement>,
    /// Whether each page has been committed as a memory request.
    pub committed: Vec<bool>,
    /// Whether each page's memory request has fully completed.  This is the
    /// per-queue-entry completion bitmap described in §4.4 ("The Order of Output
    /// Data").
    pub completed: Vec<bool>,
    /// When the first memory request of this tag was committed.
    pub first_commit_at: Option<SimTime>,
}

impl TagState {
    /// Creates the state for a newly admitted tag.
    pub fn new(
        id: TagId,
        host: HostRequest,
        admitted_at: SimTime,
        placements: Vec<Placement>,
    ) -> Self {
        let pages = host.pages as usize;
        debug_assert_eq!(placements.len(), pages);
        TagState {
            id,
            host,
            admitted_at,
            placements,
            committed: vec![false; pages],
            completed: vec![false; pages],
            first_commit_at: None,
        }
    }

    /// Number of pages in the I/O request.
    pub fn pages(&self) -> usize {
        self.host.pages as usize
    }

    /// Page offsets not yet committed.
    pub fn uncommitted_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.committed
            .iter()
            .enumerate()
            .filter(|(_, &done)| !done)
            .map(|(i, _)| i as u32)
    }

    /// Number of pages not yet committed.
    pub fn uncommitted_count(&self) -> usize {
        self.committed.iter().filter(|&&c| !c).count()
    }

    /// True once every page has been committed.
    pub fn fully_committed(&self) -> bool {
        self.committed.iter().all(|&c| c)
    }

    /// True once every page's memory request has completed.
    pub fn fully_completed(&self) -> bool {
        self.completed.iter().all(|&c| c)
    }

    /// Marks a page committed.  Returns `false` if it was already committed.
    pub fn mark_committed(&mut self, page: u32, now: SimTime) -> bool {
        let slot = &mut self.committed[page as usize];
        if *slot {
            return false;
        }
        *slot = true;
        self.first_commit_at.get_or_insert(now);
        true
    }

    /// Marks a page's memory request completed (clears its bitmap bit).
    pub fn mark_completed(&mut self, page: u32) {
        self.completed[page as usize] = true;
    }
}

/// The bounded device-level queue.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::queue::DeviceQueue;
/// use sprinkler_ssd::request::{Direction, HostRequest, TagId};
/// use sprinkler_flash::Lpn;
/// use sprinkler_sim::SimTime;
///
/// let mut q = DeviceQueue::new(2);
/// assert!(!q.is_full());
/// let host = HostRequest::new(0, SimTime::ZERO, Direction::Read, Lpn::new(0), 1);
/// q.admit(TagId(0), host, SimTime::ZERO, vec![]);
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceQueue {
    capacity: usize,
    /// Tags in arrival order.
    order: VecDeque<TagId>,
    /// Tag state, indexed by position in `order` lookups.
    tags: Vec<Option<TagState>>,
}

impl DeviceQueue {
    /// Creates an empty queue with the given capacity.
    pub fn new(capacity: usize) -> Self {
        DeviceQueue {
            capacity,
            order: VecDeque::with_capacity(capacity),
            tags: Vec::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tags currently queued.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no tags are queued.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// True when no further tag can be admitted.
    pub fn is_full(&self) -> bool {
        self.order.len() >= self.capacity
    }

    fn slot(&self, id: TagId) -> Option<usize> {
        let idx = id.0 as usize;
        if idx < self.tags.len() && self.tags[idx].is_some() {
            Some(idx)
        } else {
            None
        }
    }

    /// Admits a host request as a tag.  The caller is responsible for checking
    /// [`DeviceQueue::is_full`] first; admission beyond capacity is allowed only to
    /// keep property tests simple and is debug-asserted against.
    ///
    /// Placement previews may be empty if the scheduler never consults them
    /// (virtual address scheduling); in that case page accounting still works but
    /// placement lookups must not be used.
    pub fn admit(
        &mut self,
        id: TagId,
        host: HostRequest,
        now: SimTime,
        placements: Vec<Placement>,
    ) {
        debug_assert!(!self.is_full(), "admitting into a full device queue");
        let placements = if placements.is_empty() {
            vec![
                Placement {
                    chip: 0,
                    channel: 0,
                    way: 0,
                    die: 0,
                    plane: 0,
                };
                host.pages as usize
            ]
        } else {
            placements
        };
        let state = TagState::new(id, host, now, placements);
        let idx = id.0 as usize;
        if idx >= self.tags.len() {
            self.tags.resize(idx + 1, None);
        }
        self.tags[idx] = Some(state);
        self.order.push_back(id);
    }

    /// Removes a completed tag, freeing its queue slot.  Returns its final state.
    pub fn retire(&mut self, id: TagId) -> Option<TagState> {
        let idx = self.slot(id)?;
        self.order.retain(|&t| t != id);
        self.tags[idx].take()
    }

    /// Queued tag identifiers in arrival order.
    pub fn tags_in_order(&self) -> impl Iterator<Item = TagId> + '_ {
        self.order.iter().copied()
    }

    /// Looks up a tag's state.
    pub fn tag(&self, id: TagId) -> Option<&TagState> {
        self.slot(id).and_then(|i| self.tags[i].as_ref())
    }

    /// Looks up a tag's state mutably.
    pub fn tag_mut(&mut self, id: TagId) -> Option<&mut TagState> {
        match self.slot(id) {
            Some(i) => self.tags[i].as_mut(),
            None => None,
        }
    }

    /// Total uncommitted pages across all queued tags.
    pub fn total_uncommitted_pages(&self) -> usize {
        self.order
            .iter()
            .filter_map(|&id| self.tag(id))
            .map(|t| t.uncommitted_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Direction;
    use sprinkler_flash::Lpn;

    fn host(id: u64, pages: u32) -> HostRequest {
        HostRequest::new(
            id,
            SimTime::ZERO,
            Direction::Write,
            Lpn::new(id * 100),
            pages,
        )
    }

    fn placements(n: usize) -> Vec<Placement> {
        (0..n)
            .map(|i| Placement {
                chip: i,
                channel: 0,
                way: i as u32,
                die: 0,
                plane: 0,
            })
            .collect()
    }

    #[test]
    fn admit_and_retire_roundtrip() {
        let mut q = DeviceQueue::new(4);
        q.admit(TagId(0), host(0, 2), SimTime::ZERO, placements(2));
        q.admit(TagId(1), host(1, 3), SimTime::from_nanos(5), placements(3));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert!(!q.is_full());
        assert_eq!(
            q.tags_in_order().collect::<Vec<_>>(),
            vec![TagId(0), TagId(1)]
        );
        let retired = q.retire(TagId(0)).unwrap();
        assert_eq!(retired.host.id, 0);
        assert_eq!(q.len(), 1);
        assert!(q.tag(TagId(0)).is_none());
        assert!(q.retire(TagId(0)).is_none());
    }

    #[test]
    fn capacity_is_reported() {
        let mut q = DeviceQueue::new(2);
        q.admit(TagId(0), host(0, 1), SimTime::ZERO, placements(1));
        assert!(!q.is_full());
        q.admit(TagId(1), host(1, 1), SimTime::ZERO, placements(1));
        assert!(q.is_full());
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn tag_commit_and_complete_bitmaps() {
        let mut q = DeviceQueue::new(4);
        q.admit(TagId(7), host(7, 3), SimTime::from_nanos(10), placements(3));
        let tag = q.tag_mut(TagId(7)).unwrap();
        assert_eq!(tag.uncommitted_count(), 3);
        assert_eq!(tag.uncommitted_pages().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(tag.mark_committed(1, SimTime::from_nanos(20)));
        assert!(!tag.mark_committed(1, SimTime::from_nanos(30)));
        assert_eq!(tag.first_commit_at, Some(SimTime::from_nanos(20)));
        assert_eq!(tag.uncommitted_pages().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!tag.fully_committed());
        tag.mark_committed(0, SimTime::from_nanos(40));
        tag.mark_committed(2, SimTime::from_nanos(40));
        assert!(tag.fully_committed());
        assert!(!tag.fully_completed());
        tag.mark_completed(0);
        tag.mark_completed(1);
        tag.mark_completed(2);
        assert!(tag.fully_completed());
    }

    #[test]
    fn total_uncommitted_pages_sums_tags() {
        let mut q = DeviceQueue::new(4);
        q.admit(TagId(0), host(0, 2), SimTime::ZERO, placements(2));
        q.admit(TagId(1), host(1, 5), SimTime::ZERO, placements(5));
        assert_eq!(q.total_uncommitted_pages(), 7);
        q.tag_mut(TagId(1))
            .unwrap()
            .mark_committed(0, SimTime::ZERO);
        assert_eq!(q.total_uncommitted_pages(), 6);
    }

    #[test]
    fn empty_placements_are_padded() {
        let mut q = DeviceQueue::new(2);
        q.admit(TagId(0), host(0, 3), SimTime::ZERO, Vec::new());
        assert_eq!(q.tag(TagId(0)).unwrap().placements.len(), 3);
    }

    #[test]
    fn tag_state_page_count() {
        let state = TagState::new(TagId(1), host(1, 4), SimTime::ZERO, placements(4));
        assert_eq!(state.pages(), 4);
    }
}
