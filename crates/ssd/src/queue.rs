//! The NVMHC device-level queue (NCQ-style).
//!
//! The queue holds *tags* — admitted host I/O requests — in arrival order.  All the
//! schedulers evaluated in the paper sit on top of the same out-of-order-capable
//! device queue; they differ only in how they compose and commit memory requests
//! from the queued tags.
//!
//! # Storage and indices
//!
//! Internally the queue is a free-list slot map bounded by its capacity: a tag
//! occupies one slot from admission to retirement, retired slots are recycled, and
//! arrival order is threaded through the slots as an intrusive doubly-linked list so
//! [`DeviceQueue::retire`] is O(1).  Total storage is O(queue depth), independent of
//! how many I/Os have ever been served.
//!
//! On top of the slots the queue maintains three incremental indices that turn the
//! scheduler hot path from full-queue scans into point lookups:
//!
//! * a **per-chip candidate index** — for every flash chip, the uncommitted pages
//!   targeting it, ordered by arrival (admission sequence number, then page), so
//!   resource-driven schedulers visit only chips that actually have work;
//! * a **read-LPN hazard index** — for every logical page with an uncommitted read,
//!   the admission sequence numbers of the reading tags, so the §4.4
//!   write-after-read check is an O(log n) lookup instead of a full-queue scan;
//! * a **pending-FUA index** — the admission sequence numbers of queued
//!   force-unit-access tags that are not yet fully committed, so the reordering
//!   horizon is an O(1) lookup.
//!
//! All three indices are sorted vectors, not B-trees: at steady state their
//! capacity is retained across churn, so index maintenance performs no
//! allocations once the high-water mark is reached (a B-tree frees and
//! re-allocates nodes as sets empty and refill, which defeats the
//! zero-allocation replay gate).  Entry counts are bounded by the queued work,
//! so the O(n) memmove per insert/remove is a handful of cache lines.
//!
//! To keep the indices coherent, all mutation of queued tag state goes through the
//! queue ([`DeviceQueue::commit_page`], [`DeviceQueue::complete_page`],
//! [`DeviceQueue::refresh_placements`]); queued tags are only handed out immutably.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sprinkler_sim::SimTime;

use crate::request::{HostRequest, Placement, TagId};

/// Sentinel for "no slot" in the intrusive arrival-order list.
const NIL: usize = usize::MAX;

/// Per-tag state while the I/O request sits in the device queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagState {
    /// The tag identifier.
    pub id: TagId,
    /// Admission sequence number: strictly increasing with arrival order, so
    /// `a.seq < b.seq` iff tag `a` was admitted before tag `b`.  Hazard and
    /// horizon comparisons are expressed over this field.
    pub seq: u64,
    /// The originating host request.
    pub host: HostRequest,
    /// When the tag was admitted into the device queue.
    pub admitted_at: SimTime,
    /// Physical placement preview per page (filled by the FTL preprocessor).
    pub placements: Vec<Placement>,
    /// Whether each page has been committed as a memory request.
    pub committed: Vec<bool>,
    /// Whether each page's memory request has fully completed.  This is the
    /// per-queue-entry completion bitmap described in §4.4 ("The Order of Output
    /// Data").
    pub completed: Vec<bool>,
    /// Number of `true` bits in `committed` (kept so fullness checks are O(1)).
    committed_count: usize,
    /// Number of `true` bits in `completed` (kept so fullness checks are O(1)).
    completed_count: usize,
    /// When the first memory request of this tag was committed.
    pub first_commit_at: Option<SimTime>,
}

impl TagState {
    /// Creates the state for a newly admitted tag.  The admission sequence number
    /// starts at 0; [`DeviceQueue::admit`] assigns the real one.
    pub fn new(
        id: TagId,
        host: HostRequest,
        admitted_at: SimTime,
        placements: Vec<Placement>,
    ) -> Self {
        let pages = host.pages as usize;
        debug_assert_eq!(placements.len(), pages);
        TagState {
            id,
            seq: 0,
            host,
            admitted_at,
            placements,
            committed: vec![false; pages],
            completed: vec![false; pages],
            committed_count: 0,
            completed_count: 0,
            first_commit_at: None,
        }
    }

    /// Number of pages in the I/O request.
    pub fn pages(&self) -> usize {
        self.host.pages as usize
    }

    /// Page offsets not yet committed.
    pub fn uncommitted_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.committed
            .iter()
            .enumerate()
            .filter(|(_, &done)| !done)
            .map(|(i, _)| i as u32)
    }

    /// Number of pages not yet committed.
    pub fn uncommitted_count(&self) -> usize {
        self.pages() - self.committed_count
    }

    /// True once every page has been committed.
    pub fn fully_committed(&self) -> bool {
        self.committed_count == self.pages()
    }

    /// True once every page's memory request has completed.
    pub fn fully_completed(&self) -> bool {
        self.completed_count == self.pages()
    }

    /// Marks a page committed.  Returns `false` if it was already committed.
    pub fn mark_committed(&mut self, page: u32, now: SimTime) -> bool {
        let slot = &mut self.committed[page as usize];
        if *slot {
            return false;
        }
        *slot = true;
        self.committed_count += 1;
        self.first_commit_at.get_or_insert(now);
        true
    }

    /// Marks a page's memory request completed (clears its bitmap bit).  Returns
    /// `false` if it was already completed.
    pub fn mark_completed(&mut self, page: u32) -> bool {
        let slot = &mut self.completed[page as usize];
        if *slot {
            return false;
        }
        *slot = true;
        self.completed_count += 1;
        true
    }
}

/// One recycled storage slot of the queue's slot map.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    state: Option<TagState>,
    /// Previous slot in arrival order (`NIL` at the head).
    prev: usize,
    /// Next slot in arrival order (`NIL` at the tail).
    next: usize,
}

/// The bounded device-level queue.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::queue::DeviceQueue;
/// use sprinkler_ssd::request::{Direction, HostRequest, TagId};
/// use sprinkler_flash::Lpn;
/// use sprinkler_sim::SimTime;
///
/// let mut q = DeviceQueue::new(2);
/// assert!(!q.is_full());
/// let host = HostRequest::new(0, SimTime::ZERO, Direction::Read, Lpn::new(0), 1);
/// assert!(q.admit(TagId(0), host, SimTime::ZERO, vec![]));
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceQueue {
    capacity: usize,
    /// Slot-map storage; never grows past `capacity` entries.
    slots: Vec<Slot>,
    /// Recycled slot indices.
    free: Vec<usize>,
    /// Tag id → slot index.
    slot_of: HashMap<TagId, usize>,
    /// First slot in arrival order (`NIL` when empty).
    head: usize,
    /// Last slot in arrival order (`NIL` when empty).
    tail: usize,
    len: usize,
    /// Next admission sequence number.
    next_seq: u64,
    /// Total uncommitted pages across all queued tags.
    uncommitted_total: usize,
    /// Per-chip candidate entries `(admission seq, page, raw tag id, slot
    /// handle)` of every uncommitted page targeting that chip, each inner
    /// vector sorted ascending.  The slot handle lets consumers reach the tag
    /// state without a hash lookup per candidate.  Emptied inner vectors are
    /// retained (capacity and all) so steady-state churn never allocates; the
    /// outer vector grows to the highest chip index seen.
    chip_entries: Vec<Vec<(u64, u32, u64, usize)>>,
    /// Sorted chip indices whose `chip_entries` vector is non-empty.
    active_chips: Vec<usize>,
    /// Sorted `(lpn, seq)` pairs: read tags whose page at that LPN is
    /// uncommitted.
    read_lpn_index: Vec<(u64, u64)>,
    /// Sorted admission seqs of queued FUA tags not yet fully committed.
    fua_pending: Vec<u64>,
    /// Recycled [`TagState`] storage: retired tags returned via
    /// [`DeviceQueue::recycle`] donate their heap buffers to later admissions.
    spare_states: Vec<TagState>,
}

impl DeviceQueue {
    /// Creates an empty queue with the given capacity.
    pub fn new(capacity: usize) -> Self {
        DeviceQueue {
            capacity,
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            slot_of: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            len: 0,
            next_seq: 0,
            uncommitted_total: 0,
            chip_entries: Vec::new(),
            active_chips: Vec::new(),
            read_lpn_index: Vec::new(),
            fua_pending: Vec::with_capacity(capacity),
            spare_states: Vec::with_capacity(capacity),
        }
    }

    // ------------------------------------------------------------------
    // Sorted-vector index maintenance (allocation-free at steady state)
    // ------------------------------------------------------------------

    fn chip_insert(&mut self, chip: usize, key: (u64, u32, u64, usize)) {
        if chip >= self.chip_entries.len() {
            self.chip_entries.resize_with(chip + 1, Vec::new);
        }
        let entries = &mut self.chip_entries[chip];
        if entries.is_empty() {
            let pos = self.active_chips.partition_point(|&c| c < chip);
            self.active_chips.insert(pos, chip);
        }
        match entries.binary_search(&key) {
            // Admission seqs are unique per page, so duplicates cannot occur.
            Ok(_) => debug_assert!(false, "duplicate chip-index entry"),
            Err(pos) => entries.insert(pos, key),
        }
    }

    fn chip_remove(&mut self, chip: usize, key: &(u64, u32, u64, usize)) {
        if let Some(entries) = self.chip_entries.get_mut(chip) {
            if let Ok(pos) = entries.binary_search(key) {
                entries.remove(pos);
                if entries.is_empty() {
                    if let Ok(active) = self.active_chips.binary_search(&chip) {
                        self.active_chips.remove(active);
                    }
                }
            }
        }
    }

    fn read_lpn_insert(&mut self, lpn: u64, seq: u64) {
        if let Err(pos) = self.read_lpn_index.binary_search(&(lpn, seq)) {
            self.read_lpn_index.insert(pos, (lpn, seq));
        }
    }

    fn read_lpn_remove(&mut self, lpn: u64, seq: u64) {
        if let Ok(pos) = self.read_lpn_index.binary_search(&(lpn, seq)) {
            self.read_lpn_index.remove(pos);
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tags currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tags are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when no further tag can be admitted.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Admits a host request as a tag.  Returns `false` — without admitting —
    /// when the queue is already at capacity.
    ///
    /// Placement previews may be empty if the scheduler never consults them
    /// (virtual address scheduling); in that case page accounting still works but
    /// placement lookups must not be used.
    #[must_use = "admission fails when the queue is full; the request would be lost"]
    pub fn admit(
        &mut self,
        id: TagId,
        host: HostRequest,
        now: SimTime,
        placements: Vec<Placement>,
    ) -> bool {
        if placements.is_empty() {
            self.admit_with(id, host, now, |_| Placement {
                chip: 0,
                channel: 0,
                way: 0,
                die: 0,
                plane: 0,
            })
        } else {
            debug_assert_eq!(placements.len(), host.pages as usize);
            self.admit_with(id, host, now, |page| placements[page as usize])
        }
    }

    /// [`DeviceQueue::admit`] with the placement previews produced in place by
    /// `placement_of` (called once per page, in page order), filling buffers
    /// recycled from retired tags instead of taking a freshly allocated
    /// `Vec<Placement>`.  The replay hot path admits through this entry point
    /// so steady-state admission performs no allocations.
    #[must_use = "admission fails when the queue is full; the request would be lost"]
    pub fn admit_with(
        &mut self,
        id: TagId,
        host: HostRequest,
        now: SimTime,
        mut placement_of: impl FnMut(u32) -> Placement,
    ) -> bool {
        if self.is_full() {
            return false;
        }
        debug_assert!(
            !self.slot_of.contains_key(&id),
            "tag {id} is already queued"
        );
        let pages = host.pages as usize;
        let mut state = match self.spare_states.pop() {
            Some(mut spare) => {
                spare.placements.clear();
                spare.committed.clear();
                spare.completed.clear();
                spare.id = id;
                spare.host = host;
                spare.admitted_at = now;
                spare
            }
            None => TagState {
                id,
                seq: 0,
                host,
                admitted_at: now,
                placements: Vec::new(),
                committed: Vec::new(),
                completed: Vec::new(),
                committed_count: 0,
                completed_count: 0,
                first_commit_at: None,
            },
        };
        state
            .placements
            .extend((0..host.pages).map(&mut placement_of));
        state.committed.resize(pages, false);
        state.completed.resize(pages, false);
        state.committed_count = 0;
        state.completed_count = 0;
        state.first_commit_at = None;
        state.seq = self.next_seq;
        self.next_seq += 1;
        let seq = state.seq;

        // Reserve the storage slot first: the index entries carry it as a
        // direct handle so hot-path consumers skip the tag-id hash lookup.
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(Slot {
                    state: None,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };

        let is_read = host.direction.is_read();
        for page in 0..pages {
            let chip = state.placements[page].chip;
            self.chip_insert(chip, (seq, page as u32, id.0, slot));
            if is_read {
                self.read_lpn_insert(host.lpn_at(page as u32).value(), seq);
            }
        }
        if host.fua {
            // Admission seqs are monotonic, so this is a push in practice.
            let pos = self.fua_pending.partition_point(|&s| s < seq);
            self.fua_pending.insert(pos, seq);
        }
        self.uncommitted_total += pages;
        self.slots[slot].state = Some(state);
        // Link at the tail of the arrival-order list.
        self.slots[slot].prev = self.tail;
        self.slots[slot].next = NIL;
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.slots[self.tail].next = slot;
        }
        self.tail = slot;
        self.slot_of.insert(id, slot);
        self.len += 1;
        true
    }

    /// Removes a completed tag, freeing its queue slot.  Returns its final state.
    /// O(1) in the queue length (plus index removal for any still-uncommitted
    /// pages).
    pub fn retire(&mut self, id: TagId) -> Option<TagState> {
        let slot = self.slot_of.remove(&id)?;
        let state = self.slots[slot].state.take()?;
        // Unlink from the arrival-order list.
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
        self.free.push(slot);
        self.len -= 1;
        // Drop any remaining index entries for uncommitted pages.
        for page in 0..state.pages() {
            if !state.committed[page] {
                self.unindex_page(&state, page as u32, slot);
                self.uncommitted_total -= 1;
            }
        }
        if let Ok(pos) = self.fua_pending.binary_search(&state.seq) {
            self.fua_pending.remove(pos);
        }
        Some(state)
    }

    /// Returns a retired [`TagState`]'s heap buffers to the queue's internal
    /// pool so a later [`DeviceQueue::admit_with`] reuses them instead of
    /// allocating.  The pool is bounded by the queue capacity; surplus states
    /// are simply dropped.
    pub fn recycle(&mut self, state: TagState) {
        if self.spare_states.len() < self.capacity {
            self.spare_states.push(state);
        }
    }

    /// Marks a page of a queued tag committed, keeping the hazard and chip indices
    /// coherent.  Returns `false` when the tag is not queued, the page offset is
    /// out of range, or the page was already committed.
    pub fn commit_page(&mut self, id: TagId, page: u32, now: SimTime) -> bool {
        let Some(&slot) = self.slot_of.get(&id) else {
            return false;
        };
        let Some(state) = self.slots[slot].state.as_mut() else {
            return false;
        };
        if page as usize >= state.pages() || !state.mark_committed(page, now) {
            return false;
        }
        let seq = state.seq;
        let chip = state.placements[page as usize].chip;
        let read_lpn = state
            .host
            .direction
            .is_read()
            .then(|| state.host.lpn_at(page).value());
        let fua_done = state.host.fua && state.fully_committed();
        self.uncommitted_total -= 1;
        self.chip_remove(chip, &(seq, page, id.0, slot));
        if let Some(lpn) = read_lpn {
            self.read_lpn_remove(lpn, seq);
        }
        if fua_done {
            if let Ok(pos) = self.fua_pending.binary_search(&seq) {
                self.fua_pending.remove(pos);
            }
        }
        true
    }

    /// Marks a page's memory request completed.  Returns `false` when the tag is
    /// not queued or the page was already completed.
    pub fn complete_page(&mut self, id: TagId, page: u32) -> bool {
        match self.state_mut(id) {
            Some(state) if (page as usize) < state.pages() => state.mark_completed(page),
            _ => false,
        }
    }

    /// Rewrites the placement preview of every queued, still-uncommitted page
    /// addressing `lpn` (GC readdressing, §4.3), keeping the chip index coherent.
    pub fn refresh_placements(&mut self, lpn: u64, preview: Placement) {
        let mut cursor = self.head;
        while cursor != NIL {
            let next;
            let mut moved: Option<((u64, u32, u64, usize), usize)> = None;
            {
                let slot = &mut self.slots[cursor];
                next = slot.next;
                if let Some(state) = slot.state.as_mut() {
                    let start = state.host.start_lpn.value();
                    let end = start + state.host.pages as u64;
                    if (start..end).contains(&lpn) {
                        let page = (lpn - start) as usize;
                        if !state.committed[page] {
                            let old_chip = state.placements[page].chip;
                            let key = (state.seq, page as u32, state.id.0, cursor);
                            state.placements[page] = preview;
                            if old_chip != preview.chip {
                                moved = Some((key, old_chip));
                            }
                        }
                    }
                }
            }
            if let Some((key, old_chip)) = moved {
                self.chip_remove(old_chip, &key);
                self.chip_insert(preview.chip, key);
            }
            cursor = next;
        }
    }

    /// Removes a page's entries from the chip and read-LPN indices.
    fn unindex_page(&mut self, state: &TagState, page: u32, slot: usize) {
        let chip = state.placements[page as usize].chip;
        self.chip_remove(chip, &(state.seq, page, state.id.0, slot));
        if state.host.direction.is_read() {
            let lpn = state.host.lpn_at(page).value();
            self.read_lpn_remove(lpn, state.seq);
        }
    }

    fn state_mut(&mut self, id: TagId) -> Option<&mut TagState> {
        let &slot = self.slot_of.get(&id)?;
        self.slots[slot].state.as_mut()
    }

    /// Queued tag identifiers in arrival order.
    pub fn tags_in_order(&self) -> impl Iterator<Item = TagId> + '_ {
        self.iter_states().map(|state| state.id)
    }

    /// Queued tag states in arrival order.
    pub fn iter_states(&self) -> impl Iterator<Item = &TagState> + '_ {
        let mut cursor = self.head;
        std::iter::from_fn(move || {
            while cursor != NIL {
                let slot = &self.slots[cursor];
                cursor = slot.next;
                if let Some(state) = slot.state.as_ref() {
                    return Some(state);
                }
            }
            None
        })
    }

    /// Looks up a tag's state.
    pub fn tag(&self, id: TagId) -> Option<&TagState> {
        let &slot = self.slot_of.get(&id)?;
        self.slots[slot].state.as_ref()
    }

    /// A queued tag's admission sequence number.
    pub fn seq_of(&self, id: TagId) -> Option<u64> {
        self.tag(id).map(|state| state.seq)
    }

    /// Total uncommitted pages across all queued tags (O(1)).
    pub fn total_uncommitted_pages(&self) -> usize {
        self.uncommitted_total
    }

    // ------------------------------------------------------------------
    // Index views consumed by the scheduler hot path
    // ------------------------------------------------------------------

    /// The §4.4 reordering horizon as an admission-sequence bound: tags with
    /// `seq <= horizon_seq()` may be considered this round; tags beyond the first
    /// not-fully-committed FUA request are off limits.  O(1).
    pub fn horizon_seq(&self) -> u64 {
        self.fua_pending.first().copied().unwrap_or(u64::MAX)
    }

    /// Whether a read tag admitted strictly before `seq` still has an uncommitted
    /// read of logical page `lpn` (the §4.4 write-after-read hazard).  O(log n).
    pub fn has_blocking_read(&self, lpn: u64, seq: u64) -> bool {
        // Entries are sorted by (lpn, seq); the first entry for `lpn` holds
        // the earliest reading seq.
        let pos = self.read_lpn_index.partition_point(|&(l, _)| l < lpn);
        self.read_lpn_index
            .get(pos)
            .is_some_and(|&(l, earliest)| l == lpn && earliest < seq)
    }

    /// Chips with at least one uncommitted candidate page, in ascending chip
    /// order.  Iterating this instead of every chip keeps resource-driven
    /// scheduling rounds proportional to queued work, not to the chip population.
    pub fn candidate_chips(&self) -> impl Iterator<Item = usize> + '_ {
        self.active_chips.iter().copied()
    }

    /// The uncommitted candidate pages targeting one chip, in arrival order
    /// (admission seq, then page offset).  The final element is the tag's slot
    /// handle for [`DeviceQueue::state_at`].
    pub fn chip_candidates(
        &self,
        chip: usize,
    ) -> impl Iterator<Item = (u64, u32, TagId, usize)> + '_ {
        self.chip_entries
            .get(chip)
            .into_iter()
            .flatten()
            .map(|&(seq, page, tag, slot)| (seq, page, TagId(tag), slot))
    }

    /// Resolves a slot handle from [`DeviceQueue::chip_candidates`] to the tag
    /// state it indexes, without a hash lookup.
    pub fn state_at(&self, slot: usize) -> Option<&TagState> {
        self.slots.get(slot)?.state.as_ref()
    }

    /// One ordered walk over the whole per-chip candidate index: yields every
    /// chip with queued work (ascending chip order) together with its raw
    /// entries `(admission seq, page, raw tag id, slot handle)` in arrival
    /// order.  A single walk is cheaper than one [`DeviceQueue::chip_candidates`]
    /// lookup per chip when a round visits many chips.
    pub fn candidate_groups(
        &self,
    ) -> impl Iterator<Item = (usize, std::slice::Iter<'_, (u64, u32, u64, usize)>)> + '_ {
        self.active_chips
            .iter()
            .map(move |&chip| (chip, self.chip_entries[chip].iter()))
    }

    // ------------------------------------------------------------------
    // Storage introspection (regression tests for bounded memory)
    // ------------------------------------------------------------------

    /// Number of storage slots ever allocated.  Bounded by the queue capacity, no
    /// matter how many I/Os have been served.
    pub fn allocated_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total entries across the chip, read-LPN, and FUA indices.  Bounded by the
    /// number of queued uncommitted pages.
    pub fn index_entries(&self) -> usize {
        let chip: usize = self.chip_entries.iter().map(Vec::len).sum();
        chip + self.read_lpn_index.len() + self.fua_pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Direction;
    use sprinkler_flash::Lpn;

    fn host(id: u64, pages: u32) -> HostRequest {
        HostRequest::new(
            id,
            SimTime::ZERO,
            Direction::Write,
            Lpn::new(id * 100),
            pages,
        )
    }

    fn read_host(id: u64, lpn: u64, pages: u32) -> HostRequest {
        HostRequest::new(id, SimTime::ZERO, Direction::Read, Lpn::new(lpn), pages)
    }

    fn placements(n: usize) -> Vec<Placement> {
        (0..n)
            .map(|i| Placement {
                chip: i,
                channel: 0,
                way: i as u32,
                die: 0,
                plane: 0,
            })
            .collect()
    }

    #[test]
    fn admit_and_retire_roundtrip() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), host(0, 2), SimTime::ZERO, placements(2)));
        assert!(q.admit(TagId(1), host(1, 3), SimTime::from_nanos(5), placements(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert!(!q.is_full());
        assert_eq!(
            q.tags_in_order().collect::<Vec<_>>(),
            vec![TagId(0), TagId(1)]
        );
        let retired = q.retire(TagId(0)).unwrap();
        assert_eq!(retired.host.id, 0);
        assert_eq!(q.len(), 1);
        assert!(q.tag(TagId(0)).is_none());
        assert!(q.retire(TagId(0)).is_none());
    }

    #[test]
    fn capacity_is_reported_and_enforced() {
        let mut q = DeviceQueue::new(2);
        assert!(q.admit(TagId(0), host(0, 1), SimTime::ZERO, placements(1)));
        assert!(!q.is_full());
        assert!(q.admit(TagId(1), host(1, 1), SimTime::ZERO, placements(1)));
        assert!(q.is_full());
        assert_eq!(q.capacity(), 2);
        // Over-capacity admission is rejected, not silently allowed.
        assert!(!q.admit(TagId(2), host(2, 1), SimTime::ZERO, placements(1)));
        assert_eq!(q.len(), 2);
        assert!(q.tag(TagId(2)).is_none());
        // Retiring frees the slot for a new admission.
        q.retire(TagId(0)).unwrap();
        assert!(q.admit(TagId(2), host(2, 1), SimTime::ZERO, placements(1)));
        assert_eq!(
            q.tags_in_order().collect::<Vec<_>>(),
            vec![TagId(1), TagId(2)]
        );
    }

    #[test]
    fn tag_commit_and_complete_bitmaps() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(7), host(7, 3), SimTime::from_nanos(10), placements(3)));
        assert_eq!(q.tag(TagId(7)).unwrap().uncommitted_count(), 3);
        assert_eq!(
            q.tag(TagId(7))
                .unwrap()
                .uncommitted_pages()
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(q.commit_page(TagId(7), 1, SimTime::from_nanos(20)));
        assert!(!q.commit_page(TagId(7), 1, SimTime::from_nanos(30)));
        let tag = q.tag(TagId(7)).unwrap();
        assert_eq!(tag.first_commit_at, Some(SimTime::from_nanos(20)));
        assert_eq!(tag.uncommitted_pages().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!tag.fully_committed());
        assert!(q.commit_page(TagId(7), 0, SimTime::from_nanos(40)));
        assert!(q.commit_page(TagId(7), 2, SimTime::from_nanos(40)));
        assert!(q.tag(TagId(7)).unwrap().fully_committed());
        assert!(!q.tag(TagId(7)).unwrap().fully_completed());
        assert!(q.complete_page(TagId(7), 0));
        assert!(q.complete_page(TagId(7), 1));
        assert!(
            !q.complete_page(TagId(7), 1),
            "double completion is rejected"
        );
        assert!(q.complete_page(TagId(7), 2));
        assert!(q.tag(TagId(7)).unwrap().fully_completed());
    }

    #[test]
    fn total_uncommitted_pages_sums_tags() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), host(0, 2), SimTime::ZERO, placements(2)));
        assert!(q.admit(TagId(1), host(1, 5), SimTime::ZERO, placements(5)));
        assert_eq!(q.total_uncommitted_pages(), 7);
        assert!(q.commit_page(TagId(1), 0, SimTime::ZERO));
        assert_eq!(q.total_uncommitted_pages(), 6);
        q.retire(TagId(0)).unwrap();
        assert_eq!(q.total_uncommitted_pages(), 4);
    }

    #[test]
    fn empty_placements_are_padded() {
        let mut q = DeviceQueue::new(2);
        assert!(q.admit(TagId(0), host(0, 3), SimTime::ZERO, Vec::new()));
        assert_eq!(q.tag(TagId(0)).unwrap().placements.len(), 3);
    }

    #[test]
    fn tag_state_page_count() {
        let state = TagState::new(TagId(1), host(1, 4), SimTime::ZERO, placements(4));
        assert_eq!(state.pages(), 4);
        assert_eq!(state.seq, 0);
    }

    #[test]
    fn admission_seqs_increase_with_arrival_order() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(9), host(9, 1), SimTime::ZERO, placements(1)));
        assert!(q.admit(TagId(3), host(3, 1), SimTime::ZERO, placements(1)));
        let (a, b) = (q.seq_of(TagId(9)).unwrap(), q.seq_of(TagId(3)).unwrap());
        assert!(a < b, "arrival order must be reflected in seqs");
        q.retire(TagId(9)).unwrap();
        assert!(q.admit(TagId(9), host(9, 1), SimTime::ZERO, placements(1)));
        assert!(q.seq_of(TagId(9)).unwrap() > b, "seqs never repeat");
    }

    #[test]
    fn chip_index_tracks_uncommitted_pages() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), host(0, 2), SimTime::ZERO, placements(2)));
        assert!(q.admit(TagId(1), host(1, 2), SimTime::ZERO, placements(2)));
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![0, 1]);
        // Chip 0 holds page 0 of both tags, in arrival order.
        let chip0: Vec<(u32, TagId)> = q
            .chip_candidates(0)
            .map(|(_, page, tag, _)| (page, tag))
            .collect();
        assert_eq!(chip0, vec![(0, TagId(0)), (0, TagId(1))]);
        assert!(q.commit_page(TagId(0), 0, SimTime::ZERO));
        let chip0: Vec<TagId> = q.chip_candidates(0).map(|(_, _, tag, _)| tag).collect();
        assert_eq!(chip0, vec![TagId(1)]);
        q.retire(TagId(1)).unwrap();
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn chip_index_follows_placement_refreshes() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), read_host(0, 500, 1), SimTime::ZERO, placements(1)));
        let moved = Placement {
            chip: 3,
            channel: 1,
            way: 1,
            die: 0,
            plane: 1,
        };
        q.refresh_placements(500, moved);
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![3]);
        assert_eq!(q.tag(TagId(0)).unwrap().placements[0], moved);
        // Committed pages are not rewritten.
        assert!(q.commit_page(TagId(0), 0, SimTime::ZERO));
        let back = Placement {
            chip: 0,
            channel: 0,
            way: 0,
            die: 0,
            plane: 0,
        };
        q.refresh_placements(500, back);
        assert_eq!(q.tag(TagId(0)).unwrap().placements[0], moved);
    }

    #[test]
    fn read_lpn_index_answers_hazard_queries() {
        let mut q = DeviceQueue::new(4);
        assert!(q.admit(TagId(0), read_host(0, 100, 4), SimTime::ZERO, placements(4)));
        let writer_seq = q.seq_of(TagId(0)).unwrap() + 1;
        assert!(q.has_blocking_read(102, writer_seq));
        assert!(!q.has_blocking_read(104, writer_seq));
        // Reads at or after the writer's seq do not block it.
        assert!(!q.has_blocking_read(102, q.seq_of(TagId(0)).unwrap()));
        assert!(q.commit_page(TagId(0), 2, SimTime::ZERO));
        assert!(!q.has_blocking_read(102, writer_seq));
        assert!(q.has_blocking_read(101, writer_seq));
        q.retire(TagId(0)).unwrap();
        assert!(!q.has_blocking_read(101, writer_seq));
    }

    #[test]
    fn fua_horizon_is_constant_time_and_tracks_commitment() {
        let mut q = DeviceQueue::new(4);
        assert_eq!(q.horizon_seq(), u64::MAX);
        assert!(q.admit(TagId(0), read_host(0, 0, 1), SimTime::ZERO, placements(1)));
        let fua = host(1, 2).with_fua(true);
        assert!(q.admit(TagId(1), fua, SimTime::ZERO, placements(2)));
        assert!(q.admit(TagId(2), read_host(2, 50, 1), SimTime::ZERO, placements(1)));
        assert_eq!(q.horizon_seq(), q.seq_of(TagId(1)).unwrap());
        assert!(q.commit_page(TagId(1), 0, SimTime::ZERO));
        assert_eq!(q.horizon_seq(), q.seq_of(TagId(1)).unwrap());
        assert!(q.commit_page(TagId(1), 1, SimTime::ZERO));
        assert_eq!(q.horizon_seq(), u64::MAX);
    }

    /// Satellite regression test: storage stays bounded by the queue depth no
    /// matter how many I/Os flow through — retired slots are recycled and index
    /// entries are reclaimed (the seed kept a `Vec` indexed by raw `TagId`, so
    /// memory grew O(total I/Os served)).
    #[test]
    fn storage_is_bounded_by_depth_across_many_ios() {
        const DEPTH: usize = 8;
        const IOS: u64 = 10_000;
        let mut q = DeviceQueue::new(DEPTH);
        let mut next_admit = 0u64;
        let mut next_retire = 0u64;
        while next_retire < IOS {
            while next_admit < IOS && !q.is_full() {
                let dir_read = next_admit.is_multiple_of(3);
                let fua = next_admit.is_multiple_of(97);
                let h = HostRequest::new(
                    next_admit,
                    SimTime::ZERO,
                    if dir_read {
                        Direction::Read
                    } else {
                        Direction::Write
                    },
                    Lpn::new(next_admit % 512),
                    3,
                )
                .with_fua(fua);
                assert!(q.admit(TagId(next_admit), h, SimTime::ZERO, placements(3)));
                next_admit += 1;
            }
            // Retire the oldest tag after committing and completing its pages.
            let oldest = TagId(next_retire);
            for page in 0..3 {
                assert!(q.commit_page(oldest, page, SimTime::ZERO));
                assert!(q.complete_page(oldest, page));
            }
            assert!(q.retire(oldest).is_some());
            next_retire += 1;

            assert!(
                q.allocated_slots() <= DEPTH,
                "slot storage grew past the queue depth: {}",
                q.allocated_slots()
            );
            assert!(
                q.index_entries() <= DEPTH * 3 + DEPTH,
                "index storage grew past the queued work: {}",
                q.index_entries()
            );
        }
        assert!(q.is_empty());
        assert_eq!(q.total_uncommitted_pages(), 0);
        assert_eq!(q.index_entries(), 0);
        assert!(q.allocated_slots() <= DEPTH);
    }

    #[test]
    fn admit_with_fills_placements_and_recycles_storage() {
        let mut q = DeviceQueue::new(2);
        assert!(q.admit_with(TagId(0), host(0, 3), SimTime::ZERO, |page| {
            Placement {
                chip: page as usize,
                channel: 0,
                way: page,
                die: 0,
                plane: 0,
            }
        }));
        assert_eq!(q.tag(TagId(0)).unwrap().placements.len(), 3);
        assert_eq!(q.tag(TagId(0)).unwrap().placements[2].chip, 2);
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![0, 1, 2]);

        let retired = q.retire(TagId(0)).unwrap();
        q.recycle(retired);
        // A recycled state's buffers are reused and fully reset.
        assert!(
            q.admit_with(TagId(1), read_host(1, 10, 2), SimTime::ZERO, |_| {
                Placement {
                    chip: 5,
                    channel: 0,
                    way: 0,
                    die: 0,
                    plane: 0,
                }
            })
        );
        let tag = q.tag(TagId(1)).unwrap();
        assert_eq!(tag.id, TagId(1));
        assert_eq!(tag.pages(), 2);
        assert_eq!(tag.placements.len(), 2);
        assert_eq!(tag.uncommitted_count(), 2);
        assert_eq!(tag.first_commit_at, None);
        assert_eq!(q.candidate_chips().collect::<Vec<_>>(), vec![5]);

        // The pool is bounded by the queue capacity.
        for i in 0..10u64 {
            q.recycle(TagState::new(
                TagId(100 + i),
                host(100 + i, 1),
                SimTime::ZERO,
                placements(1),
            ));
        }
        assert!(q.spare_states.len() <= q.capacity());
    }

    #[test]
    fn iter_states_matches_arrival_order_after_interior_retire() {
        let mut q = DeviceQueue::new(4);
        for id in 0..4u64 {
            assert!(q.admit(TagId(id), host(id, 1), SimTime::ZERO, placements(1)));
        }
        q.retire(TagId(1)).unwrap();
        q.retire(TagId(2)).unwrap();
        assert!(q.admit(TagId(4), host(4, 1), SimTime::ZERO, placements(1)));
        assert_eq!(
            q.tags_in_order().collect::<Vec<_>>(),
            vec![TagId(0), TagId(3), TagId(4)]
        );
        let seqs: Vec<u64> = q.iter_states().map(|s| s.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }
}
