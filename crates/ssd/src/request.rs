//! Host I/O requests, device-queue tags, and page-level memory requests.
//!
//! Following Fig 3 of the paper, a host I/O request is admitted into the
//! device-level queue as a *tag*; the NVMHC later composes it into page-sized
//! *memory requests* (the atomic flash I/O unit) which are committed to the flash
//! controllers and eventually coalesced into flash transactions.

use std::fmt;

use serde::{Deserialize, Serialize};
use sprinkler_flash::{Lpn, PhysicalPageAddr};
use sprinkler_sim::SimTime;

/// Direction of a host request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Host reads data from the SSD.
    Read,
    /// Host writes data to the SSD.
    Write,
}

impl Direction {
    /// True for reads.
    pub fn is_read(self) -> bool {
        matches!(self, Direction::Read)
    }

    /// True for writes.
    pub fn is_write(self) -> bool {
        matches!(self, Direction::Write)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Read => f.write_str("read"),
            Direction::Write => f.write_str("write"),
        }
    }
}

/// Identifier of a device-queue tag (one admitted host I/O request).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TagId(pub u64);

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// Identifier of a page-level memory request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MemReqId(pub u64);

impl fmt::Display for MemReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mr{}", self.0)
    }
}

/// A host-issued I/O request, before admission into the device queue.
///
/// Sizes and offsets are expressed in pages (the atomic flash unit); the workload
/// layer converts byte-level traces into page units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostRequest {
    /// Monotonic request identifier assigned by the workload.
    pub id: u64,
    /// Arrival time at the SSD.
    pub arrival: SimTime,
    /// Read or write.
    pub direction: Direction,
    /// First logical page addressed.
    pub start_lpn: Lpn,
    /// Number of pages touched (always ≥ 1).
    pub pages: u32,
    /// Force-unit-access: when set, the request must not be reordered (hazard
    /// control, §4.4).
    pub fua: bool,
    /// Tenant lane index assigned by the multi-tenant admission front
    /// (0 when the run has a single anonymous tenant).
    pub tenant: u32,
    /// Time the request was submitted by its tenant, before fair-share
    /// admission delay.  Equal to `arrival` unless an admission layer deferred
    /// the request; per-tenant latency is measured from this point so queueing
    /// imposed by the fair scheduler counts against the tenant's SLO.
    pub submitted: SimTime,
}

impl HostRequest {
    /// Creates a host request.
    pub fn new(
        id: u64,
        arrival: SimTime,
        direction: Direction,
        start_lpn: Lpn,
        pages: u32,
    ) -> Self {
        HostRequest {
            id,
            arrival,
            direction,
            start_lpn,
            pages: pages.max(1),
            fua: false,
            tenant: 0,
            submitted: arrival,
        }
    }

    /// Marks the request force-unit-access.
    pub fn with_fua(mut self, fua: bool) -> Self {
        self.fua = fua;
        self
    }

    /// Attributes the request to a tenant lane and records its original
    /// submission time (pre-admission-delay arrival).
    pub fn with_tenant(mut self, tenant: u32, submitted: SimTime) -> Self {
        self.tenant = tenant;
        self.submitted = submitted;
        self
    }

    /// The logical page addressed by page offset `index` within the request.
    pub fn lpn_at(&self, index: u32) -> Lpn {
        self.start_lpn.offset(index as u64)
    }

    /// Total bytes transferred, given the page size.
    pub fn bytes(&self, page_size: usize) -> u64 {
        self.pages as u64 * page_size as u64
    }
}

/// The physical placement (preview) of one page of an I/O request, computed by the
/// FTL preprocessor at admission time (Algorithm 1's `core.preprocess(tag)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// Flat chip index.
    pub chip: usize,
    /// Channel of the chip.
    pub channel: u32,
    /// Way (position within the channel).
    pub way: u32,
    /// Die within the chip.
    pub die: u32,
    /// Plane within the die.
    pub plane: u32,
}

impl Placement {
    /// Builds a placement from a fully resolved physical page address.
    pub fn from_addr(addr: PhysicalPageAddr, chips_per_channel: usize) -> Self {
        Placement {
            chip: addr.channel as usize * chips_per_channel + addr.way as usize,
            channel: addr.channel,
            way: addr.way,
            die: addr.die,
            plane: addr.plane,
        }
    }
}

/// The lifecycle of a page-level memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemReqPhase {
    /// Committed by the scheduler; waiting for host data movement (writes only).
    AwaitingData,
    /// Delivered to the flash controller; waiting to join a transaction.
    Pending,
    /// Part of an executing flash transaction.
    Executing,
    /// Flash work done; waiting for the read data to be returned to the host.
    Returning,
    /// Fully complete.
    Complete,
}

/// A page-level memory request: the unit the scheduler commits and the flash
/// controller coalesces into transactions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRequest {
    /// Identifier.
    pub id: MemReqId,
    /// The tag (host I/O) this request belongs to, `None` for internal GC traffic.
    pub tag: Option<TagId>,
    /// Page offset within the host I/O request (0 for GC traffic).
    pub page_index: u32,
    /// Logical page addressed.
    pub lpn: Lpn,
    /// Direction of the flash operation (GC reads/writes use the same enum).
    pub direction: Direction,
    /// Physical placement preview.
    pub placement: Placement,
    /// Current lifecycle phase.
    pub phase: MemReqPhase,
    /// When the scheduler committed the request.
    pub committed_at: SimTime,
    /// When the request reached the flash controller.
    pub delivered_at: SimTime,
    /// When the request fully completed.
    pub completed_at: SimTime,
    /// True for internal garbage-collection traffic.
    pub gc: bool,
}

impl MemoryRequest {
    /// Creates a freshly committed host memory request.
    pub fn new_host(
        id: MemReqId,
        tag: TagId,
        page_index: u32,
        lpn: Lpn,
        direction: Direction,
        placement: Placement,
        committed_at: SimTime,
    ) -> Self {
        MemoryRequest {
            id,
            tag: Some(tag),
            page_index,
            lpn,
            direction,
            placement,
            phase: if direction.is_write() {
                MemReqPhase::AwaitingData
            } else {
                MemReqPhase::Pending
            },
            committed_at,
            delivered_at: committed_at,
            completed_at: SimTime::MAX,
            gc: false,
        }
    }

    /// Creates an internal GC memory request (never belongs to a tag and is
    /// delivered to the controller immediately).
    pub fn new_gc(
        id: MemReqId,
        lpn: Lpn,
        direction: Direction,
        placement: Placement,
        at: SimTime,
    ) -> Self {
        MemoryRequest {
            id,
            tag: None,
            page_index: 0,
            lpn,
            direction,
            placement,
            phase: MemReqPhase::Pending,
            committed_at: at,
            delivered_at: at,
            completed_at: SimTime::MAX,
            gc: true,
        }
    }

    /// True once the request has reached its terminal phase.
    pub fn is_complete(&self) -> bool {
        self.phase == MemReqPhase::Complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_predicates() {
        assert!(Direction::Read.is_read());
        assert!(!Direction::Read.is_write());
        assert!(Direction::Write.is_write());
        assert_eq!(Direction::Read.to_string(), "read");
        assert_eq!(Direction::Write.to_string(), "write");
    }

    #[test]
    fn ids_display() {
        assert_eq!(TagId(3).to_string(), "tag3");
        assert_eq!(MemReqId(9).to_string(), "mr9");
        assert!(TagId(1) < TagId(2));
    }

    #[test]
    fn host_request_page_math() {
        let r = HostRequest::new(1, SimTime::ZERO, Direction::Read, Lpn::new(100), 4);
        assert_eq!(r.lpn_at(0), Lpn::new(100));
        assert_eq!(r.lpn_at(3), Lpn::new(103));
        assert_eq!(r.bytes(2048), 8192);
        assert!(!r.fua);
        assert!(r.with_fua(true).fua);
    }

    #[test]
    fn host_request_clamps_zero_pages() {
        let r = HostRequest::new(1, SimTime::ZERO, Direction::Write, Lpn::new(0), 0);
        assert_eq!(r.pages, 1);
    }

    #[test]
    fn placement_from_addr() {
        let addr = PhysicalPageAddr {
            channel: 2,
            way: 3,
            die: 1,
            plane: 0,
            block: 9,
            page: 4,
        };
        let p = Placement::from_addr(addr, 8);
        assert_eq!(p.chip, 19);
        assert_eq!(p.channel, 2);
        assert_eq!(p.way, 3);
        assert_eq!(p.die, 1);
        assert_eq!(p.plane, 0);
    }

    #[test]
    fn write_requests_start_awaiting_data() {
        let placement = Placement {
            chip: 0,
            channel: 0,
            way: 0,
            die: 0,
            plane: 0,
        };
        let w = MemoryRequest::new_host(
            MemReqId(1),
            TagId(1),
            0,
            Lpn::new(5),
            Direction::Write,
            placement,
            SimTime::ZERO,
        );
        assert_eq!(w.phase, MemReqPhase::AwaitingData);
        let r = MemoryRequest::new_host(
            MemReqId(2),
            TagId(1),
            1,
            Lpn::new(6),
            Direction::Read,
            placement,
            SimTime::ZERO,
        );
        assert_eq!(r.phase, MemReqPhase::Pending);
        assert!(!r.is_complete());
        assert!(!r.gc);
    }

    #[test]
    fn gc_requests_have_no_tag() {
        let placement = Placement {
            chip: 1,
            channel: 0,
            way: 1,
            die: 0,
            plane: 0,
        };
        let g = MemoryRequest::new_gc(
            MemReqId(7),
            Lpn::new(0),
            Direction::Read,
            placement,
            SimTime::from_micros(3),
        );
        assert!(g.gc);
        assert_eq!(g.tag, None);
        assert_eq!(g.phase, MemReqPhase::Pending);
        assert_eq!(g.committed_at, SimTime::from_micros(3));
    }
}
